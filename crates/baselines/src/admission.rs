//! Admission control: a decorator that protects any replacement policy from
//! one-shot requests.
//!
//! The paper's companion work (Otoo, Rotem & Shoshani, "Impact of admission
//! and cache replacement policies on response times of jobs on data grids")
//! studies *admission* separately from *replacement*. This module provides
//! the classic second-hit admission gate, bundle-adapted: a request's files
//! are admitted into the managed cache only once the request has recurred
//! `min_occurrences` times; colder requests are serviced in **bypass** mode
//! — their missing files are streamed from mass storage straight to the
//! compute resource without entering the cache, so scans never pollute it.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_obs::Obs;
use std::collections::HashMap;

/// Second-hit (more generally, N-th-hit) admission gate around any policy.
#[derive(Debug, Clone)]
pub struct AdmissionGate<P> {
    inner: P,
    min_occurrences: u64,
    counts: HashMap<Bundle, u64>,
    /// Observability sink for bypassed (streamed) requests; admitted
    /// requests are recorded by the wrapped policy itself.
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
    name: String,
}

impl<P: CachePolicy> AdmissionGate<P> {
    /// Wraps `inner`; bundles are admitted from their
    /// `min_occurrences`-th occurrence onward (1 = admit always, i.e. a
    /// transparent wrapper).
    pub fn new(inner: P, min_occurrences: u64) -> Self {
        assert!(min_occurrences >= 1, "min_occurrences must be >= 1");
        let name = format!("{}+admit({min_occurrences})", inner.name());
        Self {
            inner,
            min_occurrences,
            counts: HashMap::new(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
            name,
        }
    }

    /// The classic second-hit gate.
    pub fn second_hit(inner: P) -> Self {
        Self::new(inner, 2)
    }

    /// Occurrence count of a bundle (diagnostics).
    pub fn occurrences(&self, bundle: &Bundle) -> u64 {
        self.counts.get(bundle).copied().unwrap_or(0)
    }

    /// Read access to the wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Bypass service: the job's missing files are *streamed* from mass
    /// storage to the compute resource without entering the cache — the
    /// bytes still count as miss traffic, but the cache is untouched.
    fn bypass(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let requested_bytes = bundle.total_size(catalog);
        let mut outcome = RequestOutcome {
            requested_bytes,
            serviced: true,
            ..RequestOutcome::default()
        };
        if cache.supports(bundle) {
            outcome.hit = true;
            return outcome;
        }
        let missing = cache.missing_of(bundle);
        for &f in &missing {
            outcome.fetched_bytes += catalog.size(f);
            outcome.fetched_files.push(f);
        }
        outcome.streamed = true;
        outcome
    }
}

impl<P: CachePolicy> CachePolicy for AdmissionGate<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare_from(&mut self, trace: &mut dyn Iterator<Item = &Bundle>) {
        self.inner.prepare_from(trace);
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let count = {
            let c = self.counts.entry(bundle.clone()).or_insert(0);
            *c += 1;
            *c
        };
        if count >= self.min_occurrences {
            self.inner.handle(bundle, cache, catalog)
        } else {
            let outcome = self.bypass(bundle, cache, catalog);
            outcome.record_obs(&self.obs, &mut self.obs_slots);
            outcome
        }
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs.clone();
        self.inner.attach_obs(obs);
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;
    use fbc_core::types::FileId;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn first_occurrence_streams_and_leaves_cache_clean() {
        let catalog = FileCatalog::from_sizes(vec![1; 6]);
        let mut cache = CacheState::new(4);
        let mut gate = AdmissionGate::second_hit(Lru::new());
        let out = gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.serviced && !out.hit);
        assert!(out.streamed);
        assert_eq!(out.fetched_bytes, 2); // miss traffic still counted
        assert_eq!(out.evicted_bytes, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn second_occurrence_is_admitted() {
        let catalog = FileCatalog::from_sizes(vec![1; 6]);
        let mut cache = CacheState::new(4);
        let mut gate = AdmissionGate::second_hit(Lru::new());
        gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        let out = gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.serviced);
        assert!(cache.supports(&b(&[0, 1])));
        assert_eq!(gate.occurrences(&b(&[0, 1])), 2);
        // Third occurrence is now a hit.
        let out = gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.hit);
    }

    #[test]
    fn scan_does_not_pollute_hot_content() {
        let catalog = FileCatalog::from_sizes(vec![1; 30]);
        let mut cache = CacheState::new(2);
        let mut gate = AdmissionGate::second_hit(Lru::new());
        // Establish a hot pair.
        gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        gate.handle(&b(&[0, 1]), &mut cache, &catalog); // admitted
                                                        // A long one-shot scan.
        for i in 10..30u32 {
            gate.handle(&b(&[i]), &mut cache, &catalog);
        }
        // The hot pair survived the scan.
        assert!(cache.supports(&b(&[0, 1])));
        // Unwrapped LRU would have evicted it.
        let mut plain = Lru::new();
        let mut cache2 = CacheState::new(2);
        plain.handle(&b(&[0, 1]), &mut cache2, &catalog);
        plain.handle(&b(&[0, 1]), &mut cache2, &catalog);
        for i in 10..30u32 {
            plain.handle(&b(&[i]), &mut cache2, &catalog);
        }
        assert!(!cache2.supports(&b(&[0, 1])));
    }

    #[test]
    fn bypass_works_even_with_a_full_cache() {
        let catalog = FileCatalog::from_sizes(vec![2, 2, 2]);
        let mut cache = CacheState::new(4);
        let mut gate = AdmissionGate::second_hit(Lru::new());
        // Fill the cache through admission.
        gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        gate.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert_eq!(cache.free(), 0);
        // A one-shot request streams without evicting anything.
        let out = gate.handle(&b(&[2]), &mut cache, &catalog);
        assert!(out.serviced && out.streamed);
        assert!(!cache.contains(FileId(2)));
        assert!(cache.supports(&b(&[0, 1])));
    }

    #[test]
    fn min_occurrences_one_is_transparent() {
        let catalog = FileCatalog::from_sizes(vec![1; 8]);
        let trace: Vec<Bundle> = (0..30u32).map(|i| b(&[i % 8, (i + 1) % 8])).collect();
        let run_gate = || {
            let mut cache = CacheState::new(4);
            let mut p = AdmissionGate::new(Lru::new(), 1);
            trace
                .iter()
                .map(|r| p.handle(r, &mut cache, &catalog).fetched_bytes)
                .collect::<Vec<_>>()
        };
        let run_plain = || {
            let mut cache = CacheState::new(4);
            let mut p = Lru::new();
            trace
                .iter()
                .map(|r| p.handle(r, &mut cache, &catalog).fetched_bytes)
                .collect::<Vec<_>>()
        };
        assert_eq!(run_gate(), run_plain());
    }

    #[test]
    fn reset_clears_counts_and_inner() {
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let mut gate = AdmissionGate::second_hit(Lru::new());
        gate.handle(&b(&[0]), &mut cache, &catalog);
        gate.reset();
        assert_eq!(gate.occurrences(&b(&[0])), 0);
    }

    #[test]
    #[should_panic(expected = "min_occurrences")]
    fn zero_threshold_rejected() {
        let _ = AdmissionGate::new(Lru::new(), 0);
    }
}

//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003), adapted
//! to file-bundle requests and variable file sizes.
//!
//! ARC partitions residents into a recency list `T1` (seen once recently)
//! and a frequency list `T2` (seen at least twice), plus ghost lists
//! `B1`/`B2` of recently evicted file ids. Hits in the ghost lists steer an
//! adaptation target `p` (here in *bytes*): a `B1` ghost hit grows the
//! recency share, a `B2` ghost hit grows the frequency share. Victims come
//! from the LRU end of `T1` while `T1` exceeds `p`, otherwise from `T2`.
//!
//! The bundle adaptation is the same as for the other baselines: all of a
//! request's missing files are fetched, every file of the bundle is
//! "touched", and files of the in-flight bundle are never victims.
//!
//! All four lists are [`OrderedList`]s (slab + position map), so every list
//! transition is `O(1)` instead of the reference's `O(n)`
//! scan-and-`VecDeque::remove`, and `|T1|` in bytes is a maintained counter
//! instead of a per-eviction sum over a nested cache scan.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::{Bytes, FileId};
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::OrderedList;

/// Which resident list a file is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum List {
    T1,
    T2,
}

/// The ARC policy, bundle-adapted.
#[derive(Debug, Clone, Default)]
pub struct Arc {
    /// Resident membership.
    resident: HashMap<FileId, List>,
    /// LRU orders (front = oldest).
    t1: OrderedList<()>,
    t2: OrderedList<()>,
    /// Ghost lists of evicted ids (front = oldest), valued by file size.
    b1: OrderedList<Bytes>,
    b2: OrderedList<Bytes>,
    b1_bytes: Bytes,
    b2_bytes: Bytes,
    /// Maintained byte total of `t1` (the reference recomputed this per
    /// eviction with a nested scan over the cache).
    t1_bytes: Bytes,
    /// Adaptation target for `T1`, in bytes.
    p: Bytes,
    /// Ghost capacity (matches the cache size; set lazily on first use).
    ghost_capacity: Bytes,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Arc {
    /// Creates an empty ARC policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current adaptation target `p` in bytes (diagnostics).
    pub fn adaptation_target(&self) -> Bytes {
        self.p
    }

    /// Registers an access to `f` (resident or not), performing ARC's
    /// adaptation and list transitions for the *metadata*.
    fn touch(&mut self, f: FileId, size: Bytes, cache_capacity: Bytes) {
        self.ghost_capacity = cache_capacity;
        match self.resident.get(&f).copied() {
            Some(List::T1) => {
                // Promotion to frequency list.
                self.t1.remove(f);
                self.t1_bytes -= size;
                self.t2.push_back(f, ());
                self.resident.insert(f, List::T2);
            }
            Some(List::T2) => {
                // Refresh recency within T2.
                self.t2.move_to_back(f, ());
            }
            None => {
                // Ghost hits adapt p before (re)admission to T2/T1.
                if let Some(s) = self.b1.remove(f) {
                    // Recency ghost: grow T1's share.
                    self.b1_bytes -= s;
                    let delta = size.max(1);
                    self.p = (self.p + delta).min(cache_capacity);
                    self.t2.push_back(f, ());
                    self.resident.insert(f, List::T2);
                } else if let Some(s) = self.b2.remove(f) {
                    // Frequency ghost: shrink T1's share.
                    self.b2_bytes -= s;
                    let delta = size.max(1);
                    self.p = self.p.saturating_sub(delta);
                    self.t2.push_back(f, ());
                    self.resident.insert(f, List::T2);
                } else {
                    // Brand new: recency list.
                    self.t1.push_back(f, ());
                    self.t1_bytes += size;
                    self.resident.insert(f, List::T1);
                }
            }
        }
    }
}

impl CachePolicy for Arc {
    fn name(&self) -> &str {
        "ARC"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        // Destructure so the evictor closure can borrow the lists and
        // counters disjointly (the reference needed a RefCell dance here).
        let Self {
            resident,
            t1,
            t2,
            b1,
            b2,
            b1_bytes,
            b2_bytes,
            t1_bytes,
            p,
            ghost_capacity,
            obs: _,
            obs_slots: _,
        } = self;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            // LRU of T1 if |T1| > p, else LRU of T2; fall through to the
            // other list when every entry is pinned or in-flight.
            let from_t1 = *t1_bytes > *p;
            let (primary, secondary) = if from_t1 {
                (&mut *t1, &mut *t2)
            } else {
                (&mut *t2, &mut *t1)
            };
            let victim = primary
                .choose(cache, bundle)
                .or_else(|| secondary.choose(cache, bundle))?;
            // Move the victim's metadata to the matching ghost list. Sizes
            // come from the catalog, which is what the cache admitted.
            let size = catalog.size(victim);
            match resident.remove(&victim) {
                Some(List::T1) => {
                    *t1_bytes -= size;
                    b1.push_back(victim, size);
                    *b1_bytes += size;
                }
                Some(List::T2) => {
                    b2.push_back(victim, size);
                    *b2_bytes += size;
                }
                None => {}
            }
            // Keep each ghost list within the cache size in bytes.
            while *b1_bytes > *ghost_capacity {
                match b1.pop_front() {
                    Some((_, s)) => *b1_bytes -= s,
                    None => break,
                }
            }
            while *b2_bytes > *ghost_capacity {
                match b2.pop_front() {
                    Some((_, s)) => *b2_bytes -= s,
                    None => break,
                }
            }
            Some(victim)
        });
        if outcome.serviced {
            let capacity = cache.capacity();
            for f in bundle.iter() {
                self.touch(f, catalog.size(f), capacity);
            }
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        // Keep the attached observability sink across the state wipe.
        *self = Arc {
            obs: self.obs.clone(),
            ..Arc::default()
        };
    }
}

/// The pre-index ARC (VecDeque scans + per-eviction `|T1|`-bytes recompute),
/// retained verbatim so the differential suite can pin [`Arc`]'s list-based
/// victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct ArcReference {
    resident: HashMap<FileId, List>,
    t1: std::collections::VecDeque<FileId>,
    t2: std::collections::VecDeque<FileId>,
    b1: std::collections::VecDeque<(FileId, Bytes)>,
    b2: std::collections::VecDeque<(FileId, Bytes)>,
    b1_bytes: Bytes,
    b2_bytes: Bytes,
    p: Bytes,
    ghost_capacity: Bytes,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl ArcReference {
    /// Creates an empty reference ARC policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current adaptation target `p` in bytes (diagnostics).
    pub fn adaptation_target(&self) -> Bytes {
        self.p
    }

    fn remove_from_list(deque: &mut std::collections::VecDeque<FileId>, f: FileId) {
        if let Some(pos) = deque.iter().position(|&x| x == f) {
            deque.remove(pos);
        }
    }

    fn ghost_remove(
        ghosts: &mut std::collections::VecDeque<(FileId, Bytes)>,
        total: &mut Bytes,
        f: FileId,
    ) -> Option<Bytes> {
        if let Some(pos) = ghosts.iter().position(|&(x, _)| x == f) {
            let (_, size) = ghosts.remove(pos).expect("position valid");
            *total -= size;
            Some(size)
        } else {
            None
        }
    }

    fn trim_ghosts(&mut self) {
        while self.b1_bytes > self.ghost_capacity {
            if let Some((_, s)) = self.b1.pop_front() {
                self.b1_bytes -= s;
            } else {
                break;
            }
        }
        while self.b2_bytes > self.ghost_capacity {
            if let Some((_, s)) = self.b2.pop_front() {
                self.b2_bytes -= s;
            } else {
                break;
            }
        }
    }

    fn touch(&mut self, f: FileId, size: Bytes, cache_capacity: Bytes) {
        self.ghost_capacity = cache_capacity;
        match self.resident.get(&f).copied() {
            Some(List::T1) => {
                Self::remove_from_list(&mut self.t1, f);
                self.t2.push_back(f);
                self.resident.insert(f, List::T2);
            }
            Some(List::T2) => {
                Self::remove_from_list(&mut self.t2, f);
                self.t2.push_back(f);
            }
            None => {
                if Self::ghost_remove(&mut self.b1, &mut self.b1_bytes, f).is_some() {
                    let delta = size.max(1);
                    self.p = (self.p + delta).min(cache_capacity);
                    self.t2.push_back(f);
                    self.resident.insert(f, List::T2);
                } else if Self::ghost_remove(&mut self.b2, &mut self.b2_bytes, f).is_some() {
                    let delta = size.max(1);
                    self.p = self.p.saturating_sub(delta);
                    self.t2.push_back(f);
                    self.resident.insert(f, List::T2);
                } else {
                    self.t1.push_back(f);
                    self.resident.insert(f, List::T1);
                }
            }
        }
    }

    fn choose_victim(&self, cache: &CacheState, exclude: &Bundle) -> Option<FileId> {
        let t1_bytes: Bytes = self
            .t1
            .iter()
            .filter_map(|f| cache.iter().find(|&(g, _)| g == *f).map(|(_, s)| s))
            .sum();
        let evictable =
            |f: &FileId| cache.contains(*f) && !exclude.contains(*f) && !cache.is_pinned(*f);
        let from_t1 = t1_bytes > self.p;
        let primary = if from_t1 { &self.t1 } else { &self.t2 };
        let secondary = if from_t1 { &self.t2 } else { &self.t1 };
        primary
            .iter()
            .find(|f| evictable(f))
            .or_else(|| secondary.iter().find(|f| evictable(f)))
            .copied()
    }

    fn on_evict(&mut self, f: FileId, size: Bytes) {
        match self.resident.remove(&f) {
            Some(List::T1) => {
                Self::remove_from_list(&mut self.t1, f);
                self.b1.push_back((f, size));
                self.b1_bytes += size;
            }
            Some(List::T2) => {
                Self::remove_from_list(&mut self.t2, f);
                self.b2.push_back((f, size));
                self.b2_bytes += size;
            }
            None => {}
        }
        self.trim_ghosts();
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for ArcReference {
    fn name(&self) -> &str {
        "ARC"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let this = std::cell::RefCell::new(&mut *self);
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            let mut borrow = this.borrow_mut();
            let victim = borrow.choose_victim(cache, bundle)?;
            let size = cache
                .iter()
                .find(|&(g, _)| g == victim)
                .map(|(_, s)| s)
                .unwrap_or(0);
            borrow.on_evict(victim, size);
            Some(victim)
        });
        if outcome.serviced {
            let capacity = cache.capacity();
            for f in bundle.iter() {
                self.touch(f, catalog.size(f), capacity);
            }
        }
        outcome
    }

    fn reset(&mut self) {
        *self = ArcReference::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    fn setup(capacity: u64, n: u32) -> (FileCatalog, CacheState, Arc) {
        (
            FileCatalog::from_sizes(vec![1; n as usize]),
            CacheState::new(capacity),
            Arc::new(),
        )
    }

    #[test]
    fn second_access_promotes_to_t2() {
        let (catalog, mut cache, mut arc) = setup(4, 8);
        arc.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(arc.resident.get(&FileId(0)), Some(&List::T1));
        arc.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(arc.resident.get(&FileId(0)), Some(&List::T2));
    }

    #[test]
    fn scan_resistance_protects_frequent_files() {
        // Access {0,1} twice (T2), then stream distinct files through a
        // cache of 4. The frequent pair must survive the scan.
        let (catalog, mut cache, mut arc) = setup(4, 30);
        arc.handle(&b(&[0, 1]), &mut cache, &catalog);
        arc.handle(&b(&[0, 1]), &mut cache, &catalog);
        for i in 10..24u32 {
            arc.handle(&b(&[i]), &mut cache, &catalog);
        }
        assert!(
            cache.contains(FileId(0)) && cache.contains(FileId(1)),
            "scan evicted the frequent pair; resident={:?}",
            cache.resident_files_sorted()
        );
    }

    #[test]
    fn ghost_hit_adapts_target() {
        let (catalog, mut cache, mut arc) = setup(2, 10);
        arc.handle(&b(&[0]), &mut cache, &catalog);
        arc.handle(&b(&[1]), &mut cache, &catalog);
        arc.handle(&b(&[2]), &mut cache, &catalog); // evicts from T1 -> B1
        let p_before = arc.adaptation_target();
        // Re-request an evicted file: B1 ghost hit grows p.
        let evicted = [0u32, 1, 2]
            .into_iter()
            .find(|&i| !cache.contains(FileId(i)))
            .expect("someone was evicted");
        arc.handle(&b(&[evicted]), &mut cache, &catalog);
        assert!(arc.adaptation_target() >= p_before);
    }

    #[test]
    fn capacity_invariants_under_churn() {
        let (catalog, mut cache, mut arc) = setup(5, 40);
        let mut state = 0xA2Cu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let k = (next() % 3 + 1) as usize;
            let files: Vec<u32> = (0..k).map(|_| (next() % 40) as u32).collect();
            let bundle = Bundle::from_raw(files);
            let out = arc.handle(&bundle, &mut cache, &catalog);
            assert!(cache.check_invariants());
            if out.serviced {
                assert!(cache.supports(&bundle));
            }
            // Metadata consistency: resident sets agree.
            for (f, _) in cache.iter() {
                assert!(arc.resident.contains_key(&f), "untracked resident {f}");
            }
            assert_eq!(arc.resident.len(), cache.len());
            assert_eq!(arc.t1.len() + arc.t2.len(), cache.len());
        }
    }

    #[test]
    fn reset_clears_all_state() {
        let (catalog, mut cache, mut arc) = setup(2, 5);
        arc.handle(&b(&[0]), &mut cache, &catalog);
        arc.reset();
        assert!(arc.resident.is_empty());
        assert!(arc.t1.is_empty() && arc.t2.is_empty());
        assert_eq!(arc.adaptation_target(), 0);
    }

    /// Every list transition and the tracked `|T1|` byte counter must
    /// replay the reference ARC exactly, including adaptation of `p`,
    /// with non-uniform sizes.
    #[test]
    fn tracks_reference_with_variable_sizes() {
        let catalog = FileCatalog::from_sizes((0..18).map(|i| (i % 4) + 1).collect());
        let mut state = 0xA2C2u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut fast = Arc::new();
        let mut slow = ArcReference::new();
        let mut cache_fast = CacheState::new(10);
        let mut cache_slow = CacheState::new(10);
        for i in 0..400 {
            let k = (next() % 3 + 1) as usize;
            let r = Bundle::from_raw((0..k).map(|_| (next() % 18) as u32));
            let a = fast.handle(&r, &mut cache_fast, &catalog);
            let b = slow.handle(&r, &mut cache_slow, &catalog);
            assert_eq!(a, b, "diverged at request {i}");
            assert_eq!(
                fast.adaptation_target(),
                slow.adaptation_target(),
                "p diverged at request {i}"
            );
        }
        assert_eq!(
            cache_fast.resident_files_sorted(),
            cache_slow.resident_files_sorted()
        );
    }
}

//! Offline MIN (Belady) replacement, bundle-adapted.
//!
//! Given the full future trace, the victim is the file whose *next use* is
//! farthest in the future (never-used-again files first). Belady's MIN is
//! optimal for unit-size single-object caches; with variable file sizes and
//! bundle semantics it is merely a strong clairvoyant heuristic, giving a
//! useful lower-bound-ish reference curve for the simulators.
//!
//! Victim selection is indexed by a [`LazyHeap`] keyed on `Reverse(next
//! use)`. A resident file's next use only changes when the file is
//! requested — and a requested file is never an eviction candidate for its
//! own request — so re-keying the bundle's files after each service keeps
//! every heap key exact.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::cmp::Reverse;
use std::collections::HashMap;

use crate::util::LazyHeap;

fn next_use_of(
    uses: &HashMap<FileId, Vec<u64>>,
    cursor: &HashMap<FileId, usize>,
    now: u64,
    file: FileId,
) -> u64 {
    match uses.get(&file) {
        None => u64::MAX,
        Some(positions) => {
            let start = cursor.get(&file).copied().unwrap_or(0);
            positions[start..]
                .iter()
                .copied()
                .find(|&p| p > now)
                .unwrap_or(u64::MAX)
        }
    }
}

/// Clairvoyant farthest-next-use replacement.
#[derive(Debug, Clone, Default)]
pub struct BeladyMin {
    /// For each file, the sorted positions (0-based request index) at which
    /// it is used in the prepared trace.
    uses: HashMap<FileId, Vec<u64>>,
    /// Per-file cursor into `uses` (monotonic, advanced lazily).
    cursor: HashMap<FileId, usize>,
    /// Index of the request currently being handled.
    now: u64,
    prepared: bool,
    /// Resident files keyed by `Reverse(next use)`.
    index: LazyHeap<Reverse<u64>>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl BeladyMin {
    /// Creates an unprepared policy; call
    /// [`prepare`](CachePolicy::prepare) with the trace before running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Position of the next use of `file` strictly after the current
    /// request, or `u64::MAX` if never used again.
    fn next_use(&self, file: FileId) -> u64 {
        next_use_of(&self.uses, &self.cursor, self.now, file)
    }

    /// Advances cursors for the bundle's files past the current position.
    fn advance(&mut self, bundle: &Bundle) {
        for f in bundle.iter() {
            if let Some(positions) = self.uses.get(&f) {
                let cur = self.cursor.entry(f).or_insert(0);
                while *cur < positions.len() && positions[*cur] <= self.now {
                    *cur += 1;
                }
            }
        }
    }
}

impl CachePolicy for BeladyMin {
    fn name(&self) -> &str {
        "Belady-MIN"
    }

    fn prepare_from(&mut self, trace: &mut dyn Iterator<Item = &Bundle>) {
        self.uses.clear();
        self.cursor.clear();
        self.now = 0;
        self.index.clear();
        for (pos, bundle) in trace.enumerate() {
            for f in bundle.iter() {
                self.uses.entry(f).or_default().push(pos as u64);
            }
        }
        self.prepared = true;
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        debug_assert!(
            self.prepared,
            "BeladyMin::prepare must be called with the trace before handling requests"
        );
        let uses = &self.uses;
        let cursor = &self.cursor;
        let now = self.now;
        let index = &mut self.index;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if index.len() != cache.len() {
                index.rebuild(
                    cache
                        .iter()
                        .map(|(f, _)| (f, Reverse(next_use_of(uses, cursor, now, f)))),
                );
            }
            index.choose(cache, bundle)
        });
        for &f in &outcome.evicted_files {
            self.index.remove(f);
        }
        self.advance(bundle);
        // Re-key the requested files: their next use just moved (the key is
        // computed before `now` advances, so "strictly after the current
        // request" still means after this one).
        for f in bundle.iter() {
            if cache.contains(f) {
                self.index.update(f, Reverse(self.next_use(f)));
            }
        }
        self.now += 1;
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.uses.clear();
        self.cursor.clear();
        self.now = 0;
        self.prepared = false;
        self.index.clear();
    }
}

/// The pre-index full-scan Belady MIN, retained verbatim so the differential
/// suite can pin [`BeladyMin`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct BeladyMinReference {
    uses: HashMap<FileId, Vec<u64>>,
    cursor: HashMap<FileId, usize>,
    now: u64,
    prepared: bool,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl BeladyMinReference {
    /// Creates an unprepared reference policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_use(&self, file: FileId) -> u64 {
        next_use_of(&self.uses, &self.cursor, self.now, file)
    }

    fn advance(&mut self, bundle: &Bundle) {
        for f in bundle.iter() {
            if let Some(positions) = self.uses.get(&f) {
                let cur = self.cursor.entry(f).or_insert(0);
                while *cur < positions.len() && positions[*cur] <= self.now {
                    *cur += 1;
                }
            }
        }
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for BeladyMinReference {
    fn name(&self) -> &str {
        "Belady-MIN"
    }

    fn prepare_from(&mut self, trace: &mut dyn Iterator<Item = &Bundle>) {
        self.uses.clear();
        self.cursor.clear();
        self.now = 0;
        for (pos, bundle) in trace.enumerate() {
            for f in bundle.iter() {
                self.uses.entry(f).or_default().push(pos as u64);
            }
        }
        self.prepared = true;
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        debug_assert!(self.prepared, "prepare must be called before handling");
        let this: &BeladyMinReference = self;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            // Victim = farthest next use; `Reverse` turns max into min-by.
            crate::util::choose_victim_min_by_reference(cache, bundle, |f, _| {
                Reverse(this.next_use(f))
            })
        });
        self.advance(bundle);
        self.now += 1;
        outcome
    }

    fn reset(&mut self) {
        self.uses.clear();
        self.cursor.clear();
        self.now = 0;
        self.prepared = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_file_used_farthest_in_future() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let trace = vec![b(&[0]), b(&[1]), b(&[2]), b(&[0]), b(&[1])];
        let mut p = BeladyMin::new();
        p.prepare(&trace);
        let mut cache = CacheState::new(2);
        p.handle(&trace[0], &mut cache, &catalog);
        p.handle(&trace[1], &mut cache, &catalog);
        // At request 2 ({2}), f0 is next used at pos 3, f1 at pos 4 — evict f1.
        let out = p.handle(&trace[2], &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![fbc_core::types::FileId(1)]);
        // Request 3 ({0}) is then a hit.
        let out = p.handle(&trace[3], &mut cache, &catalog);
        assert!(out.hit);
    }

    #[test]
    fn never_used_again_evicted_first() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let trace = vec![b(&[0]), b(&[1]), b(&[2]), b(&[0])];
        let mut p = BeladyMin::new();
        p.prepare(&trace);
        let mut cache = CacheState::new(2);
        p.handle(&trace[0], &mut cache, &catalog);
        p.handle(&trace[1], &mut cache, &catalog);
        // f1 never recurs; f0 recurs at pos 3.
        let out = p.handle(&trace[2], &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![fbc_core::types::FileId(1)]);
    }

    #[test]
    fn beats_lru_on_looping_trace() {
        // The classic LRU-adversarial cyclic trace: loop over 3 files with a
        // cache of 2. LRU misses every time; MIN hits sometimes.
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let trace: Vec<Bundle> = (0..30).map(|i| b(&[i % 3])).collect();
        let run = |policy: &mut dyn CachePolicy| {
            policy.prepare(&trace);
            let mut cache = CacheState::new(2);
            let mut hits = 0;
            for r in &trace {
                if policy.handle(r, &mut cache, &catalog).hit {
                    hits += 1;
                }
            }
            hits
        };
        let min_hits = run(&mut BeladyMin::new());
        let lru_hits = run(&mut crate::lru::Lru::new());
        assert!(min_hits > lru_hits, "MIN {min_hits} vs LRU {lru_hits}");
        assert_eq!(lru_hits, 0);
    }

    #[test]
    fn reset_requires_reprepare() {
        let mut p = BeladyMin::new();
        p.prepare(&[b(&[0])]);
        p.reset();
        // Internal flag cleared; preparing again restores operation.
        p.prepare(&[b(&[0])]);
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let out = p.handle(&b(&[0]), &mut cache, &catalog);
        assert!(out.serviced);
    }
}

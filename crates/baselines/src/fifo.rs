//! First-In-First-Out replacement, bundle-adapted: the victim is the file
//! that has been resident the longest, regardless of use.
//!
//! Victim selection is indexed by an [`OrderedList`] in admission order:
//! newly fetched files append at the back (in ascending-id order within a
//! request, matching the reference scan's id tie-break) and hits never move
//! anything, so the front is always the reference scan's choice.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::OrderedList;

/// FIFO replacement policy.
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    clock: u64,
    admitted_at: HashMap<FileId, u64>,
    /// Residents in admission order (front = oldest admission).
    order: OrderedList<()>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Fifo {
    /// Creates an empty FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let admitted_at = &self.admitted_at;
        let order = &mut self.order;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if order.len() != cache.len() {
                // Policy state is out of step with the cache (e.g. reset
                // against a warm cache): rebuild in (tick, id) order.
                let mut residents: Vec<(u64, FileId)> = cache
                    .iter()
                    .map(|(f, _)| (admitted_at.get(&f).copied().unwrap_or(0), f))
                    .collect();
                residents.sort_unstable();
                order.clear();
                for (_, f) in residents {
                    order.push_back(f, ());
                }
            }
            order.choose(cache, bundle)
        });
        for f in &outcome.evicted_files {
            self.admitted_at.remove(f);
        }
        // Only *newly fetched* files get an admission stamp; hits on
        // resident files do not renew their lease (that's what makes it
        // FIFO rather than LRU).
        for f in &outcome.fetched_files {
            self.admitted_at.insert(*f, self.clock);
            self.order.push_back(*f, ());
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.admitted_at.clear();
        self.order.clear();
    }
}

/// The pre-index full-scan FIFO, retained verbatim so the differential suite
/// can pin [`Fifo`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct FifoReference {
    clock: u64,
    admitted_at: HashMap<FileId, u64>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl FifoReference {
    /// Creates an empty reference FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for FifoReference {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let admitted_at = &self.admitted_at;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            crate::util::choose_victim_min_by_reference(cache, bundle, |f, _| {
                admitted_at.get(&f).copied().unwrap_or(0)
            })
        });
        for f in &outcome.evicted_files {
            self.admitted_at.remove(f);
        }
        for f in &outcome.fetched_files {
            self.admitted_at.insert(*f, self.clock);
        }
        outcome
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.admitted_at.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_oldest_admission() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut fifo = Fifo::new();
        fifo.handle(&b(&[0]), &mut cache, &catalog);
        fifo.handle(&b(&[1]), &mut cache, &catalog);
        fifo.handle(&b(&[0]), &mut cache, &catalog); // hit: no lease renewal
        let out = fifo.handle(&b(&[2]), &mut cache, &catalog);
        // f0 is oldest despite its recent hit.
        assert_eq!(out.evicted_files, vec![FileId(0)]);
    }

    #[test]
    fn refetched_file_gets_new_lease() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(2);
        let mut fifo = Fifo::new();
        fifo.handle(&b(&[0]), &mut cache, &catalog);
        fifo.handle(&b(&[1]), &mut cache, &catalog);
        fifo.handle(&b(&[2]), &mut cache, &catalog); // evicts f0
        fifo.handle(&b(&[0]), &mut cache, &catalog); // evicts f1, readmits f0
        let out = fifo.handle(&b(&[1]), &mut cache, &catalog);
        // Oldest now is f2 (admitted at tick 3), not the readmitted f0.
        assert_eq!(out.evicted_files, vec![FileId(2)]);
        assert!(cache.contains(FileId(0)));
    }
}

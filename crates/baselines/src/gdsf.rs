//! Greedy-Dual-Size-Frequency (GDSF) replacement, bundle-adapted.
//!
//! GDSF ranks each resident file by `H(f) = L + freq(f) · cost(f) / size(f)`
//! where `L` is an inflation value updated to the `H` of the last victim.
//! With `cost(f) = size(f)` (cost proportional to bytes re-fetched, the
//! natural model for a data-grid), `H(f) = L + freq(f)` — frequency with
//! aging. GDSF is the strongest of the classic web-caching heuristics and a
//! natural additional comparator beyond the paper's Landlord.
//!
//! Victim selection is indexed by a [`LazyHeap`] keyed on the stored H
//! values, which only change when a file is serviced (L is folded into H at
//! insertion time, exactly as the classic priority-queue formulation of the
//! GreedyDual family prescribes). The one subtlety is a resync against a
//! warm cache: residents with no stored H are keyed `L + freq` with the
//! *current* L, so while any such file remains resident the index is
//! re-keyed per eviction round (matching the reference scan bit-for-bit)
//! until every resident has a stored H again.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::{LazyHeap, OrdF64};

/// How GDSF computes per-file cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GdsfCost {
    /// `cost(f) = size(f)` — H reduces to `L + freq` (byte-miss oriented).
    #[default]
    SizeProportional,
    /// `cost(f) = 1` — H = `L + freq/size` (favours small files).
    Uniform,
}

fn h_value_of(cost: GdsfCost, l: f64, freq: &HashMap<FileId, u64>, f: FileId, size: u64) -> f64 {
    let freq = freq.get(&f).copied().unwrap_or(0) as f64;
    match cost {
        GdsfCost::SizeProportional => l + freq,
        GdsfCost::Uniform => l + freq / size.max(1) as f64,
    }
}

/// The GDSF policy.
#[derive(Debug, Clone, Default)]
pub struct Gdsf {
    cost: GdsfCost,
    freq: HashMap<FileId, u64>,
    h: HashMap<FileId, f64>,
    /// Inflation value L.
    l: f64,
    /// Resident files keyed by H.
    index: LazyHeap<OrdF64>,
    /// Set while some resident lacks a stored H (post-resync): such files
    /// are keyed with the current L, so the index must be re-keyed per
    /// eviction round until they are all serviced or evicted.
    force_resync: bool,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Gdsf {
    /// GDSF with size-proportional cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// GDSF with an explicit cost model.
    pub fn with_cost(cost: GdsfCost) -> Self {
        Self {
            cost,
            ..Self::default()
        }
    }

    /// Current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.l
    }

    fn h_value(&self, f: FileId, size: u64) -> f64 {
        h_value_of(self.cost, self.l, &self.freq, f, size)
    }
}

impl CachePolicy for Gdsf {
    fn name(&self) -> &str {
        match self.cost {
            GdsfCost::SizeProportional => "GDSF",
            GdsfCost::Uniform => "GDSF(uniform-cost)",
        }
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        // Inflation L is read from the victims as they are chosen; H-values
        // and frequencies of the bundle's files update after service.
        let mut max_evicted_h: Option<f64> = None;
        let mut force_resync = self.force_resync;
        let outcome = {
            let cost = self.cost;
            let l = self.l;
            let freq = &self.freq;
            let h = &self.h;
            let index = &mut self.index;
            let max_evicted_h = &mut max_evicted_h;
            let force_resync = &mut force_resync;
            service_with_evictor(bundle, cache, catalog, move |cache| {
                if *force_resync || index.len() != cache.len() {
                    let mut missing = false;
                    index.rebuild(cache.iter().map(|(f, size)| {
                        let key = match h.get(&f) {
                            Some(&v) => v,
                            None => {
                                missing = true;
                                h_value_of(cost, l, freq, f, size)
                            }
                        };
                        (f, OrdF64(key))
                    }));
                    *force_resync = missing;
                }
                let victim = index.choose(cache, bundle);
                if let Some(f) = victim {
                    let size = catalog.size(f);
                    let hv = h
                        .get(&f)
                        .copied()
                        .unwrap_or_else(|| h_value_of(cost, l, freq, f, size));
                    *max_evicted_h = Some(max_evicted_h.map_or(hv, |a| a.max(hv)));
                }
                victim
            })
        };
        self.force_resync = force_resync;

        if let Some(max_h) = max_evicted_h {
            // L rises to the largest H evicted in this round.
            self.l = self.l.max(max_h);
        }
        for f in &outcome.evicted_files {
            self.freq.remove(f);
            self.h.remove(f);
            self.index.remove(*f);
        }
        if outcome.serviced {
            for f in bundle.iter() {
                *self.freq.entry(f).or_insert(0) += 1;
                let h = self.h_value(f, catalog.size(f));
                self.h.insert(f, h);
                if cache.contains(f) {
                    self.index.update(f, OrdF64(h));
                }
            }
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.h.clear();
        self.l = 0.0;
        self.index.clear();
        self.force_resync = false;
    }
}

/// The pre-index full-scan GDSF, retained verbatim so the differential suite
/// can pin [`Gdsf`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct GdsfReference {
    cost: GdsfCost,
    freq: HashMap<FileId, u64>,
    h: HashMap<FileId, f64>,
    l: f64,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl GdsfReference {
    /// Reference GDSF with size-proportional cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference GDSF with an explicit cost model.
    pub fn with_cost(cost: GdsfCost) -> Self {
        Self {
            cost,
            ..Self::default()
        }
    }

    fn h_value(&self, f: FileId, size: u64) -> f64 {
        h_value_of(self.cost, self.l, &self.freq, f, size)
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for GdsfReference {
    fn name(&self) -> &str {
        match self.cost {
            GdsfCost::SizeProportional => "GDSF",
            GdsfCost::Uniform => "GDSF(uniform-cost)",
        }
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let mut evicted_h: Vec<f64> = Vec::new();
        let outcome = {
            let this: &GdsfReference = &*self;
            let evicted_h = &mut evicted_h;
            service_with_evictor(bundle, cache, catalog, move |cache| {
                let victim =
                    crate::util::choose_victim_min_by_reference(cache, bundle, |f, size| {
                        this.h
                            .get(&f)
                            .copied()
                            .unwrap_or_else(|| this.h_value(f, size))
                    });
                if let Some(f) = victim {
                    let size = cache
                        .iter()
                        .find(|&(g, _)| g == f)
                        .map(|(_, s)| s)
                        .unwrap_or(1);
                    evicted_h.push(
                        this.h
                            .get(&f)
                            .copied()
                            .unwrap_or_else(|| this.h_value(f, size)),
                    );
                }
                victim
            })
        };

        if let Some(max_h) = evicted_h
            .iter()
            .copied()
            .fold(None::<f64>, |acc, h| Some(acc.map_or(h, |a| a.max(h))))
        {
            self.l = self.l.max(max_h);
        }
        for f in &outcome.evicted_files {
            self.freq.remove(f);
            self.h.remove(f);
        }
        if outcome.serviced {
            for f in bundle.iter() {
                *self.freq.entry(f).or_insert(0) += 1;
                let h = self.h_value(f, catalog.size(f));
                self.h.insert(f, h);
            }
        }
        outcome
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.h.clear();
        self.l = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_lowest_h_value() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut g = Gdsf::new();
        g.handle(&b(&[0]), &mut cache, &catalog);
        g.handle(&b(&[0]), &mut cache, &catalog); // f0 freq 2
        g.handle(&b(&[1]), &mut cache, &catalog); // f1 freq 1
        let out = g.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
    }

    #[test]
    fn inflation_rises_monotonically() {
        let catalog = FileCatalog::from_sizes(vec![1; 10]);
        let mut cache = CacheState::new(2);
        let mut g = Gdsf::new();
        let mut prev_l = 0.0;
        for i in 0..10u32 {
            g.handle(&b(&[i]), &mut cache, &catalog);
            assert!(g.inflation() >= prev_l);
            prev_l = g.inflation();
        }
        // After enough distinct insertions, evictions must have raised L.
        assert!(prev_l > 0.0);
    }

    #[test]
    fn aging_lets_new_files_displace_stale_popular_ones() {
        let catalog = FileCatalog::from_sizes(vec![1; 20]);
        let mut cache = CacheState::new(2);
        let mut g = Gdsf::new();
        // Make f0 very popular early.
        for _ in 0..5 {
            g.handle(&b(&[0]), &mut cache, &catalog);
        }
        // A long run of distinct files inflates L past f0's H.
        for i in 1..15u32 {
            g.handle(&b(&[i]), &mut cache, &catalog);
        }
        // f0 must eventually have been evicted despite its high frequency.
        assert!(!cache.contains(FileId(0)));
    }

    #[test]
    fn uniform_cost_prefers_keeping_small_files() {
        let catalog = FileCatalog::from_sizes(vec![10, 1, 10]);
        let mut cache = CacheState::new(11);
        let mut g = Gdsf::with_cost(GdsfCost::Uniform);
        g.handle(&b(&[0]), &mut cache, &catalog); // H = 1/10
        g.handle(&b(&[1]), &mut cache, &catalog); // H = 1/1
                                                  // Request f2 (10 bytes): evicting f0 alone frees enough; f0 has the
                                                  // lower H.
        let out = g.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
    }

    /// A reset against a warm cache leaves residents with no stored H; the
    /// index must keep matching the reference until that state heals.
    #[test]
    fn warm_reset_tracks_reference() {
        let catalog = FileCatalog::from_sizes(vec![1; 8]);
        let trace: Vec<Bundle> = (0..20u32).map(|i| b(&[i % 5, (i * 3) % 5])).collect();
        let mut fast = Gdsf::new();
        let mut slow = GdsfReference::new();
        let mut cache_fast = CacheState::new(3);
        let mut cache_slow = CacheState::new(3);
        for (i, r) in trace.iter().enumerate() {
            if i == 7 {
                fast.reset();
                slow.reset();
            }
            let a = fast.handle(r, &mut cache_fast, &catalog);
            let b = slow.handle(r, &mut cache_slow, &catalog);
            assert_eq!(a, b, "diverged at request {i}");
        }
    }
}

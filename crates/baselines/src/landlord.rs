//! The Landlord cache-replacement algorithm (Young 1998; Cao & Irani 1997),
//! adapted to file-bundle requests exactly as the paper's Algorithm 3.
//!
//! Landlord maintains a *credit* for every resident file. When space is
//! needed, every file's credit is decreased by the minimum (per the chosen
//! cost model) and zero-credit files are evicted; whenever a file is
//! referenced its credit is refreshed. The paper instantiates Landlord with
//! credits in `[0, 1]` and an unscaled decrement ([`CostModel::Uniform`]);
//! the classic greedy-dual-size instantiation ([`CostModel::SizeAware`])
//! charges rent proportionally to file size and is provided for comparison.
//!
//! A rent round inherently touches every tenant, so eviction stays `O(n)` —
//! but the indexed version runs it as two passes straight over the credit
//! ledger (no candidate `Vec`, no sort: the victim is the lowest-id file
//! that goes broke, which a running minimum finds order-independently) and
//! keeps a sorted *broke list* so the already-broke fast path is
//! `O(broke)` instead of a full scan. The global rent-offset trick usual
//! for Landlord priority queues is deliberately not used: files of the
//! in-flight bundle and pinned files are exempt from each round, so a
//! shared offset would charge them too and diverge from Algorithm 3.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use rustc_hash::FxHashMap;

/// How credits are assigned and rent is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Paper Algorithm 3: every file has credit in `[0, 1]`; a decrement
    /// round subtracts the minimum credit from every file regardless of
    /// size. Retrieval cost is treated as uniform per file.
    #[default]
    Uniform,
    /// Classic Landlord / greedy-dual-size: a file's credit starts at its
    /// size (cost of re-fetching it) and a decrement round subtracts
    /// `δ · size(f)` where `δ = min credit(f)/size(f)` — i.e. files are
    /// ranked by credit per byte.
    SizeAware,
}

fn initial_credit(cost_model: CostModel, size: u64) -> f64 {
    match cost_model {
        CostModel::Uniform => 1.0,
        CostModel::SizeAware => size as f64,
    }
}

fn rent_of(cost_model: CostModel, credit: f64, size: u64) -> f64 {
    match cost_model {
        CostModel::Uniform => credit,
        CostModel::SizeAware => credit / size.max(1) as f64,
    }
}

fn broke_insert(broke: &mut Vec<FileId>, f: FileId) {
    if let Err(i) = broke.binary_search(&f) {
        broke.insert(i, f);
    }
}

fn broke_remove(broke: &mut Vec<FileId>, f: FileId) {
    if let Ok(i) = broke.binary_search(&f) {
        broke.remove(i);
    }
}

/// The Landlord policy, bundle-adapted (paper Algorithm 3).
#[derive(Debug, Clone)]
pub struct Landlord {
    cost_model: CostModel,
    /// On a reference, a file's credit is raised to
    /// `credit + refresh_fraction · (cost − credit)`. Young's analysis
    /// allows any value in `[0, 1]`; 1.0 (reset to full cost) is the
    /// classic choice and the paper's.
    refresh_fraction: f64,
    credits: FxHashMap<FileId, f64>,
    /// Sorted ids of credited files whose rent is ≤ ε — the "surrender
    /// without a rent round" fast path. Entries are dropped lazily when the
    /// file is refreshed, evicted, or no longer resident.
    broke: Vec<FileId>,
    /// Observability sink (disabled unless a driver attaches one); counts
    /// rent rounds, broke-list evictions and credit refreshes.
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
    name: String,
}

impl Landlord {
    /// Landlord with the paper's uniform cost model (full refresh).
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::Uniform)
    }

    /// Landlord with an explicit cost model (full refresh).
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        Self::with_refresh(cost_model, 1.0)
    }

    /// Landlord with an explicit cost model and refresh fraction in
    /// `[0, 1]` (0 = never refresh ≈ FIFO flavour, 1 = classic reset to
    /// full cost ≈ LRU flavour; Young's competitive analysis covers the
    /// whole range).
    pub fn with_refresh(cost_model: CostModel, refresh_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&refresh_fraction),
            "refresh fraction must be in [0, 1], got {refresh_fraction}"
        );
        let base = match cost_model {
            CostModel::Uniform => "Landlord",
            CostModel::SizeAware => "Landlord(size-aware)",
        };
        let name = if (refresh_fraction - 1.0).abs() < f64::EPSILON {
            base.to_string()
        } else {
            format!("{base}(refresh={refresh_fraction:.2})")
        };
        Self {
            cost_model,
            refresh_fraction,
            credits: FxHashMap::default(),
            broke: Vec::new(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
            name,
        }
    }

    /// Current credit of a file (for tests/diagnostics).
    pub fn credit(&self, file: FileId) -> Option<f64> {
        self.credits.get(&file).copied()
    }
}

impl Default for Landlord {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for Landlord {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let cost_model = self.cost_model;
        let credits = &mut self.credits;
        let broke = &mut self.broke;
        let obs = self.obs.clone();

        // The eviction closure implements Algorithm 3 Step 3: repeatedly
        // find the minimum credit among evictable files not in F(r_new),
        // charge that rent to everyone, and surrender a zero-credit file.
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            // A resident file can lack a ledger entry (e.g. the policy was
            // reset while the cache stayed warm). It must start at its full
            // initial credit like any other tenant — treating it as credit 0
            // would hand it over as an "already-broke" victim without ever
            // charging it rent. When every resident is credited (the steady
            // state) the ledger length matches the cache and the scan is
            // skipped.
            if credits.len() != cache.len() {
                for (f, size) in cache.iter() {
                    if !bundle.contains(f) && !cache.is_pinned(f) && !credits.contains_key(&f) {
                        let c = initial_credit(cost_model, size);
                        credits.insert(f, c);
                        if rent_of(cost_model, c, size) <= f64::EPSILON {
                            broke_insert(broke, f);
                        }
                    }
                }
            }

            // Look for an already-broke tenant before charging more rent:
            // the broke list is sorted, so the first evictable entry is the
            // reference scan's lowest-id choice.
            let mut i = 0;
            while i < broke.len() {
                let f = broke[i];
                if !cache.contains(f) || !credits.contains_key(&f) {
                    broke.remove(i);
                    continue;
                }
                if bundle.contains(f) || cache.is_pinned(f) {
                    i += 1;
                    continue;
                }
                broke.remove(i);
                credits.remove(&f);
                obs.incr("landlord.broke_evictions");
                return Some(f);
            }

            // Rent round, two passes over the ledger. Pass 1: δ = minimum
            // rent among candidates (a min fold is iteration-order
            // independent: credits are never NaN and never −0.0).
            let mut delta = f64::INFINITY;
            let mut candidates = 0usize;
            for (&f, &c) in credits.iter() {
                if !cache.contains(f) || bundle.contains(f) || cache.is_pinned(f) {
                    continue;
                }
                candidates += 1;
                delta = delta.min(rent_of(cost_model, c, catalog.size(f)));
            }
            if candidates == 0 {
                return None;
            }
            obs.incr("landlord.rent_rounds");

            // Pass 2: charge every candidate; the victim is the lowest-id
            // file whose credit hits zero (a running id-minimum, so the map's
            // iteration order does not matter).
            let mut victim: Option<FileId> = None;
            for (&f, c) in credits.iter_mut() {
                if !cache.contains(f) || bundle.contains(f) || cache.is_pinned(f) {
                    continue;
                }
                let size = catalog.size(f);
                let charge = match cost_model {
                    CostModel::Uniform => delta,
                    CostModel::SizeAware => delta * size.max(1) as f64,
                };
                *c = (*c - charge).max(0.0);
                if *c <= f64::EPSILON && victim.is_none_or(|v| f < v) {
                    victim = Some(f);
                }
                if rent_of(cost_model, *c, size) <= f64::EPSILON {
                    broke_insert(broke, f);
                }
            }
            if let Some(f) = victim {
                credits.remove(&f);
                broke_remove(broke, f);
            }
            victim
        });

        // Step 4: refresh the credit of every file of the serviced bundle
        // (newly fetched and already-resident alike). Newly fetched files
        // always start at full cost; already-resident files move toward it
        // by the configured refresh fraction.
        if outcome.serviced {
            for f in bundle.iter() {
                let size = catalog.size(f);
                let full = initial_credit(self.cost_model, size);
                let new_credit = if outcome.fetched_files.contains(&f) {
                    full
                } else {
                    self.obs.incr("landlord.credit_refreshes");
                    let current = self.credits.get(&f).copied().unwrap_or(0.0);
                    current + self.refresh_fraction * (full - current)
                };
                self.credits.insert(f, new_credit);
                if rent_of(self.cost_model, new_credit, size) <= f64::EPSILON {
                    broke_insert(&mut self.broke, f);
                } else {
                    broke_remove(&mut self.broke, f);
                }
            }
        }
        // Drop credit entries of files evicted by the run (already removed
        // inside the closure, but eviction can also bypass it on errors).
        for f in &outcome.evicted_files {
            self.credits.remove(f);
            broke_remove(&mut self.broke, *f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.credits.clear();
        self.broke.clear();
    }
}

/// The pre-index Landlord (per-eviction candidate collect + sort), retained
/// verbatim so the differential suite can pin [`Landlord`]'s two-pass rent
/// round against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone)]
pub struct LandlordReference {
    cost_model: CostModel,
    refresh_fraction: f64,
    credits: std::collections::HashMap<FileId, f64>,
    name: String,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl LandlordReference {
    /// Reference Landlord with the paper's uniform cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::Uniform)
    }

    /// Reference Landlord with an explicit cost model (full refresh).
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        Self::with_refresh(cost_model, 1.0)
    }

    /// Reference Landlord with an explicit cost model and refresh fraction.
    pub fn with_refresh(cost_model: CostModel, refresh_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&refresh_fraction),
            "refresh fraction must be in [0, 1], got {refresh_fraction}"
        );
        let base = match cost_model {
            CostModel::Uniform => "Landlord",
            CostModel::SizeAware => "Landlord(size-aware)",
        };
        let name = if (refresh_fraction - 1.0).abs() < f64::EPSILON {
            base.to_string()
        } else {
            format!("{base}(refresh={refresh_fraction:.2})")
        };
        Self {
            cost_model,
            refresh_fraction,
            credits: std::collections::HashMap::new(),
            name,
        }
    }

    /// Current credit of a file (for tests/diagnostics).
    pub fn credit(&self, file: FileId) -> Option<f64> {
        self.credits.get(&file).copied()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl Default for LandlordReference {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for LandlordReference {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let cost_model = self.cost_model;
        let credits = &mut self.credits;

        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            let mut candidates: Vec<(FileId, u64)> = cache
                .iter()
                .filter(|&(f, _)| !bundle.contains(f) && !cache.is_pinned(f))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_unstable_by_key(|&(f, _)| f);

            for &(f, size) in &candidates {
                credits
                    .entry(f)
                    .or_insert_with(|| initial_credit(cost_model, size));
            }

            let rent = |f: FileId, size: u64| rent_of(cost_model, credits[&f], size);

            if let Some(&(f, _)) = candidates
                .iter()
                .find(|&&(f, s)| rent(f, s) <= f64::EPSILON)
            {
                credits.remove(&f);
                return Some(f);
            }

            let delta = candidates
                .iter()
                .map(|&(f, s)| rent(f, s))
                .fold(f64::INFINITY, f64::min);
            let mut victim = None;
            for &(f, size) in &candidates {
                let charge = match cost_model {
                    CostModel::Uniform => delta,
                    CostModel::SizeAware => delta * size.max(1) as f64,
                };
                let c = credits.get_mut(&f).expect("entry created above");
                *c = (*c - charge).max(0.0);
                if *c <= f64::EPSILON && victim.is_none() {
                    victim = Some(f);
                }
            }
            if let Some(f) = victim {
                credits.remove(&f);
            }
            victim
        });

        if outcome.serviced {
            for f in bundle.iter() {
                let full = initial_credit(self.cost_model, catalog.size(f));
                let new_credit = if outcome.fetched_files.contains(&f) {
                    full
                } else {
                    let current = self.credits.get(&f).copied().unwrap_or(0.0);
                    current + self.refresh_fraction * (full - current)
                };
                self.credits.insert(f, new_credit);
            }
        }
        for f in &outcome.evicted_files {
            self.credits.remove(f);
        }
        outcome
    }

    fn reset(&mut self) {
        self.credits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn cold_fetch_assigns_full_credit() {
        let catalog = FileCatalog::from_sizes(vec![5, 5]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::new();
        let out = ll.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(ll.credit(FileId(0)), Some(1.0));
        assert_eq!(ll.credit(FileId(1)), Some(1.0));
    }

    #[test]
    fn eviction_charges_rent_and_removes_broke_files() {
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::new();
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.handle(&b(&[1]), &mut cache, &catalog);
        // Cache full {0,1}. Request {2} forces one eviction; both have
        // credit 1, the minimum is charged, both drop to 0, and the lowest
        // id (f0) is evicted.
        let out = ll.handle(&b(&[2]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
        // f1 survives with zero credit; next eviction takes it for free.
        let out = ll.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
    }

    #[test]
    fn reference_refreshes_credit() {
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::new();
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.handle(&b(&[1]), &mut cache, &catalog);
        ll.handle(&b(&[2]), &mut cache, &catalog); // evicts f0, f1 at credit 0
        ll.handle(&b(&[1]), &mut cache, &catalog); // hit: refresh f1 to 1.0
        assert_eq!(ll.credit(FileId(1)), Some(1.0));
        // Now f2 (still credit 1.0 too) — request {0} evicts the lowest id
        // among ties after a rent round.
        let out = ll.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(out.evicted_files.len(), 1);
    }

    #[test]
    fn size_aware_model_prefers_evicting_large_cold_files() {
        let catalog = FileCatalog::from_sizes(vec![8, 2, 2]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::with_cost_model(CostModel::SizeAware);
        ll.handle(&b(&[0]), &mut cache, &catalog); // credit 8 (rent 1/byte)
        ll.handle(&b(&[1]), &mut cache, &catalog); // credit 2
                                                   // Request {2}: needs 2 bytes. Rent per byte equal (1.0) for both;
                                                   // both zero out after one round; lowest id (f0) goes.
        let out = ll.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
    }

    #[test]
    fn credits_stay_in_unit_interval_under_uniform_model() {
        let catalog = FileCatalog::from_sizes(vec![1; 20]);
        let mut cache = CacheState::new(5);
        let mut ll = Landlord::new();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let k = (next() % 3 + 1) as usize;
            let files: Vec<u32> = (0..k).map(|_| (next() % 20) as u32).collect();
            ll.handle(&Bundle::from_raw(files), &mut cache, &catalog);
            for (f, _) in cache.iter() {
                if let Some(c) = ll.credit(f) {
                    assert!((0.0..=1.0).contains(&c), "credit {c} out of range");
                }
            }
            assert!(cache.check_invariants());
        }
    }

    #[test]
    fn bundle_files_are_never_victims() {
        let catalog = FileCatalog::from_sizes(vec![4, 4, 4]);
        let mut cache = CacheState::new(8);
        let mut ll = Landlord::new();
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.handle(&b(&[1]), &mut cache, &catalog);
        // {1,2} keeps f1 (part of the bundle) and evicts f0.
        let out = ll.handle(&b(&[1, 2]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)) && cache.contains(FileId(2)));
    }

    #[test]
    fn partial_refresh_moves_credit_toward_cost() {
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::with_refresh(CostModel::Uniform, 0.5);
        assert_eq!(ll.name(), "Landlord(refresh=0.50)");
        ll.handle(&b(&[0]), &mut cache, &catalog); // fetched: full credit 1.0
        ll.handle(&b(&[1]), &mut cache, &catalog);
        ll.handle(&b(&[2]), &mut cache, &catalog); // rent round zeroes both, evicts f0
                                                   // f1 survived at credit 0; a hit refreshes halfway to cost.
        ll.handle(&b(&[1]), &mut cache, &catalog);
        assert!((ll.credit(FileId(1)).unwrap() - 0.5).abs() < 1e-12);
        // A second hit: 0.5 + 0.5·(1−0.5) = 0.75.
        ll.handle(&b(&[1]), &mut cache, &catalog);
        assert!((ll.credit(FileId(1)).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_refresh_never_renews_resident_credit() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut ll = Landlord::with_refresh(CostModel::Uniform, 0.0);
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.handle(&b(&[1]), &mut cache, &catalog);
        ll.handle(&b(&[0]), &mut cache, &catalog); // hit: no renewal
                                                   // Rent round: both at 1.0, f0 (lowest id) evicted despite its hit —
                                                   // zero refresh degenerates to FIFO-like behaviour.
        let out = ll.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
    }

    #[test]
    #[should_panic(expected = "refresh fraction")]
    fn bad_refresh_fraction_rejected() {
        let _ = Landlord::with_refresh(CostModel::Uniform, 1.5);
    }

    #[test]
    fn uncredited_resident_is_not_evicted_for_free() {
        // Regression: a resident file with no credit entry (here: the policy
        // was reset while the cache stayed warm) used to look "already
        // broke" and was surrendered without a rent round.
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(10);
        let mut ll = Landlord::new();
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.handle(&b(&[1]), &mut cache, &catalog);
        ll.reset(); // credits gone, f0 and f1 still resident
        ll.handle(&b(&[0]), &mut cache, &catalog); // hit: only f0 re-credited
        assert_eq!(ll.credit(FileId(1)), None, "f1 resident but uncredited");

        // {2} forces one eviction. f1 must be initialised to full credit and
        // charged rent like f0 — then the tie breaks to the lowest id (f0),
        // not to the uncredited f1.
        let out = ll.handle(&b(&[2]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
    }

    #[test]
    fn reset_clears_credits() {
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let mut ll = Landlord::new();
        ll.handle(&b(&[0]), &mut cache, &catalog);
        ll.reset();
        assert_eq!(ll.credit(FileId(0)), None);
    }

    /// The two-pass rent round and broke list must replay the reference's
    /// Algorithm 3 exactly, in both cost models and under partial refresh.
    #[test]
    fn tracks_reference_in_both_cost_models() {
        let catalog = FileCatalog::from_sizes((0..15).map(|i| (i % 4) + 1).collect());
        for (cost_model, refresh) in [
            (CostModel::Uniform, 1.0),
            (CostModel::Uniform, 0.5),
            (CostModel::SizeAware, 1.0),
        ] {
            let mut state = 0x11AAu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut fast = Landlord::with_refresh(cost_model, refresh);
            let mut slow = LandlordReference::with_refresh(cost_model, refresh);
            let mut cache_fast = CacheState::new(8);
            let mut cache_slow = CacheState::new(8);
            for i in 0..300 {
                let k = (next() % 3 + 1) as usize;
                let r = Bundle::from_raw((0..k).map(|_| (next() % 15) as u32));
                let a = fast.handle(&r, &mut cache_fast, &catalog);
                let b = slow.handle(&r, &mut cache_slow, &catalog);
                assert_eq!(a, b, "{cost_model:?} diverged at request {i}");
                for f in (0..15u32).map(FileId) {
                    assert_eq!(
                        fast.credit(f),
                        slow.credit(f),
                        "{cost_model:?} credit of {f:?} diverged at request {i}"
                    );
                }
            }
        }
    }
}

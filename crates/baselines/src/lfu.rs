//! Least-Frequently-Used replacement, bundle-adapted.
//!
//! Tracks per-file reference counts (across the file's whole lifetime, not
//! just the current residency) and evicts the least-referenced file. This is
//! exactly the "most popular files" strategy the paper's §3 example shows to
//! be inferior to bundle-aware selection.
//!
//! Victim selection is indexed by a [`LazyHeap`] keyed on the lifetime
//! count, reprioritised whenever a serviced bundle bumps a resident file's
//! count — `O(log n)` per eviction instead of the reference scan's
//! `O(n log n)`.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::LazyHeap;

/// LFU replacement policy.
#[derive(Debug, Clone, Default)]
pub struct Lfu {
    counts: HashMap<FileId, u64>,
    /// Resident files keyed by current lifetime count.
    index: LazyHeap<u64>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Lfu {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference count of a file (diagnostics).
    pub fn count(&self, file: FileId) -> u64 {
        self.counts.get(&file).copied().unwrap_or(0)
    }
}

impl CachePolicy for Lfu {
    fn name(&self) -> &str {
        "LFU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let counts = &self.counts;
        let index = &mut self.index;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if index.len() != cache.len() {
                // Policy state is out of step with the cache (e.g. reset
                // against a warm cache): re-key every resident.
                index.rebuild(
                    cache
                        .iter()
                        .map(|(f, _)| (f, counts.get(&f).copied().unwrap_or(0))),
                );
            }
            index.choose(cache, bundle)
        });
        if outcome.serviced {
            for f in bundle.iter() {
                let c = self.counts.entry(f).or_insert(0);
                *c += 1;
                let c = *c;
                if cache.contains(f) {
                    self.index.update(f, c);
                }
            }
        }
        for &f in &outcome.evicted_files {
            self.index.remove(f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.index.clear();
    }
}

/// The pre-index full-scan LFU, retained verbatim so the differential suite
/// can pin [`Lfu`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct LfuReference {
    counts: HashMap<FileId, u64>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl LfuReference {
    /// Creates an empty reference LFU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for LfuReference {
    fn name(&self) -> &str {
        "LFU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let counts = &self.counts;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            crate::util::choose_victim_min_by_reference(cache, bundle, |f, _| {
                counts.get(&f).copied().unwrap_or(0)
            })
        });
        if outcome.serviced {
            for f in bundle.iter() {
                *self.counts.entry(f).or_insert(0) += 1;
            }
        }
        outcome
    }

    fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_least_frequent() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lfu = Lfu::new();
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[1]), &mut cache, &catalog);
        // f0 count=2, f1 count=1: the newcomer displaces f1.
        let out = lfu.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn counts_persist_across_eviction() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(1);
        let mut lfu = Lfu::new();
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[1]), &mut cache, &catalog); // evicts f0
        assert_eq!(lfu.count(FileId(0)), 1); // history retained
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(lfu.count(FileId(0)), 2);
    }

    #[test]
    fn popularity_trap_holds_wrong_combination() {
        // The paper's core observation: LFU keeps individually popular files
        // even when no request can use that combination. Files 0 and 1 are
        // popular separately (never together); requests then need {0,2}.
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lfu = Lfu::new();
        for _ in 0..5 {
            lfu.handle(&b(&[0]), &mut cache, &catalog);
            lfu.handle(&b(&[1]), &mut cache, &catalog);
        }
        // Cache holds {0,1}, both with count 5. Request {2,3} must evict
        // both popular files to fit...
        let out = lfu.handle(&b(&[2, 3]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files.len(), 2);
        // ...and the next {0} request misses again: LFU never "learns"
        // combinations, it only counts.
        let out = lfu.handle(&b(&[0]), &mut cache, &catalog);
        assert!(!out.hit);
    }

    #[test]
    fn resyncs_after_reset_against_warm_cache() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lfu = Lfu::new();
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[1]), &mut cache, &catalog);
        lfu.reset(); // cache stays warm, index and counts are gone
        let out = lfu.handle(&b(&[2]), &mut cache, &catalog);
        // All counts are 0 after the reset: the id tie-break picks f0.
        assert_eq!(out.evicted_files, vec![FileId(0)]);
    }
}

//! Least-Frequently-Used replacement, bundle-adapted.
//!
//! Tracks per-file reference counts (across the file's whole lifetime, not
//! just the current residency) and evicts the least-referenced file. This is
//! exactly the "most popular files" strategy the paper's §3 example shows to
//! be inferior to bundle-aware selection.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, RequestOutcome};
use fbc_core::types::FileId;
use std::collections::HashMap;

use crate::util::choose_victim_min_by;

/// LFU replacement policy.
#[derive(Debug, Clone, Default)]
pub struct Lfu {
    counts: HashMap<FileId, u64>,
}

impl Lfu {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference count of a file (diagnostics).
    pub fn count(&self, file: FileId) -> u64 {
        self.counts.get(&file).copied().unwrap_or(0)
    }
}

impl CachePolicy for Lfu {
    fn name(&self) -> &str {
        "LFU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let counts = &self.counts;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            choose_victim_min_by(cache, bundle, |f, _| counts.get(&f).copied().unwrap_or(0))
        });
        if outcome.serviced {
            for f in bundle.iter() {
                *self.counts.entry(f).or_insert(0) += 1;
            }
        }
        outcome
    }

    fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_least_frequent() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lfu = Lfu::new();
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[1]), &mut cache, &catalog);
        // f0 count=2, f1 count=1: the newcomer displaces f1.
        let out = lfu.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn counts_persist_across_eviction() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(1);
        let mut lfu = Lfu::new();
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        lfu.handle(&b(&[1]), &mut cache, &catalog); // evicts f0
        assert_eq!(lfu.count(FileId(0)), 1); // history retained
        lfu.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(lfu.count(FileId(0)), 2);
    }

    #[test]
    fn popularity_trap_holds_wrong_combination() {
        // The paper's core observation: LFU keeps individually popular files
        // even when no request can use that combination. Files 0 and 1 are
        // popular separately (never together); requests then need {0,2}.
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lfu = Lfu::new();
        for _ in 0..5 {
            lfu.handle(&b(&[0]), &mut cache, &catalog);
            lfu.handle(&b(&[1]), &mut cache, &catalog);
        }
        // Cache holds {0,1}, both with count 5. Request {2,3} must evict
        // both popular files to fit...
        let out = lfu.handle(&b(&[2, 3]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files.len(), 2);
        // ...and the next {0} request misses again: LFU never "learns"
        // combinations, it only counts.
        let out = lfu.handle(&b(&[0]), &mut cache, &catalog);
        assert!(!out.hit);
    }
}

//! # fbc-baselines — bundle-adapted classic replacement policies
//!
//! The comparators for `OptFileBundle`: the paper's own baseline — the
//! [Landlord algorithm](landlord::Landlord) of Young / Cao–Irani, adapted to
//! file-bundle requests exactly as the paper's Algorithm 3 — plus the wider
//! family of classic policies (LRU, LFU, GDSF, FIFO, SIZE, Random) and a
//! clairvoyant offline reference ([Belady MIN](belady::BeladyMin)).
//!
//! Every policy implements [`fbc_core::policy::CachePolicy`]: it is handed
//! one bundle at a time, fetches all of the bundle's missing files, and
//! chooses victims by its own ranking. None of them is aware of *which files
//! are requested together* — that blindness is the paper's thesis, and the
//! simulations in `fbc-sim` quantify it.

#![warn(missing_docs)]

pub mod admission;
pub mod arc;
pub mod belady;
pub mod fifo;
pub mod gdsf;
pub mod landlord;
pub mod lfu;
pub mod lru;
pub mod lruk;
pub mod online_bundle;
pub mod random;
pub mod size;
pub mod slru;
pub mod util;

pub use admission::AdmissionGate;
pub use arc::Arc;
pub use belady::BeladyMin;
pub use fifo::Fifo;
pub use gdsf::{Gdsf, GdsfCost};
pub use landlord::{CostModel, Landlord};
pub use lfu::Lfu;
pub use lru::Lru;
pub use lruk::LruK;
pub use online_bundle::{
    distributed_marking_bound, marking_competitive_bound, BundleMarking, BundleMarkingRandom,
};
pub use random::RandomEvict;
pub use size::LargestFirst;
pub use slru::Slru;

use fbc_core::policy::{CachePolicy, SendPolicy};

/// Identifier for constructing any policy in the workspace by name — used by
/// sweep drivers and experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// `OptFileBundle` with its default (paper) configuration.
    OptFileBundle,
    /// Landlord, paper Algorithm 3 cost model.
    Landlord,
    /// Landlord with the classic size-aware (greedy-dual-size) cost model.
    LandlordSizeAware,
    /// Least recently used.
    Lru,
    /// LRU-2 (O'Neil et al.).
    Lru2,
    /// Adaptive Replacement Cache (Megiddo & Modha).
    Arc,
    /// Least frequently used.
    Lfu,
    /// Greedy-Dual-Size-Frequency.
    Gdsf,
    /// First in, first out.
    Fifo,
    /// Uniform random victim (seed 0xF1BC).
    Random,
    /// Evict the largest file first.
    LargestFirst,
    /// Segmented LRU (probation + protected segments).
    Slru,
    /// Qin–Etesami online bundle-marking, deterministic LRU flavour
    /// ((k − ℓ + 1)-competitive on unit files).
    BundleMarking,
    /// Qin–Etesami online bundle-marking, randomized flavour (seed 0xF1BC).
    BundleMarkingRand,
    /// Offline Belady MIN (requires `prepare(trace)`).
    BeladyMin,
}

impl PolicyKind {
    /// All online policies (excludes the clairvoyant Belady MIN).
    pub const ONLINE: [PolicyKind; 14] = [
        PolicyKind::OptFileBundle,
        PolicyKind::Landlord,
        PolicyKind::LandlordSizeAware,
        PolicyKind::Lru,
        PolicyKind::Lru2,
        PolicyKind::Arc,
        PolicyKind::Lfu,
        PolicyKind::Gdsf,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::LargestFirst,
        PolicyKind::Slru,
        PolicyKind::BundleMarking,
        PolicyKind::BundleMarkingRand,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::OptFileBundle => Box::new(fbc_core::optfilebundle::OptFileBundle::new()),
            PolicyKind::Landlord => Box::new(Landlord::new()),
            PolicyKind::LandlordSizeAware => {
                Box::new(Landlord::with_cost_model(CostModel::SizeAware))
            }
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lru2 => Box::new(LruK::lru2()),
            PolicyKind::Arc => Box::new(Arc::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::Gdsf => Box::new(Gdsf::new()),
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::Random => Box::new(RandomEvict::new(0xF1BC)),
            PolicyKind::LargestFirst => Box::new(LargestFirst::new()),
            PolicyKind::Slru => Box::new(Slru::new()),
            PolicyKind::BundleMarking => Box::new(BundleMarking::new()),
            PolicyKind::BundleMarkingRand => Box::new(BundleMarkingRandom::new(0xF1BC)),
            PolicyKind::BeladyMin => Box::new(BeladyMin::new()),
        }
    }

    /// Instantiates the policy as a [`SendPolicy`] for cross-thread use
    /// (sharded drivers build one instance per worker). Same constructors
    /// and configuration as [`build`](Self::build) — every policy in the
    /// workspace owns its state, so all of them are `Send`.
    pub fn build_send(self) -> SendPolicy {
        match self {
            PolicyKind::OptFileBundle => Box::new(fbc_core::optfilebundle::OptFileBundle::new()),
            PolicyKind::Landlord => Box::new(Landlord::new()),
            PolicyKind::LandlordSizeAware => {
                Box::new(Landlord::with_cost_model(CostModel::SizeAware))
            }
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lru2 => Box::new(LruK::lru2()),
            PolicyKind::Arc => Box::new(Arc::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::Gdsf => Box::new(Gdsf::new()),
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::Random => Box::new(RandomEvict::new(0xF1BC)),
            PolicyKind::LargestFirst => Box::new(LargestFirst::new()),
            PolicyKind::Slru => Box::new(Slru::new()),
            PolicyKind::BundleMarking => Box::new(BundleMarking::new()),
            PolicyKind::BundleMarkingRand => Box::new(BundleMarkingRandom::new(0xF1BC)),
            PolicyKind::BeladyMin => Box::new(BeladyMin::new()),
        }
    }

    /// Instantiates the pre-index reference twin of the policy — the
    /// per-eviction full-scan implementation retained verbatim for
    /// differential testing and the `perf_eviction` speedup benchmark.
    /// Returns `None` for [`PolicyKind::OptFileBundle`], whose reference
    /// kernels live in `fbc-core` (see `tests/kernel_equivalence.rs`).
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn build_reference(self) -> Option<Box<dyn CachePolicy>> {
        match self {
            PolicyKind::OptFileBundle => None,
            PolicyKind::Landlord => Some(Box::new(landlord::LandlordReference::new())),
            PolicyKind::LandlordSizeAware => Some(Box::new(
                landlord::LandlordReference::with_cost_model(CostModel::SizeAware),
            )),
            PolicyKind::Lru => Some(Box::new(lru::LruReference::new())),
            PolicyKind::Lru2 => Some(Box::new(lruk::LruKReference::lru2())),
            PolicyKind::Arc => Some(Box::new(arc::ArcReference::new())),
            PolicyKind::Lfu => Some(Box::new(lfu::LfuReference::new())),
            PolicyKind::Gdsf => Some(Box::new(gdsf::GdsfReference::new())),
            PolicyKind::Fifo => Some(Box::new(fifo::FifoReference::new())),
            PolicyKind::Random => Some(Box::new(random::RandomEvictReference::new(0xF1BC))),
            PolicyKind::LargestFirst => Some(Box::new(size::LargestFirstReference::new())),
            PolicyKind::Slru => Some(Box::new(slru::SlruReference::new())),
            PolicyKind::BundleMarking => {
                Some(Box::new(online_bundle::BundleMarkingReference::new()))
            }
            PolicyKind::BundleMarkingRand => Some(Box::new(
                online_bundle::BundleMarkingRandomReference::new(0xF1BC),
            )),
            PolicyKind::BeladyMin => Some(Box::new(belady::BeladyMinReference::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::cache::CacheState;
    use fbc_core::catalog::FileCatalog;

    /// Every policy must respect the cache capacity invariant and service
    /// feasible requests on an arbitrary workload.
    #[test]
    fn all_policies_satisfy_basic_contract() {
        let catalog = FileCatalog::from_sizes((1..=30).map(|i| (i % 5) + 1).collect());
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let trace: Vec<Bundle> = (0..150)
            .map(|_| {
                let k = (next() % 3 + 1) as usize;
                Bundle::from_raw((0..k).map(|_| (next() % 30) as u32))
            })
            .collect();

        let mut kinds = PolicyKind::ONLINE.to_vec();
        kinds.push(PolicyKind::BeladyMin);
        for kind in kinds {
            let mut policy = kind.build();
            policy.prepare(&trace);
            let mut cache = CacheState::new(12);
            for bundle in &trace {
                let out = policy.handle(bundle, &mut cache, &catalog);
                assert!(cache.check_invariants(), "{:?} broke invariants", kind);
                if out.serviced {
                    assert!(
                        cache.supports(bundle),
                        "{:?} claimed service without residency",
                        kind
                    );
                }
                if out.hit {
                    assert_eq!(out.fetched_bytes, 0);
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<String> = PolicyKind::ONLINE
            .iter()
            .map(|k| k.build().name().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ONLINE.len());
    }
}

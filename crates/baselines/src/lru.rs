//! Least-Recently-Used replacement, bundle-adapted.
//!
//! Every file of a serviced bundle is "touched"; the victim is the resident
//! file with the oldest touch. LRU is the canonical popularity baseline the
//! paper contrasts with (§1.2): it tracks *file* recency and is blind to
//! which files are needed *together*.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, RequestOutcome};
use fbc_core::types::FileId;
use std::collections::HashMap;

use crate::util::choose_victim_min_by;

/// LRU replacement policy.
#[derive(Debug, Clone, Default)]
pub struct Lru {
    /// Logical clock, incremented per request.
    clock: u64,
    /// Last-touch tick per file.
    last_used: HashMap<FileId, u64>,
}

impl Lru {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Last-touch tick of a file (diagnostics).
    pub fn last_used(&self, file: FileId) -> Option<u64> {
        self.last_used.get(&file).copied()
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let last_used = &self.last_used;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            choose_victim_min_by(cache, bundle, |f, _| {
                last_used.get(&f).copied().unwrap_or(0)
            })
        });
        if outcome.serviced {
            for f in bundle.iter() {
                self.last_used.insert(f, self.clock);
            }
        }
        for f in &outcome.evicted_files {
            self.last_used.remove(f);
        }
        outcome
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.last_used.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_least_recently_used() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lru = Lru::new();
        lru.handle(&b(&[0]), &mut cache, &catalog);
        lru.handle(&b(&[1]), &mut cache, &catalog);
        lru.handle(&b(&[0]), &mut cache, &catalog); // refresh f0
        let out = lru.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn hit_still_refreshes_recency() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(2);
        let mut lru = Lru::new();
        lru.handle(&b(&[0, 1]), &mut cache, &catalog);
        let hit = lru.handle(&b(&[0]), &mut cache, &catalog);
        assert!(hit.hit);
        assert!(lru.last_used(FileId(0)).unwrap() > lru.last_used(FileId(1)).unwrap());
    }

    #[test]
    fn all_bundle_files_touched_with_same_tick() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(3);
        let mut lru = Lru::new();
        lru.handle(&b(&[0, 1, 2]), &mut cache, &catalog);
        assert_eq!(lru.last_used(FileId(0)), lru.last_used(FileId(2)));
    }

    #[test]
    fn reset_clears_state() {
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let mut lru = Lru::new();
        lru.handle(&b(&[0]), &mut cache, &catalog);
        lru.reset();
        assert_eq!(lru.last_used(FileId(0)), None);
    }
}

//! Least-Recently-Used replacement, bundle-adapted.
//!
//! Every file of a serviced bundle is "touched"; the victim is the resident
//! file with the oldest touch. LRU is the canonical popularity baseline the
//! paper contrasts with (§1.2): it tracks *file* recency and is blind to
//! which files are needed *together*.
//!
//! Victim selection is indexed by an [`OrderedList`]: serviced bundle files
//! move to the back in ascending-id order, so the front-to-back order is
//! exactly the reference scan's `(last-touch tick, FileId)` ranking and each
//! eviction is O(skipped + 1) instead of O(n log n).

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::OrderedList;

/// LRU replacement policy.
#[derive(Debug, Clone, Default)]
pub struct Lru {
    /// Logical clock, incremented per request.
    clock: u64,
    /// Last-touch tick per file.
    last_used: HashMap<FileId, u64>,
    /// Residents in eviction order (front = least recently used).
    order: OrderedList<()>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Lru {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Last-touch tick of a file (diagnostics).
    pub fn last_used(&self, file: FileId) -> Option<u64> {
        self.last_used.get(&file).copied()
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let last_used = &self.last_used;
        let order = &mut self.order;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if order.len() != cache.len() {
                // Policy state is out of step with the cache (e.g. reset
                // against a warm cache): rebuild in (tick, id) order.
                let mut residents: Vec<(u64, FileId)> = cache
                    .iter()
                    .map(|(f, _)| (last_used.get(&f).copied().unwrap_or(0), f))
                    .collect();
                residents.sort_unstable();
                order.clear();
                for (_, f) in residents {
                    order.push_back(f, ());
                }
            }
            order.choose(cache, bundle)
        });
        if outcome.serviced {
            for f in bundle.iter() {
                self.last_used.insert(f, self.clock);
                self.order.move_to_back(f, ());
            }
        }
        for f in &outcome.evicted_files {
            self.last_used.remove(f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.last_used.clear();
        self.order.clear();
    }
}

/// The pre-index full-scan LRU, retained verbatim so the differential suite
/// can pin [`Lru`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct LruReference {
    clock: u64,
    last_used: HashMap<FileId, u64>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl LruReference {
    /// Creates an empty reference LRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for LruReference {
    fn name(&self) -> &str {
        "LRU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let last_used = &self.last_used;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            crate::util::choose_victim_min_by_reference(cache, bundle, |f, _| {
                last_used.get(&f).copied().unwrap_or(0)
            })
        });
        if outcome.serviced {
            for f in bundle.iter() {
                self.last_used.insert(f, self.clock);
            }
        }
        for f in &outcome.evicted_files {
            self.last_used.remove(f);
        }
        outcome
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.last_used.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_least_recently_used() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lru = Lru::new();
        lru.handle(&b(&[0]), &mut cache, &catalog);
        lru.handle(&b(&[1]), &mut cache, &catalog);
        lru.handle(&b(&[0]), &mut cache, &catalog); // refresh f0
        let out = lru.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn hit_still_refreshes_recency() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(2);
        let mut lru = Lru::new();
        lru.handle(&b(&[0, 1]), &mut cache, &catalog);
        let hit = lru.handle(&b(&[0]), &mut cache, &catalog);
        assert!(hit.hit);
        assert!(lru.last_used(FileId(0)).unwrap() > lru.last_used(FileId(1)).unwrap());
    }

    #[test]
    fn all_bundle_files_touched_with_same_tick() {
        let catalog = FileCatalog::from_sizes(vec![1; 3]);
        let mut cache = CacheState::new(3);
        let mut lru = Lru::new();
        lru.handle(&b(&[0, 1, 2]), &mut cache, &catalog);
        assert_eq!(lru.last_used(FileId(0)), lru.last_used(FileId(2)));
    }

    #[test]
    fn reset_clears_state() {
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let mut lru = Lru::new();
        lru.handle(&b(&[0]), &mut cache, &catalog);
        lru.reset();
        assert_eq!(lru.last_used(FileId(0)), None);
    }

    #[test]
    fn resyncs_after_reset_against_warm_cache() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut lru = Lru::new();
        lru.handle(&b(&[1]), &mut cache, &catalog);
        lru.handle(&b(&[0]), &mut cache, &catalog);
        lru.reset(); // cache stays warm {0, 1}
        let out = lru.handle(&b(&[2]), &mut cache, &catalog);
        // All ticks are 0 after the reset: the id tie-break picks f0.
        assert_eq!(out.evicted_files, vec![FileId(0)]);
    }
}

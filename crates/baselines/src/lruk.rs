//! LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993), bundle-adapted.
//!
//! The victim is the file whose K-th most recent reference is oldest
//! (files with fewer than K references rank before all fully-histories
//! files, ordered by their oldest recorded reference). K = 2 is the classic
//! choice: it discriminates between files with genuine re-reference
//! behaviour and one-shot scans better than plain LRU.
//!
//! Victim selection is indexed by a [`LazyHeap`] keyed on the backward
//! K-distance, reprioritised when a serviced bundle extends a resident
//! file's reference history.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use std::collections::{HashMap, VecDeque};

use crate::util::LazyHeap;

/// The LRU-K policy.
#[derive(Debug, Clone)]
pub struct LruK {
    k: usize,
    clock: u64,
    /// The last up-to-K reference ticks per file, newest at the back.
    /// Retained across evictions (the algorithm's "reference history").
    refs: HashMap<FileId, VecDeque<u64>>,
    /// Resident files keyed by current backward K-distance.
    index: LazyHeap<u64>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl LruK {
    /// LRU-K with the given K (≥ 1). `K = 1` degenerates to LRU.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            k,
            clock: 0,
            refs: HashMap::new(),
            index: LazyHeap::new(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
        }
    }

    /// The classic LRU-2.
    pub fn lru2() -> Self {
        Self::new(2)
    }

    /// The backward K-distance key: the tick of the K-th most recent
    /// reference, or 0 when fewer than K references exist (making such
    /// files evict first, as the algorithm prescribes).
    fn k_distance(&self, f: FileId) -> u64 {
        k_distance_of(&self.refs, self.k, f)
    }
}

fn k_distance_of(refs: &HashMap<FileId, VecDeque<u64>>, k: usize, f: FileId) -> u64 {
    match refs.get(&f) {
        Some(h) if h.len() >= k => h[h.len() - k],
        _ => 0,
    }
}

impl Default for LruK {
    fn default() -> Self {
        Self::lru2()
    }
}

impl CachePolicy for LruK {
    fn name(&self) -> &str {
        match self.k {
            1 => "LRU-1",
            2 => "LRU-2",
            _ => "LRU-K",
        }
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let refs = &self.refs;
        let k = self.k;
        let index = &mut self.index;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if index.len() != cache.len() {
                index.rebuild(cache.iter().map(|(f, _)| (f, k_distance_of(refs, k, f))));
            }
            index.choose(cache, bundle)
        });
        if outcome.serviced {
            for f in bundle.iter() {
                let h = self.refs.entry(f).or_default();
                h.push_back(self.clock);
                while h.len() > self.k {
                    h.pop_front();
                }
            }
            for f in bundle.iter() {
                if cache.contains(f) {
                    self.index.update(f, self.k_distance(f));
                }
            }
        }
        for &f in &outcome.evicted_files {
            self.index.remove(f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.refs.clear();
        self.index.clear();
    }
}

/// The pre-index full-scan LRU-K, retained verbatim so the differential
/// suite can pin [`LruK`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone)]
pub struct LruKReference {
    k: usize,
    clock: u64,
    refs: HashMap<FileId, VecDeque<u64>>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl LruKReference {
    /// Reference LRU-K with the given K (≥ 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            k,
            clock: 0,
            refs: HashMap::new(),
        }
    }

    /// The classic LRU-2.
    pub fn lru2() -> Self {
        Self::new(2)
    }

    fn k_distance(&self, f: FileId) -> u64 {
        k_distance_of(&self.refs, self.k, f)
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for LruKReference {
    fn name(&self) -> &str {
        match self.k {
            1 => "LRU-1",
            2 => "LRU-2",
            _ => "LRU-K",
        }
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let this: &LruKReference = self;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            crate::util::choose_victim_min_by_reference(cache, bundle, |f, _| this.k_distance(f))
        });
        if outcome.serviced {
            for f in bundle.iter() {
                let h = self.refs.entry(f).or_default();
                h.push_back(self.clock);
                while h.len() > self.k {
                    h.pop_front();
                }
            }
        }
        outcome
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.refs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn k1_behaves_like_lru() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut p = LruK::new(1);
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog);
        p.handle(&b(&[0]), &mut cache, &catalog); // refresh f0
        let out = p.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
    }

    #[test]
    fn single_reference_files_evict_before_rereferenced_ones() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut p = LruK::lru2();
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[0]), &mut cache, &catalog); // f0 has 2 refs
        p.handle(&b(&[1]), &mut cache, &catalog); // f1 has 1 ref
                                                  // f1 was referenced more recently than f0, but its K-distance is
                                                  // infinite-past (one ref), so it is the LRU-2 victim.
        let out = p.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(1)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn reference_history_survives_eviction() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(1);
        let mut p = LruK::lru2();
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog); // evicts f0
        assert_eq!(p.refs.get(&FileId(0)).map(|h| h.len()), Some(2));
        // Re-admitted f0 immediately has a full history again.
        p.handle(&b(&[0]), &mut cache, &catalog);
        assert!(p.k_distance(FileId(0)) > 0);
    }

    #[test]
    fn histories_are_truncated_to_k() {
        let catalog = FileCatalog::from_sizes(vec![1]);
        let mut cache = CacheState::new(1);
        let mut p = LruK::new(3);
        for _ in 0..10 {
            p.handle(&b(&[0]), &mut cache, &catalog);
        }
        assert_eq!(p.refs.get(&FileId(0)).map(|h| h.len()), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = LruK::new(0);
    }
}

//! Online file-bundle caching with competitive guarantees — the
//! marking-family algorithms of Qin & Etesami, *Optimal Online Algorithms
//! for File-Bundle Caching and Generalization to Distributed Caching*
//! (arXiv 2011.03212), the direct online successor of the source paper.
//!
//! # The model
//!
//! Queries arrive one *bundle* at a time; a query stalls (costs 1) unless
//! **every** file of its bundle is resident — the whole-bundle service
//! cost the source paper's SRM model shares. Classic paging is the
//! `ℓ = 1` special case. For a cache holding `k` unit files and bundles
//! of `ℓ` files, the optimal deterministic competitive ratio drops from
//! the classic `k` to
//!
//! ```text
//!     ρ(k, ℓ) = k − ℓ + 1
//! ```
//!
//! because an online algorithm sees ℓ requests' worth of information at
//! once. Both directions are exercised by this workspace:
//!
//! * **Upper bound.** [`BundleMarking`] generalizes the marking
//!   algorithm: files of a serviced bundle are *marked*; victims are
//!   drawn from the unmarked residents only; when a bundle cannot be
//!   accommodated without evicting a marked file, a new *phase* begins
//!   and every mark is cleared. Within one phase the first miss marks
//!   the ℓ files of the phase-opening bundle and every further missed
//!   query marks at least one previously unmarked file, so a phase
//!   suffers at most `k − ℓ + 1` missed queries while the offline
//!   optimum pays at least one miss per phase — the
//!   [`marking_competitive_bound`] checked end-to-end by the
//!   `perf_online` harness against the exact offline optimum
//!   (`fbc_core::offline`).
//! * **Lower bound.** `fbc_workload::adversary` generates the paper's
//!   sliding-window construction, which forces *every* online algorithm
//!   (marking or not) to miss every query while the prefetching offline
//!   optimum misses once per `k − ℓ + 1` queries — so the ratio is tight.
//!
//! Two members of the family are provided: the deterministic
//! [`BundleMarking`] (LRU flavour: the victim is the least recently
//! requested unmarked file, ties to the lowest id) and the randomized
//! [`BundleMarkingRandom`] (uniformly random unmarked victim, seeded and
//! deterministic per seed). Any unmarked-victim rule inherits the same
//! per-phase guarantee, so both satisfy the `k − ℓ + 1` bound; the
//! randomized flavour additionally dodges deterministic worst cases in
//! expectation, mirroring classic randomized marking.
//!
//! The **distributed generalization** needs no second algorithm: the
//! sharded admission front-end (`fbc_grid::concurrent`, `replica`/`multi`
//! engines) routes each query to one of `m` independent caches of
//! capacity `k/m`, and each shard runs the unmodified policy on the
//! subsequence it is routed — retaining the single-cache guarantee
//! [`distributed_marking_bound`] `ρ(k/m, ℓ)` per shard against that
//! shard's own offline optimum. The `perf_online` harness measures
//! exactly this through `run_concurrent_grid`.
//!
//! Sizes generalize bytes-for-files: marks carry file sizes, and the
//! phase-reset test compares `bytes(marked ∪ bundle)` against the
//! capacity. The `k − ℓ + 1` arithmetic is stated (and asserted) for
//! unit-size catalogs, where bytes and file counts coincide.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::{Bytes, FileId};
use fbc_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use crate::util::{LazyHeap, SortedArena};

/// The provable competitive ratio of any bundle-marking algorithm on a
/// cache of `cache_files` unit-size files and bundles of at least
/// `bundle_files` files: `max(1, k − ℓ + 1)`.
///
/// This is the *query-miss* (stall-count) competitive ratio against the
/// prefetching offline optimum of `fbc_core::offline::opt_query_misses`;
/// it is tight — the sliding-window adversary of
/// `fbc_workload::adversary` forces it.
pub fn marking_competitive_bound(cache_files: u64, bundle_files: u64) -> f64 {
    (cache_files.saturating_sub(bundle_files) + 1).max(1) as f64
}

/// The per-shard competitive bound of the distributed generalization:
/// `m` independent caches splitting `cache_files` evenly, each serving
/// the subsequence routed to it — `ρ(⌊k/m⌋, ℓ)` against each shard's own
/// offline optimum.
pub fn distributed_marking_bound(cache_files: u64, shards: u64, bundle_files: u64) -> f64 {
    marking_competitive_bound(cache_files / shards.max(1), bundle_files)
}

/// The shared marking state: which residents are marked (and their total
/// bytes), each file's last-request tick, and the phase counter. The two
/// policy flavours differ only in how they index the *unmarked* set for
/// victim selection.
#[derive(Debug, Clone, Default)]
struct MarkCore {
    /// Marked residents mapped to their sizes. Marked files are never
    /// victims; the map empties on every phase reset.
    marked: FxHashMap<FileId, Bytes>,
    marked_bytes: Bytes,
    /// Tick of each tracked file's most recent appearance in a serviced
    /// bundle (files never seen rank as tick 0).
    last_use: FxHashMap<FileId, u64>,
    tick: u64,
    phases: u64,
}

impl MarkCore {
    /// Bytes the marked set would grow to if `bundle` were marked:
    /// `bytes(marked ∪ bundle)`.
    fn marked_with(&self, bundle: &Bundle, catalog: &FileCatalog) -> Bytes {
        self.marked_bytes
            + bundle
                .iter()
                .filter(|f| !self.marked.contains_key(f))
                .map(|f| catalog.size(f))
                .sum::<Bytes>()
    }

    /// Marks every file of a just-serviced bundle at a fresh tick.
    /// Returns the tick; the caller removes the files from its unmarked
    /// index.
    fn mark_bundle(&mut self, bundle: &Bundle, catalog: &FileCatalog) -> u64 {
        self.tick += 1;
        for f in bundle.iter() {
            if self.marked.insert(f, catalog.size(f)).is_none() {
                self.marked_bytes += catalog.size(f);
            }
            self.last_use.insert(f, self.tick);
        }
        self.tick
    }

    /// Forgets an evicted file entirely.
    fn forget(&mut self, f: FileId) {
        if let Some(size) = self.marked.remove(&f) {
            self.marked_bytes -= size;
        }
        self.last_use.remove(&f);
    }

    fn last_use_of(&self, f: FileId) -> u64 {
        self.last_use.get(&f).copied().unwrap_or(0)
    }

    fn clear(&mut self) {
        self.marked.clear();
        self.marked_bytes = 0;
        self.last_use.clear();
        self.tick = 0;
        self.phases = 0;
    }
}

/// Deterministic bundle-marking (Qin–Etesami, LRU flavour).
///
/// Victims are unmarked residents in least-recently-requested order
/// (ties to the lowest [`FileId`]), maintained incrementally in a
/// [`LazyHeap`] keyed by last-use tick — `O(log n)` per eviction instead
/// of the reference twin's full scan.
#[derive(Debug, Clone, Default)]
pub struct BundleMarking {
    core: MarkCore,
    /// Unmarked residents keyed by last-use tick (never-seen files key 0).
    unmarked: LazyHeap<u64>,
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl BundleMarking {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed phase resets so far.
    pub fn phases(&self) -> u64 {
        self.core.phases
    }

    /// Number of currently marked files.
    pub fn marked_files(&self) -> usize {
        self.core.marked.len()
    }

    /// Re-tracks residents the indices have lost sight of (policy reset
    /// while the cache stayed warm, or a cache mutated externally), and
    /// prunes marks of files no longer resident.
    fn resync(&mut self, cache: &CacheState) {
        if self.core.marked.len() + self.unmarked.len() == cache.len() {
            return;
        }
        let core = &mut self.core;
        let stale: Vec<FileId> = core
            .marked
            .keys()
            .copied()
            .filter(|&f| !cache.contains(f))
            .collect();
        for f in stale {
            core.forget(f);
        }
        for (f, _) in cache.iter() {
            if !core.marked.contains_key(&f) && !self.unmarked.contains(f) {
                self.unmarked.update(f, core.last_use_of(f));
            }
        }
    }

    /// Clears every mark (phase reset), moving the previously marked
    /// files into the unmarked victim index at their last-use ticks.
    fn begin_phase(&mut self) {
        self.core.phases += 1;
        self.obs.incr("marking.phase_resets");
        let entries: Vec<(FileId, u64)> = self
            .core
            .marked
            .keys()
            .map(|&f| (f, self.core.last_use_of(f)))
            .collect();
        for (f, tick) in entries {
            self.unmarked.update(f, tick);
        }
        self.core.marked.clear();
        self.core.marked_bytes = 0;
    }
}

impl CachePolicy for BundleMarking {
    fn name(&self) -> &str {
        "BundleMarking"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let oversized = bundle.total_size(catalog) > cache.capacity();
        if !oversized {
            self.resync(cache);
            if self.core.marked_with(bundle, catalog) > cache.capacity() {
                self.begin_phase();
            }
        }
        let unmarked = &mut self.unmarked;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            unmarked.choose(cache, bundle)
        });
        for &f in &outcome.evicted_files {
            self.unmarked.remove(f);
            self.core.forget(f);
        }
        if outcome.serviced {
            self.core.mark_bundle(bundle, catalog);
            for f in bundle.iter() {
                self.unmarked.remove(f);
            }
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.core.clear();
        self.unmarked.clear();
    }
}

/// Randomized bundle-marking (Qin–Etesami family): the victim is drawn
/// uniformly at random among the unmarked evictable residents.
/// Deterministic per seed — the same RNG-stream discipline as
/// [`crate::RandomEvict`].
#[derive(Debug, Clone)]
pub struct BundleMarkingRandom {
    core: MarkCore,
    seed: u64,
    rng: StdRng,
    /// Sorted unmarked residents; one RNG draw selects an order statistic.
    unmarked: SortedArena,
    /// Reusable exclusion scratch (unmarked files of the in-flight bundle
    /// plus unmarked pinned files), sorted ascending.
    excl: Vec<FileId>,
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl BundleMarkingRandom {
    /// Creates the policy with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            core: MarkCore::default(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            unmarked: SortedArena::new(),
            excl: Vec::new(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
        }
    }

    /// Number of completed phase resets so far.
    pub fn phases(&self) -> u64 {
        self.core.phases
    }

    fn resync(&mut self, cache: &CacheState) {
        if self.core.marked.len() + self.unmarked.len() == cache.len() {
            return;
        }
        let core = &mut self.core;
        let stale: Vec<FileId> = core
            .marked
            .keys()
            .copied()
            .filter(|&f| !cache.contains(f))
            .collect();
        for f in stale {
            core.forget(f);
        }
        self.unmarked.clear();
        for (f, _) in cache.iter() {
            if !core.marked.contains_key(&f) {
                self.unmarked.insert(f);
            }
        }
    }

    fn begin_phase(&mut self) {
        self.core.phases += 1;
        self.obs.incr("marking.phase_resets");
        for &f in self.core.marked.keys() {
            self.unmarked.insert(f);
        }
        self.core.marked.clear();
        self.core.marked_bytes = 0;
    }
}

impl CachePolicy for BundleMarkingRandom {
    fn name(&self) -> &str {
        "BundleMarking(rand)"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let oversized = bundle.total_size(catalog) > cache.capacity();
        if !oversized {
            self.resync(cache);
            if self.core.marked_with(bundle, catalog) > cache.capacity() {
                self.begin_phase();
            }
        }
        let core = &self.core;
        let rng = &mut self.rng;
        let arena = &mut self.unmarked;
        let excl = &mut self.excl;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            // Exclusion list: unmarked files of the in-flight bundle plus
            // unmarked pinned files — exactly the arena members that are
            // not evictable. Merged ascending and deduplicated, matching
            // `select_excluding`'s contract.
            excl.clear();
            let unmarked_of = |f: FileId| cache.contains(f) && !core.marked.contains_key(&f);
            let mut pins = cache.pinned_files().filter(|&p| unmarked_of(p)).peekable();
            for f in bundle.iter().filter(|&f| unmarked_of(f)) {
                while let Some(&p) = pins.peek() {
                    if p < f {
                        excl.push(p);
                        pins.next();
                    } else if p == f {
                        pins.next();
                    } else {
                        break;
                    }
                }
                excl.push(f);
            }
            excl.extend(pins);

            let count = arena.len() - excl.len();
            if count == 0 {
                // The reference returns before drawing; the RNG stream
                // must not advance here either.
                return None;
            }
            let idx = rng.gen_range(0..count);
            let victim = arena.select_excluding(idx, excl);
            arena.remove(victim);
            Some(victim)
        });
        for &f in &outcome.evicted_files {
            self.unmarked.remove(f);
            self.core.forget(f);
        }
        if outcome.serviced {
            self.core.mark_bundle(bundle, catalog);
            for f in bundle.iter() {
                self.unmarked.remove(f);
            }
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.core.clear();
        self.rng = StdRng::seed_from_u64(self.seed);
        self.unmarked.clear();
        self.excl.clear();
    }
}

/// The full-scan deterministic bundle-marking, retained so the
/// differential suite can pin [`BundleMarking`]'s lazy-heap victim order
/// (least tick, ties to lowest id) against a scan over the cache.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct BundleMarkingReference {
    core: MarkCore,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl BundleMarkingReference {
    /// Creates the reference policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed phase resets so far.
    pub fn phases(&self) -> u64 {
        self.core.phases
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for BundleMarkingReference {
    fn name(&self) -> &str {
        "BundleMarking"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let oversized = bundle.total_size(catalog) > cache.capacity();
        if !oversized {
            let core = &mut self.core;
            let stale: Vec<FileId> = core
                .marked
                .keys()
                .copied()
                .filter(|&f| !cache.contains(f))
                .collect();
            for f in stale {
                core.forget(f);
            }
            if core.marked_with(bundle, catalog) > cache.capacity() {
                core.phases += 1;
                core.marked.clear();
                core.marked_bytes = 0;
            }
        }
        let core = &mut self.core;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            cache
                .iter()
                .map(|(f, _)| f)
                .filter(|&f| {
                    !core.marked.contains_key(&f) && !bundle.contains(f) && !cache.is_pinned(f)
                })
                .min_by_key(|&f| (core.last_use_of(f), f))
        });
        for &f in &outcome.evicted_files {
            self.core.forget(f);
        }
        if outcome.serviced {
            self.core.mark_bundle(bundle, catalog);
        }
        outcome
    }

    fn reset(&mut self) {
        self.core.clear();
    }
}

/// The sort-per-eviction randomized bundle-marking, retained so the
/// differential suite can pin [`BundleMarkingRandom`]'s order-statistic
/// draw replay against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone)]
pub struct BundleMarkingRandomReference {
    core: MarkCore,
    seed: u64,
    rng: StdRng,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl BundleMarkingRandomReference {
    /// Creates the reference policy with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            core: MarkCore::default(),
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for BundleMarkingRandomReference {
    fn name(&self) -> &str {
        "BundleMarking(rand)"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let oversized = bundle.total_size(catalog) > cache.capacity();
        if !oversized {
            let core = &mut self.core;
            let stale: Vec<FileId> = core
                .marked
                .keys()
                .copied()
                .filter(|&f| !cache.contains(f))
                .collect();
            for f in stale {
                core.forget(f);
            }
            if core.marked_with(bundle, catalog) > cache.capacity() {
                core.phases += 1;
                core.marked.clear();
                core.marked_bytes = 0;
            }
        }
        let core = &self.core;
        let rng = &mut self.rng;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            let mut candidates: Vec<FileId> = cache
                .iter()
                .map(|(f, _)| f)
                .filter(|&f| {
                    !core.marked.contains_key(&f) && !bundle.contains(f) && !cache.is_pinned(f)
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_unstable();
            Some(candidates[rng.gen_range(0..candidates.len())])
        });
        for &f in &outcome.evicted_files {
            self.core.forget(f);
        }
        if outcome.serviced {
            self.core.mark_bundle(bundle, catalog);
        }
        outcome
    }

    fn reset(&mut self) {
        self.core.clear();
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    fn unit_catalog(n: usize) -> FileCatalog {
        FileCatalog::from_sizes(vec![1; n])
    }

    #[test]
    fn bounds() {
        assert_eq!(marking_competitive_bound(4, 2), 3.0);
        assert_eq!(marking_competitive_bound(100, 1), 100.0); // classic paging
        assert_eq!(marking_competitive_bound(2, 5), 1.0); // floor at 1
        assert_eq!(distributed_marking_bound(100, 4, 5), 21.0);
        assert_eq!(distributed_marking_bound(100, 1, 5), 96.0);
    }

    #[test]
    fn phase_reset_clears_marks_and_evicts_oldest_unmarked_first() {
        let catalog = unit_catalog(8);
        let mut cache = CacheState::new(4);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        p.handle(&b(&[2, 3]), &mut cache, &catalog);
        assert_eq!(p.marked_files(), 4);
        assert_eq!(p.phases(), 0);
        // {4,5} cannot fit next to 4 marked bytes: phase reset, then the
        // least-recently-requested unmarked files (f0, f1) are evicted.
        let out = p.handle(&b(&[4, 5]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(p.phases(), 1);
        assert_eq!(out.evicted_files, vec![FileId(0), FileId(1)]);
        assert_eq!(p.marked_files(), 2); // the new phase's bundle
        assert!(cache.contains(FileId(2)) && cache.contains(FileId(3)));
    }

    #[test]
    fn marked_files_survive_until_the_phase_ends() {
        let catalog = unit_catalog(8);
        let mut cache = CacheState::new(5);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        p.handle(&b(&[2, 3]), &mut cache, &catalog);
        // One byte of slack: {4} fits without a reset and without evicting.
        let out = p.handle(&b(&[4]), &mut cache, &catalog);
        assert_eq!(p.phases(), 0);
        assert!(out.evicted_files.is_empty());
        // {5} overflows the marked set: reset, and the victim is the
        // oldest unmarked file (f0 at tick 1), not a marked one.
        let out = p.handle(&b(&[5]), &mut cache, &catalog);
        assert_eq!(p.phases(), 1);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
    }

    #[test]
    fn a_hit_marks_its_files() {
        let catalog = unit_catalog(8);
        let mut cache = CacheState::new(4);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        p.handle(&b(&[2, 3]), &mut cache, &catalog);
        let out = p.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.hit);
        // The hit refreshed f0/f1's recency; after the reset forced by
        // {4,5}, the oldest unmarked files are now f2/f3.
        let out = p.handle(&b(&[4, 5]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(2), FileId(3)]);
    }

    #[test]
    fn oversized_bundles_change_nothing() {
        let catalog = FileCatalog::from_sizes(vec![3, 3, 3]);
        let mut cache = CacheState::new(4);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0]), &mut cache, &catalog);
        let out = p.handle(&b(&[1, 2]), &mut cache, &catalog);
        assert!(!out.serviced);
        assert_eq!(p.phases(), 0, "oversized bundle must not reset the phase");
        assert_eq!(p.marked_files(), 1);
    }

    #[test]
    fn pinned_unmarked_files_are_not_victims() {
        let catalog = unit_catalog(6);
        let mut cache = CacheState::new(3);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0, 1, 2]), &mut cache, &catalog);
        cache.pin(FileId(0)).unwrap();
        // New phase: {3,4} overflows marked {0,1,2}; f0 is pinned so the
        // victims are f1 and f2.
        let out = p.handle(&b(&[3, 4]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files, vec![FileId(1), FileId(2)]);
        assert!(cache.contains(FileId(0)));
    }

    #[test]
    fn warm_cache_after_reset_is_resynced() {
        let catalog = unit_catalog(6);
        let mut cache = CacheState::new(3);
        let mut p = BundleMarking::new();
        p.handle(&b(&[0, 1, 2]), &mut cache, &catalog);
        p.reset(); // policy state gone, cache still warm
        let out = p.handle(&b(&[3]), &mut cache, &catalog);
        assert!(out.serviced, "resync must re-track warm residents");
        assert_eq!(
            out.evicted_files,
            vec![FileId(0)],
            "ties at tick 0 break by id"
        );
    }

    #[test]
    fn randomized_is_deterministic_per_seed_and_respects_marks() {
        let catalog = unit_catalog(16);
        let mut a = BundleMarkingRandom::new(7);
        let mut b2 = BundleMarkingRandom::new(7);
        let mut ca = CacheState::new(6);
        let mut cb = CacheState::new(6);
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let k = (next() % 3 + 1) as usize;
            let r = Bundle::from_raw((0..k).map(|_| (next() % 16) as u32));
            let oa = a.handle(&r, &mut ca, &catalog);
            let ob = b2.handle(&r, &mut cb, &catalog);
            assert_eq!(oa, ob);
            assert!(ca.check_invariants());
        }
        assert_eq!(a.phases(), b2.phases());
        assert!(a.phases() > 0, "the workload must exercise phase resets");
    }

    /// The lazy-heap victim order must replay the reference scan exactly,
    /// and the randomized arena draw must replay the reference's
    /// sort-and-index stream, under pinning and policy resets.
    #[test]
    fn tracks_reference_twins() {
        let catalog = FileCatalog::from_sizes((0..15).map(|i| (i % 4) + 1).collect());
        let mut state = 0x22BBu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut fast = BundleMarking::new();
        let mut slow = BundleMarkingReference::new();
        let mut rfast = BundleMarkingRandom::new(0xF1BC);
        let mut rslow = BundleMarkingRandomReference::new(0xF1BC);
        let mut caches: Vec<CacheState> = (0..4).map(|_| CacheState::new(9)).collect();
        for i in 0..400 {
            let k = (next() % 3 + 1) as usize;
            let r = Bundle::from_raw((0..k).map(|_| (next() % 15) as u32));
            let (c0, rest) = caches.split_first_mut().unwrap();
            let (c1, rest) = rest.split_first_mut().unwrap();
            let (c2, rest) = rest.split_first_mut().unwrap();
            let c3 = &mut rest[0];
            let a = fast.handle(&r, c0, &catalog);
            let b2 = slow.handle(&r, c1, &catalog);
            assert_eq!(a, b2, "deterministic flavour diverged at request {i}");
            assert_eq!(fast.phases(), slow.phases());
            let ra = rfast.handle(&r, c2, &catalog);
            let rb = rslow.handle(&r, c3, &catalog);
            assert_eq!(ra, rb, "randomized flavour diverged at request {i}");
            if i == 199 {
                fast.reset();
                slow.reset();
                rfast.reset();
                rslow.reset();
            }
        }
    }
}

//! Random replacement: the victim is a uniformly random evictable resident
//! file. A seeded control baseline — any policy worth running should beat it.
//!
//! The reference implementation sorted the whole evictable set per eviction
//! just to index it with one RNG draw. The indexed version keeps a
//! [`SortedArena`] of residents and answers the same order statistic over
//! `residents \ excluded` by binary search, replaying the reference's RNG
//! stream draw-for-draw.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::FileId;
use fbc_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::SortedArena;

/// Random replacement policy (deterministic per seed).
#[derive(Debug, Clone)]
pub struct RandomEvict {
    seed: u64,
    rng: StdRng,
    /// Sorted resident arena; the RNG draw indexes into it.
    arena: SortedArena,
    /// Reusable exclusion scratch (in-flight bundle ∩ residents, plus
    /// pinned files), kept sorted ascending.
    excl: Vec<FileId>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl RandomEvict {
    /// Creates the policy with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
            arena: SortedArena::new(),
            excl: Vec::new(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
        }
    }
}

impl CachePolicy for RandomEvict {
    fn name(&self) -> &str {
        "Random"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let rng = &mut self.rng;
        let arena = &mut self.arena;
        let excl = &mut self.excl;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if arena.len() != cache.len() {
                arena.rebuild(cache);
            }
            // Merge the resident bundle files with the pinned set (both
            // ascending) into the sorted, deduplicated exclusion list.
            excl.clear();
            let mut pins = cache.pinned_files().peekable();
            for f in bundle.iter().filter(|&f| cache.contains(f)) {
                while let Some(&p) = pins.peek() {
                    if p < f {
                        excl.push(p);
                        pins.next();
                    } else if p == f {
                        pins.next();
                    } else {
                        break;
                    }
                }
                excl.push(f);
            }
            excl.extend(pins);

            let count = arena.len() - excl.len();
            if count == 0 {
                // No candidate: the reference returns before drawing, so
                // the RNG stream must not advance here either.
                return None;
            }
            let idx = rng.gen_range(0..count);
            let victim = arena.select_excluding(idx, excl);
            arena.remove(victim);
            Some(victim)
        });
        for &f in &outcome.fetched_files {
            self.arena.insert(f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.arena.clear();
        self.excl.clear();
    }
}

/// The pre-index sort-per-eviction Random policy, retained verbatim so the
/// differential suite can pin [`RandomEvict`]'s draw replay against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone)]
pub struct RandomEvictReference {
    seed: u64,
    rng: StdRng,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl RandomEvictReference {
    /// Creates the reference policy with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for RandomEvictReference {
    fn name(&self) -> &str {
        "Random"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let rng = &mut self.rng;
        service_with_evictor(bundle, cache, catalog, |cache| {
            let mut candidates: Vec<_> = cache
                .iter()
                .map(|(f, _)| f)
                .filter(|&f| !bundle.contains(f) && !cache.is_pinned(f))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_unstable(); // deterministic base order for the RNG draw
            Some(candidates[rng.gen_range(0..candidates.len())])
        })
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn is_deterministic_per_seed() {
        let catalog = FileCatalog::from_sizes(vec![1; 10]);
        let run = |seed: u64| {
            let mut cache = CacheState::new(3);
            let mut p = RandomEvict::new(seed);
            let mut evictions = Vec::new();
            for i in 0..20u32 {
                let out = p.handle(&b(&[i % 10]), &mut cache, &catalog);
                evictions.extend(out.evicted_files);
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // overwhelmingly likely to differ
    }

    #[test]
    fn never_evicts_bundle_files() {
        let catalog = FileCatalog::from_sizes(vec![1; 5]);
        let mut cache = CacheState::new(2);
        let mut p = RandomEvict::new(1);
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog);
        for i in 2..5u32 {
            let keep = (i - 1) % 5;
            let out = p.handle(&b(&[keep, i]), &mut cache, &catalog);
            assert!(!out.evicted_files.contains(&FileId(keep)));
            assert!(cache.check_invariants());
        }
    }

    #[test]
    fn reset_restores_seed_determinism() {
        let catalog = FileCatalog::from_sizes(vec![1; 6]);
        let mut p = RandomEvict::new(42);
        let run_once = |p: &mut RandomEvict| {
            let mut cache = CacheState::new(2);
            let mut ev = Vec::new();
            for i in 0..12u32 {
                ev.extend(p.handle(&b(&[i % 6]), &mut cache, &catalog).evicted_files);
            }
            ev
        };
        let first = run_once(&mut p);
        p.reset();
        let second = run_once(&mut p);
        assert_eq!(first, second);
    }

    /// The arena draw must replay the reference's RNG stream exactly,
    /// including with pinned files narrowing the candidate set.
    #[test]
    fn replays_reference_rng_stream_with_pins() {
        let catalog = FileCatalog::from_sizes(vec![1; 12]);
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut fast = RandomEvict::new(99);
        let mut slow = RandomEvictReference::new(99);
        let mut cache_fast = CacheState::new(4);
        let mut cache_slow = CacheState::new(4);
        let mut pinned: Option<FileId> = None;
        for i in 0..300 {
            // Occasionally pin one resident file in both caches.
            if next() % 5 == 0 {
                if let Some(p) = pinned.take() {
                    cache_fast.unpin(p).unwrap();
                    cache_slow.unpin(p).unwrap();
                }
                let candidates = cache_fast.resident_files_sorted();
                if let Some(&p) = candidates.first() {
                    if cache_slow.contains(p) {
                        cache_fast.pin(p).unwrap();
                        cache_slow.pin(p).unwrap();
                        pinned = Some(p);
                    }
                }
            }
            let k = (next() % 2 + 1) as usize;
            let r = Bundle::from_raw((0..k).map(|_| (next() % 12) as u32));
            let a = fast.handle(&r, &mut cache_fast, &catalog);
            let b = slow.handle(&r, &mut cache_slow, &catalog);
            assert_eq!(a, b, "diverged at request {i}");
        }
    }
}

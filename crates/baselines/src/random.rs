//! Random replacement: the victim is a uniformly random evictable resident
//! file. A seeded control baseline — any policy worth running should beat it.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, RequestOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random replacement policy (deterministic per seed).
#[derive(Debug, Clone)]
pub struct RandomEvict {
    seed: u64,
    rng: StdRng,
}

impl RandomEvict {
    /// Creates the policy with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CachePolicy for RandomEvict {
    fn name(&self) -> &str {
        "Random"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let rng = &mut self.rng;
        service_with_evictor(bundle, cache, catalog, |cache| {
            let mut candidates: Vec<_> = cache
                .iter()
                .map(|(f, _)| f)
                .filter(|&f| !bundle.contains(f) && !cache.is_pinned(f))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_unstable(); // deterministic base order for the RNG draw
            Some(candidates[rng.gen_range(0..candidates.len())])
        })
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::types::FileId;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn is_deterministic_per_seed() {
        let catalog = FileCatalog::from_sizes(vec![1; 10]);
        let run = |seed: u64| {
            let mut cache = CacheState::new(3);
            let mut p = RandomEvict::new(seed);
            let mut evictions = Vec::new();
            for i in 0..20u32 {
                let out = p.handle(&b(&[i % 10]), &mut cache, &catalog);
                evictions.extend(out.evicted_files);
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // overwhelmingly likely to differ
    }

    #[test]
    fn never_evicts_bundle_files() {
        let catalog = FileCatalog::from_sizes(vec![1; 5]);
        let mut cache = CacheState::new(2);
        let mut p = RandomEvict::new(1);
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog);
        for i in 2..5u32 {
            let keep = (i - 1) % 5;
            let out = p.handle(&b(&[keep, i]), &mut cache, &catalog);
            assert!(!out.evicted_files.contains(&FileId(keep)));
            assert!(cache.check_invariants());
        }
    }

    #[test]
    fn reset_restores_seed_determinism() {
        let catalog = FileCatalog::from_sizes(vec![1; 6]);
        let mut p = RandomEvict::new(42);
        let run_once = |p: &mut RandomEvict| {
            let mut cache = CacheState::new(2);
            let mut ev = Vec::new();
            for i in 0..12u32 {
                ev.extend(p.handle(&b(&[i % 6]), &mut cache, &catalog).evicted_files);
            }
            ev
        };
        let first = run_once(&mut p);
        p.reset();
        let second = run_once(&mut p);
        assert_eq!(first, second);
    }
}

//! Largest-file-first replacement: the victim is the biggest evictable
//! resident file. A classic web-caching heuristic (SIZE) that maximises the
//! *number* of objects kept — usually at the expense of the byte miss ratio,
//! which is exactly the trade-off the paper's metric punishes.
//!
//! Victim selection is indexed by a [`LazyHeap`] keyed on `Reverse(size)` —
//! sizes never change, so the index only tracks admissions and evictions.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::Bytes;
use fbc_obs::Obs;
use std::cmp::Reverse;

use crate::util::LazyHeap;

/// Largest-first replacement policy.
#[derive(Debug, Clone, Default)]
pub struct LargestFirst {
    /// Resident files keyed by descending size.
    index: LazyHeap<Reverse<Bytes>>,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl LargestFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for LargestFirst {
    fn name(&self) -> &str {
        "SIZE"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let index = &mut self.index;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            if index.len() != cache.len() {
                index.rebuild(cache.iter().map(|(f, size)| (f, Reverse(size))));
            }
            index.choose(cache, bundle)
        });
        for &f in &outcome.fetched_files {
            self.index.update(f, Reverse(catalog.size(f)));
        }
        for &f in &outcome.evicted_files {
            self.index.remove(f);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.index.clear();
    }
}

/// The pre-index full-scan SIZE policy, retained verbatim so the
/// differential suite can pin [`LargestFirst`]'s indexed victim selection
/// against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct LargestFirstReference;

#[cfg(any(test, feature = "reference-kernels"))]
impl LargestFirstReference {
    /// Creates the reference policy.
    pub fn new() -> Self {
        Self
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for LargestFirstReference {
    fn name(&self) -> &str {
        "SIZE"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        service_with_evictor(bundle, cache, catalog, |cache| {
            crate::util::choose_victim_min_by_reference(cache, bundle, |_, size| Reverse(size))
        })
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::types::FileId;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_largest_file() {
        let catalog = FileCatalog::from_sizes(vec![5, 3, 4]);
        let mut cache = CacheState::new(8);
        let mut p = LargestFirst::new();
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog);
        let out = p.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
    }

    #[test]
    fn reset_clears_the_index() {
        let catalog = FileCatalog::from_sizes(vec![5, 3]);
        let mut cache = CacheState::new(8);
        let mut p = LargestFirst::new();
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.reset();
        assert_eq!(p.name(), "SIZE");
        // The index resyncs from the still-warm cache on the next eviction.
        p.handle(&b(&[1]), &mut cache, &catalog);
        let out = p.handle(&b(&[0]), &mut cache, &catalog);
        assert!(out.serviced);
    }
}

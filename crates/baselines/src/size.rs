//! Largest-file-first replacement: the victim is the biggest evictable
//! resident file. A classic web-caching heuristic (SIZE) that maximises the
//! *number* of objects kept — usually at the expense of the byte miss ratio,
//! which is exactly the trade-off the paper's metric punishes.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, RequestOutcome};
use std::cmp::Reverse;

use crate::util::choose_victim_min_by;

/// Largest-first replacement policy.
#[derive(Debug, Clone, Default)]
pub struct LargestFirst;

impl LargestFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl CachePolicy for LargestFirst {
    fn name(&self) -> &str {
        "SIZE"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        service_with_evictor(bundle, cache, catalog, |cache| {
            choose_victim_min_by(cache, bundle, |_, size| Reverse(size))
        })
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::types::FileId;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn evicts_largest_file() {
        let catalog = FileCatalog::from_sizes(vec![5, 3, 4]);
        let mut cache = CacheState::new(8);
        let mut p = LargestFirst::new();
        p.handle(&b(&[0]), &mut cache, &catalog);
        p.handle(&b(&[1]), &mut cache, &catalog);
        let out = p.handle(&b(&[2]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(0)]);
        assert!(cache.contains(FileId(1)));
    }

    #[test]
    fn stateless_reset_is_noop() {
        let mut p = LargestFirst::new();
        p.reset();
        assert_eq!(p.name(), "SIZE");
    }
}

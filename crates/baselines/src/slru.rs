//! Segmented LRU (Karedla, Love & Wherry, 1994), bundle-adapted.
//!
//! Residents are split into a *probationary* and a *protected* segment. A
//! file enters probation on first fetch; a hit while on probation promotes
//! it to the protected segment (whose byte size is capped at a fraction of
//! the cache); overflowing the protected segment demotes its LRU tail back
//! to probation. Victims always come from probation's LRU end, so one-shot
//! files can never displace twice-referenced ones — scan resistance with
//! plain-LRU bookkeeping.
//!
//! Victim selection and demotion are indexed by two [`LazyHeap`]s (one per
//! segment) keyed on last-touch tick, and the protected segment's byte
//! total is tracked incrementally instead of being recomputed by a full
//! cache scan per demotion round.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{service_with_evictor, CachePolicy, OutcomeObsSlots, RequestOutcome};
use fbc_core::types::{Bytes, FileId};
use fbc_obs::Obs;
use std::collections::HashMap;

use crate::util::LazyHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// The SLRU policy.
#[derive(Debug, Clone)]
pub struct Slru {
    /// Maximum fraction of the cache the protected segment may hold.
    protected_fraction: f64,
    clock: u64,
    /// Per-resident-file: segment, last-touch tick, and size (cached for
    /// the incremental protected-bytes accounting).
    state: HashMap<FileId, (Segment, u64, Bytes)>,
    /// Probationary residents keyed by last-touch tick.
    probation: LazyHeap<u64>,
    /// Protected residents keyed by last-touch tick.
    protected: LazyHeap<u64>,
    /// Running byte total of the protected segment.
    protected_bytes: Bytes,
    /// Observability sink (disabled unless a driver attaches one).
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
}

impl Slru {
    /// SLRU with the conventional 80 % protected share.
    pub fn new() -> Self {
        Self::with_protected_fraction(0.8)
    }

    /// SLRU with an explicit protected-segment share in `(0, 1)`.
    pub fn with_protected_fraction(protected_fraction: f64) -> Self {
        assert!(
            protected_fraction > 0.0 && protected_fraction < 1.0,
            "protected fraction must be in (0, 1), got {protected_fraction}"
        );
        Self {
            protected_fraction,
            clock: 0,
            state: HashMap::new(),
            probation: LazyHeap::new(),
            protected: LazyHeap::new(),
            protected_bytes: 0,
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
        }
    }

    /// Whether `file` currently sits in the protected segment (diagnostics).
    pub fn is_protected(&self, file: FileId) -> bool {
        matches!(self.state.get(&file), Some((Segment::Protected, _, _)))
    }

    /// Demotes protected LRU tails until the protected segment fits its cap.
    fn rebalance(&mut self, cache: &CacheState) {
        let cap = (cache.capacity() as f64 * self.protected_fraction) as Bytes;
        while self.protected_bytes > cap {
            match self.protected.pop_min() {
                Some((f, tick)) => {
                    // Demotion keeps the file's tick: it re-enters probation
                    // at its old recency, exactly as the reference does.
                    let size = match self.state.get(&f) {
                        Some(&(_, _, size)) => size,
                        None => break,
                    };
                    self.state.insert(f, (Segment::Probation, tick, size));
                    self.probation.update(f, tick);
                    self.protected_bytes -= size;
                }
                None => break,
            }
        }
    }
}

impl Default for Slru {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for Slru {
    fn name(&self) -> &str {
        "SLRU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let probation = &mut self.probation;
        let protected = &mut self.protected;
        // Victim: probation's LRU end; if probation is empty (everything
        // protected), fall back to protected's LRU end. Files the policy has
        // no state for (e.g. after a reset against a warm cache) are not
        // candidates — the heaps mirror `state`, matching the reference.
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            probation
                .choose(cache, bundle)
                .or_else(|| protected.choose(cache, bundle))
        });

        for f in &outcome.evicted_files {
            if let Some((segment, _, size)) = self.state.remove(f) {
                if segment == Segment::Protected {
                    self.protected_bytes -= size;
                }
            }
            self.probation.remove(*f);
            self.protected.remove(*f);
        }
        if outcome.serviced {
            for f in bundle.iter() {
                let size = catalog.size(f);
                let segment = match self.state.get(&f) {
                    // Hit on a resident file: promote to protected.
                    Some(_) if !outcome.fetched_files.contains(&f) => Segment::Protected,
                    // Newly fetched: probation.
                    _ => Segment::Probation,
                };
                let prev = self.state.insert(f, (segment, self.clock, size));
                match segment {
                    Segment::Protected => {
                        if !matches!(prev, Some((Segment::Protected, _, _))) {
                            self.protected_bytes += size;
                            self.probation.remove(f);
                        }
                        self.protected.update(f, self.clock);
                    }
                    Segment::Probation => {
                        self.probation.update(f, self.clock);
                    }
                }
            }
            self.rebalance(cache);
        }
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.state.clear();
        self.probation.clear();
        self.protected.clear();
        self.protected_bytes = 0;
    }
}

/// The pre-index full-scan SLRU, retained verbatim so the differential
/// suite can pin [`Slru`]'s indexed victim selection against it.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone)]
pub struct SlruReference {
    protected_fraction: f64,
    clock: u64,
    state: HashMap<FileId, (Segment, u64)>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl Default for SlruReference {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl SlruReference {
    /// Reference SLRU with the conventional 80 % protected share.
    pub fn new() -> Self {
        Self::with_protected_fraction(0.8)
    }

    /// Reference SLRU with an explicit protected-segment share in `(0, 1)`.
    pub fn with_protected_fraction(protected_fraction: f64) -> Self {
        assert!(
            protected_fraction > 0.0 && protected_fraction < 1.0,
            "protected fraction must be in (0, 1), got {protected_fraction}"
        );
        Self {
            protected_fraction,
            clock: 0,
            state: HashMap::new(),
        }
    }

    /// Whether `file` currently sits in the protected segment (diagnostics).
    pub fn is_protected(&self, file: FileId) -> bool {
        matches!(self.state.get(&file), Some((Segment::Protected, _)))
    }

    fn protected_bytes(&self, cache: &CacheState) -> Bytes {
        cache
            .iter()
            .filter(|(f, _)| matches!(self.state.get(f), Some((Segment::Protected, _))))
            .map(|(_, s)| s)
            .sum()
    }

    fn rebalance(&mut self, cache: &CacheState) {
        let cap = (cache.capacity() as f64 * self.protected_fraction) as Bytes;
        while self.protected_bytes(cache) > cap {
            let victim = cache
                .iter()
                .filter_map(|(f, _)| match self.state.get(&f) {
                    Some((Segment::Protected, tick)) => Some((f, *tick)),
                    _ => None,
                })
                .min_by_key(|&(f, tick)| (tick, f));
            match victim {
                Some((f, tick)) => {
                    self.state.insert(f, (Segment::Probation, tick));
                }
                None => break,
            }
        }
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CachePolicy for SlruReference {
    fn name(&self) -> &str {
        "SLRU"
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        self.clock += 1;
        let state = &self.state;
        let outcome = service_with_evictor(bundle, cache, catalog, |cache| {
            let evictable = |f: FileId| !bundle.contains(f) && !cache.is_pinned(f);
            let pick = |segment: Segment| {
                cache
                    .iter()
                    .filter_map(|(f, _)| match state.get(&f) {
                        Some((s, tick)) if *s == segment && evictable(f) => Some((f, *tick)),
                        _ => None,
                    })
                    .min_by_key(|&(f, tick)| (tick, f))
                    .map(|(f, _)| f)
            };
            pick(Segment::Probation).or_else(|| pick(Segment::Protected))
        });

        for f in &outcome.evicted_files {
            self.state.remove(f);
        }
        if outcome.serviced {
            for f in bundle.iter() {
                let entry = match self.state.get(&f) {
                    Some(_) if !outcome.fetched_files.contains(&f) => {
                        (Segment::Protected, self.clock)
                    }
                    _ => (Segment::Probation, self.clock),
                };
                self.state.insert(f, entry);
            }
            self.rebalance(cache);
        }
        outcome
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn first_touch_is_probationary_second_promotes() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(4);
        let mut p = Slru::new();
        p.handle(&b(&[0]), &mut cache, &catalog);
        assert!(!p.is_protected(FileId(0)));
        p.handle(&b(&[0]), &mut cache, &catalog);
        assert!(p.is_protected(FileId(0)));
    }

    #[test]
    fn scans_evict_probation_not_protected() {
        let catalog = FileCatalog::from_sizes(vec![1; 30]);
        let mut cache = CacheState::new(3);
        let mut p = Slru::new();
        // Promote {0,1}.
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        // One-shot scan of 20 distinct files: each enters probation and is
        // evicted by the next, never touching the protected pair.
        for i in 10..30u32 {
            p.handle(&b(&[i]), &mut cache, &catalog);
        }
        assert!(cache.supports(&b(&[0, 1])));
    }

    #[test]
    fn protected_segment_is_capped() {
        let catalog = FileCatalog::from_sizes(vec![1; 10]);
        let mut cache = CacheState::new(4);
        // Cap protected at 50% = 2 bytes.
        let mut p = Slru::with_protected_fraction(0.5);
        for i in 0..4u32 {
            p.handle(&b(&[i]), &mut cache, &catalog);
            p.handle(&b(&[i]), &mut cache, &catalog); // promote each
        }
        let protected = (0..4u32).filter(|&i| p.is_protected(FileId(i))).count();
        assert!(protected <= 2, "protected segment over cap: {protected}");
    }

    #[test]
    fn falls_back_to_protected_when_probation_empty() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(2);
        let mut p = Slru::new();
        p.handle(&b(&[0, 1]), &mut cache, &catalog);
        p.handle(&b(&[0, 1]), &mut cache, &catalog); // both protected
                                                     // New file must displace a protected one (probation empty).
        let out = p.handle(&b(&[2]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files.len(), 1);
    }

    #[test]
    #[should_panic(expected = "protected fraction")]
    fn bad_fraction_rejected() {
        let _ = Slru::with_protected_fraction(1.0);
    }

    /// The indexed segments and incremental byte accounting must replay the
    /// reference's choices through promotions, demotions and evictions.
    #[test]
    fn tracks_reference_through_demotions() {
        let catalog = FileCatalog::from_sizes((0..12).map(|i| (i % 3) + 1).collect());
        let mut state = 0x51A0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let trace: Vec<Bundle> = (0..250)
            .map(|_| {
                let k = (next() % 3 + 1) as usize;
                Bundle::from_raw((0..k).map(|_| (next() % 12) as u32))
            })
            .collect();
        let mut fast = Slru::with_protected_fraction(0.5);
        let mut slow = SlruReference::with_protected_fraction(0.5);
        let mut cache_fast = CacheState::new(6);
        let mut cache_slow = CacheState::new(6);
        for (i, r) in trace.iter().enumerate() {
            let a = fast.handle(r, &mut cache_fast, &catalog);
            let b = slow.handle(r, &mut cache_slow, &catalog);
            assert_eq!(a, b, "diverged at request {i}");
            for f in (0..12u32).map(FileId) {
                assert_eq!(
                    fast.is_protected(f),
                    slow.is_protected(f),
                    "segment of {f:?} diverged at request {i}"
                );
            }
        }
    }
}

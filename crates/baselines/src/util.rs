//! Shared helpers for victim selection in the baseline policies.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::types::FileId;

/// Picks the evictable resident file minimising `key` — excluding files of
/// the in-flight `bundle` and pinned files. Ties are broken by lower
/// [`FileId`] so every policy is deterministic.
pub fn choose_victim_min_by<K, F>(cache: &CacheState, bundle: &Bundle, mut key: F) -> Option<FileId>
where
    K: PartialOrd,
    F: FnMut(FileId, u64) -> K,
{
    let mut best: Option<(FileId, K)> = None;
    let mut candidates: Vec<(FileId, u64)> = cache
        .iter()
        .filter(|&(f, _)| !bundle.contains(f) && !cache.is_pinned(f))
        .collect();
    candidates.sort_unstable_by_key(|&(f, _)| f);
    for (f, size) in candidates {
        let k = key(f, size);
        match &best {
            Some((_, bk)) if *bk <= k => {}
            _ => best = Some((f, k)),
        }
    }
    best.map(|(f, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn picks_minimum_and_skips_bundle_and_pinned() {
        let catalog = FileCatalog::from_sizes(vec![1, 2, 3, 4]);
        let mut cache = CacheState::new(10);
        for i in 0..4 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        cache.pin(FileId(0)).unwrap();
        let bundle = Bundle::from_raw([1]);
        // key = size: smallest evictable is f2 (f0 pinned, f1 in bundle).
        let v = choose_victim_min_by(&cache, &bundle, |_, size| size);
        assert_eq!(v, Some(FileId(2)));
    }

    #[test]
    fn ties_break_to_lower_id() {
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(15);
        for i in 0..3 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        let v = choose_victim_min_by(&cache, &Bundle::new([]), |_, _| 0u8);
        assert_eq!(v, Some(FileId(0)));
    }

    #[test]
    fn empty_cache_yields_none() {
        let cache = CacheState::new(10);
        assert_eq!(
            choose_victim_min_by(&cache, &Bundle::new([]), |_, s| s),
            None
        );
    }
}

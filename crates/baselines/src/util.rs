//! Shared victim-selection kernel for the baseline policies.
//!
//! Every baseline used to rediscover its victim by collecting **and
//! sorting** the entire resident set per eviction — `O(n log n)` per victim
//! plus a fresh `Vec` each call. This module replaces that scan with
//! incrementally maintained *eviction indices* that make bit-for-bit
//! identical choices (including the lower-[`FileId`] tie-break):
//!
//! * [`LazyHeap`] — a lazy-deletion binary min-heap with version stamps,
//!   for priorities that change on access (LFU counts, GDSF H-values,
//!   LRU-K distances, Belady next-use, SLRU segment ticks). Reprioritising
//!   pushes a fresh stamped entry; stale entries are discarded when popped.
//! * [`OrderedList`] — an intrusive doubly-linked list over a slab with an
//!   FxHash position map, for pure recency/insertion orders (LRU, FIFO,
//!   ARC's T1/T2/ghost lists) where `O(1)` remove-by-id replaces the old
//!   `iter().position` scans.
//! * [`SortedArena`] — a sorted resident arena that lets `Random` replay
//!   the reference policy's exact seeded draw without materialising the
//!   candidate list.
//!
//! **Skip-on-pop contract:** pinned files and files of the in-flight bundle
//! are *not* pre-filtered out of the indices. They are skipped when popped
//! (and restored afterwards), so one eviction costs
//! `O((skipped + 1) · log n)` instead of `O(n log n)`.
//!
//! The old full-scan selector is retained verbatim as
//! [`choose_victim_min_by_reference`] behind the `reference-kernels`
//! feature; the reference twins in each policy module and the root-level
//! `tests/evictor_equivalence.rs` differential suite pin the indices equal
//! to it.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::types::FileId;
use rustc_hash::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Picks the evictable resident file minimising `key` — excluding files of
/// the in-flight `bundle` and pinned files. Ties are broken by lower
/// [`FileId`] so every policy is deterministic.
///
/// This is the pre-index full-scan implementation, retained verbatim so the
/// reference policy twins (and the differential suites pinning the indexed
/// kernels to them) keep the original semantics bit-for-bit.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn choose_victim_min_by_reference<K, F>(
    cache: &CacheState,
    bundle: &Bundle,
    mut key: F,
) -> Option<FileId>
where
    K: PartialOrd,
    F: FnMut(FileId, u64) -> K,
{
    let mut best: Option<(FileId, K)> = None;
    let mut candidates: Vec<(FileId, u64)> = cache
        .iter()
        .filter(|&(f, _)| !bundle.contains(f) && !cache.is_pinned(f))
        .collect();
    candidates.sort_unstable_by_key(|&(f, _)| f);
    for (f, size) in candidates {
        let k = key(f, size);
        match &best {
            Some((_, bk)) if *bk <= k => {}
            _ => best = Some((f, k)),
        }
    }
    best.map(|(f, _)| f)
}

/// A total-order wrapper for non-NaN `f64` priorities.
///
/// The reference scan compares keys with `PartialOrd`, under which `-0.0`
/// and `+0.0` are equal; `Ord` via `partial_cmp` preserves exactly that
/// (unlike `f64::total_cmp`, which orders `-0.0 < +0.0` and would flip the
/// id tie-break between them). Keys are never NaN in any policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("priority keys are never NaN")
    }
}

/// A lazy-deletion binary min-heap over `(key, FileId)` with version stamps.
///
/// [`update`](LazyHeap::update) pushes a freshly stamped entry instead of
/// reordering in place; [`remove`](LazyHeap::remove) only drops the live
/// record. Entries whose stamp no longer matches the live record are
/// discarded when popped, so the heap self-compacts as it is queried.
///
/// Ordering is `(key, FileId)` lexicographic — the same "minimum key, ties
/// to the lower id" rule as [`choose_victim_min_by_reference`].
#[derive(Debug, Clone)]
pub struct LazyHeap<K: Ord + Copy> {
    heap: BinaryHeap<Reverse<(K, FileId, u64)>>,
    /// Live record per file: (current stamp, current key).
    live: FxHashMap<FileId, (u64, K)>,
    stamp: u64,
    /// Reusable scratch for entries skipped during a pop (pinned /
    /// in-flight-bundle files); restored before returning, so the hot path
    /// allocates nothing in steady state.
    skipped: Vec<(K, FileId, u64)>,
}

impl<K: Ord + Copy> Default for LazyHeap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> LazyHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: FxHashMap::default(),
            stamp: 0,
            skipped: Vec::new(),
        }
    }

    /// Number of live (tracked) files.
    #[inline]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no file is tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `file` is tracked.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        self.live.contains_key(&file)
    }

    /// The current key of `file`, if tracked.
    #[inline]
    pub fn key_of(&self, file: FileId) -> Option<K> {
        self.live.get(&file).map(|&(_, k)| k)
    }

    /// Inserts `file` or reprioritises it to `key` (O(log n) amortised).
    pub fn update(&mut self, file: FileId, key: K) {
        self.stamp += 1;
        self.live.insert(file, (self.stamp, key));
        self.heap.push(Reverse((key, file, self.stamp)));
    }

    /// Stops tracking `file`; its heap entries become stale and are dropped
    /// lazily. Returns whether the file was tracked.
    pub fn remove(&mut self, file: FileId) -> bool {
        self.live.remove(&file).is_some()
    }

    /// Drops all state.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.stamp = 0;
        self.skipped.clear();
    }

    /// Replaces the whole index with `entries` in one O(n) heapify — the
    /// resync path for a policy whose index is out of step with the cache
    /// (e.g. the policy was reset while the cache stayed warm).
    pub fn rebuild(&mut self, entries: impl IntoIterator<Item = (FileId, K)>) {
        self.heap.clear();
        self.live.clear();
        self.skipped.clear();
        let mut v: Vec<Reverse<(K, FileId, u64)>> = Vec::new();
        for (f, k) in entries {
            self.stamp += 1;
            self.live.insert(f, (self.stamp, k));
            v.push(Reverse((k, f, self.stamp)));
        }
        self.heap = BinaryHeap::from(v);
    }

    /// Pops the minimum-key evictable file: skips (and restores) files of
    /// the in-flight `bundle` and pinned files, drops stale entries, and
    /// lazily un-tracks files no longer resident. The chosen victim is
    /// removed from the index before returning.
    pub fn choose(&mut self, cache: &CacheState, bundle: &Bundle) -> Option<FileId> {
        debug_assert!(self.skipped.is_empty());
        let mut victim = None;
        while let Some(Reverse((key, file, stamp))) = self.heap.pop() {
            match self.live.get(&file) {
                Some(&(live_stamp, _)) if live_stamp == stamp => {
                    if !cache.contains(file) {
                        // Desynced entry (cache mutated behind the policy's
                        // back): permanently drop it.
                        self.live.remove(&file);
                    } else if bundle.contains(file) || cache.is_pinned(file) {
                        self.skipped.push((key, file, stamp));
                    } else {
                        self.live.remove(&file);
                        victim = Some(file);
                        break;
                    }
                }
                _ => {} // stale stamp: discard
            }
        }
        for &(key, file, stamp) in &self.skipped {
            self.heap.push(Reverse((key, file, stamp)));
        }
        self.skipped.clear();
        victim
    }

    /// Pops the minimum-key live file regardless of pins or in-flight
    /// bundles (used for SLRU's protected→probation demotion, where the
    /// caller guarantees every live file is resident). Returns the file and
    /// its key, un-tracking it.
    pub fn pop_min(&mut self) -> Option<(FileId, K)> {
        while let Some(Reverse((key, file, stamp))) = self.heap.pop() {
            match self.live.get(&file) {
                Some(&(live_stamp, _)) if live_stamp == stamp => {
                    self.live.remove(&file);
                    return Some((file, key));
                }
                _ => {}
            }
        }
        None
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    file: FileId,
    value: V,
    prev: u32,
    next: u32,
}

/// An ordered intrusive doubly-linked list over a slab, with an FxHash
/// position map for `O(1)` remove-by-id — the index for pure
/// recency/insertion orders (LRU, FIFO, ARC's T1/T2 and ghost lists).
///
/// Front = oldest. Freed slots are recycled through a free list, so a
/// steady-state policy allocates nothing per eviction.
#[derive(Debug, Clone)]
pub struct OrderedList<V> {
    nodes: Vec<Node<V>>,
    pos: FxHashMap<FileId, u32>,
    head: u32,
    tail: u32,
    free: u32,
    len: usize,
}

impl<V> Default for OrderedList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> OrderedList<V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            pos: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            free: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `file` is in the list.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        self.pos.contains_key(&file)
    }

    /// Appends `file` at the back (the newest end). `file` must not already
    /// be present.
    pub fn push_back(&mut self, file: FileId, value: V) {
        debug_assert!(!self.contains(file), "duplicate list entry {file:?}");
        let idx = match self.free {
            NIL => {
                self.nodes.push(Node {
                    file,
                    value,
                    prev: self.tail,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
            idx => {
                self.free = self.nodes[idx as usize].next;
                self.nodes[idx as usize] = Node {
                    file,
                    value,
                    prev: self.tail,
                    next: NIL,
                };
                idx
            }
        };
        match self.tail {
            NIL => self.head = idx,
            t => self.nodes[t as usize].next = idx,
        }
        self.tail = idx;
        self.pos.insert(file, idx);
        self.len += 1;
    }

    fn unlink(&mut self, idx: u32) -> V
    where
        V: Default,
    {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            nx => self.nodes[nx as usize].prev = prev,
        }
        let node = &mut self.nodes[idx as usize];
        let value = std::mem::take(&mut node.value);
        node.prev = NIL;
        node.next = self.free;
        self.free = idx;
        self.len -= 1;
        value
    }

    /// Removes `file` in O(1), returning its value if present.
    pub fn remove(&mut self, file: FileId) -> Option<V>
    where
        V: Default,
    {
        let idx = self.pos.remove(&file)?;
        Some(self.unlink(idx))
    }

    /// Moves `file` to the back (newest); inserts it if absent.
    pub fn move_to_back(&mut self, file: FileId, value: V)
    where
        V: Default,
    {
        if let Some(idx) = self.pos.remove(&file) {
            self.unlink(idx);
        }
        self.push_back(file, value);
    }

    /// Removes and returns the front (oldest) entry.
    pub fn pop_front(&mut self) -> Option<(FileId, V)>
    where
        V: Default,
    {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        let file = self.nodes[idx as usize].file;
        self.pos.remove(&file);
        let value = self.unlink(idx);
        Some((file, value))
    }

    /// Iterates front→back over `(file, &value)`.
    pub fn iter(&self) -> OrderedListIter<'_, V> {
        OrderedListIter {
            list: self,
            cur: self.head,
        }
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.pos.clear();
        self.head = NIL;
        self.tail = NIL;
        self.free = NIL;
        self.len = 0;
    }

    /// Walks from the front and unlinks + returns the first evictable file
    /// (resident, unpinned, not in the in-flight `bundle`). Entries for
    /// files no longer resident are lazily dropped along the way; skipped
    /// (pinned / in-flight) entries stay in place.
    pub fn choose(&mut self, cache: &CacheState, bundle: &Bundle) -> Option<FileId>
    where
        V: Default,
    {
        let mut cur = self.head;
        while cur != NIL {
            let file = self.nodes[cur as usize].file;
            let next = self.nodes[cur as usize].next;
            if !cache.contains(file) {
                // Desynced entry: permanently drop it.
                self.pos.remove(&file);
                self.unlink(cur);
            } else if !bundle.contains(file) && !cache.is_pinned(file) {
                self.pos.remove(&file);
                self.unlink(cur);
                return Some(file);
            }
            cur = next;
        }
        None
    }
}

/// Front→back iterator over an [`OrderedList`].
#[derive(Debug)]
pub struct OrderedListIter<'a, V> {
    list: &'a OrderedList<V>,
    cur: u32,
}

impl<'a, V> Iterator for OrderedListIter<'a, V> {
    type Item = (FileId, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next;
        Some((node.file, &node.value))
    }
}

/// A sorted arena of resident file ids, used by `Random` to replay the
/// reference implementation's exact seeded draw: the reference sorts the
/// evictable candidates and indexes that array with `gen_range`, so the
/// replacement must produce the identical order statistic over
/// `residents \ excluded` without materialising the candidate list.
#[derive(Debug, Clone, Default)]
pub struct SortedArena {
    items: Vec<FileId>,
}

impl SortedArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked files.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `file`, keeping ascending order (no-op if present).
    pub fn insert(&mut self, file: FileId) {
        if let Err(i) = self.items.binary_search(&file) {
            self.items.insert(i, file);
        }
    }

    /// Removes `file` if present.
    pub fn remove(&mut self, file: FileId) {
        if let Ok(i) = self.items.binary_search(&file) {
            self.items.remove(i);
        }
    }

    /// Replaces the contents with the residents of `cache`.
    pub fn rebuild(&mut self, cache: &CacheState) {
        self.items.clear();
        self.items.extend(cache.iter().map(|(f, _)| f));
        self.items.sort_unstable();
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The `idx`-th (0-based) element of `arena \ excl` in ascending order.
    ///
    /// `excl` must be sorted ascending, deduplicated, and a subset of the
    /// arena; `idx` must be `< len() - excl.len()`. Binary-searches on the
    /// non-decreasing rank function `g(pos) = pos + 1 − |{e ∈ excl : e ≤
    /// arena[pos]}|`: the leftmost position with `g(pos) = idx + 1` is
    /// never an excluded element (an excluded element leaves `g`
    /// unchanged from its predecessor), so it is exactly the answer.
    pub fn select_excluding(&self, idx: usize, excl: &[FileId]) -> FileId {
        debug_assert!(idx + excl.len() < self.items.len() + 1);
        let (mut lo, mut hi) = (0usize, self.items.len() - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let g = mid + 1 - excl.partition_point(|&e| e <= self.items[mid]);
            if g > idx {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        self.items[lo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn reference_picks_minimum_and_skips_bundle_and_pinned() {
        let catalog = FileCatalog::from_sizes(vec![1, 2, 3, 4]);
        let mut cache = CacheState::new(10);
        for i in 0..4 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        cache.pin(FileId(0)).unwrap();
        let bundle = Bundle::from_raw([1]);
        // key = size: smallest evictable is f2 (f0 pinned, f1 in bundle).
        let v = choose_victim_min_by_reference(&cache, &bundle, |_, size| size);
        assert_eq!(v, Some(FileId(2)));
    }

    #[test]
    fn reference_ties_break_to_lower_id() {
        let catalog = FileCatalog::from_sizes(vec![5, 5, 5]);
        let mut cache = CacheState::new(15);
        for i in 0..3 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        let v = choose_victim_min_by_reference(&cache, &Bundle::new([]), |_, _| 0u8);
        assert_eq!(v, Some(FileId(0)));
    }

    #[test]
    fn reference_empty_cache_yields_none() {
        let cache = CacheState::new(10);
        assert_eq!(
            choose_victim_min_by_reference(&cache, &Bundle::new([]), |_, s| s),
            None
        );
    }

    #[test]
    fn ordf64_matches_partialord_zero_semantics() {
        // -0.0 == +0.0 under PartialOrd — the id tie-break must apply, so
        // the Ord wrapper has to agree (total_cmp would not).
        assert_eq!(OrdF64(-0.0).cmp(&OrdF64(0.0)), std::cmp::Ordering::Equal);
        assert!(OrdF64(1.0) > OrdF64(0.5));
    }

    /// Drives the heap against the reference scan over a random schedule of
    /// updates/removals/evictions with pins and in-flight bundles.
    #[test]
    fn lazy_heap_matches_reference_scan() {
        let mut state = 0x1EAFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let catalog = FileCatalog::from_sizes(vec![1; 16]);
        for _round in 0..200 {
            let mut cache = CacheState::new(16);
            let mut heap = LazyHeap::new();
            let mut keys: FxHashMap<FileId, u64> = FxHashMap::default();
            for _op in 0..60 {
                match next() % 4 {
                    0 => {
                        // Insert/touch a file with a (possibly colliding) key.
                        let f = FileId((next() % 16) as u32);
                        if !cache.contains(f) && cache.insert(f, &catalog).is_err() {
                            continue;
                        }
                        let k = next() % 4;
                        keys.insert(f, k);
                        heap.update(f, k);
                    }
                    1 => {
                        // Evict a specific file.
                        let f = FileId((next() % 16) as u32);
                        if cache.evict(f).is_ok() {
                            keys.remove(&f);
                            heap.remove(f);
                        }
                    }
                    2 => {
                        // Toggle a pin.
                        let f = FileId((next() % 16) as u32);
                        if cache.is_pinned(f) {
                            cache.unpin(f).unwrap();
                        } else {
                            let _ = cache.pin(f);
                        }
                    }
                    _ => {
                        // Compare a choice under a random in-flight bundle.
                        let b = Bundle::from_raw((0..(next() % 3)).map(|_| (next() % 16) as u32));
                        let expect = choose_victim_min_by_reference(&cache, &b, |f, _| {
                            keys.get(&f).copied().unwrap_or(0)
                        });
                        let got = heap.choose(&cache, &b);
                        assert_eq!(got, expect);
                        if let Some(f) = got {
                            cache.evict(f).unwrap();
                            keys.remove(&f);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_heap_skips_stale_entries() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(4);
        let mut heap: LazyHeap<u64> = LazyHeap::new();
        for i in 0..3 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        heap.update(FileId(0), 1);
        heap.update(FileId(1), 2);
        heap.update(FileId(0), 9); // stale entry (0, f0) remains queued
        let empty = Bundle::new([]);
        assert_eq!(heap.choose(&cache, &empty), Some(FileId(1)));
        assert_eq!(heap.choose(&cache, &empty), Some(FileId(0)));
        assert_eq!(heap.choose(&cache, &empty), None);
    }

    #[test]
    fn lazy_heap_restores_skipped_entries() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(4);
        let mut heap: LazyHeap<u64> = LazyHeap::new();
        for i in 0..3 {
            cache.insert(FileId(i), &catalog).unwrap();
        }
        heap.update(FileId(0), 0);
        heap.update(FileId(1), 1);
        heap.update(FileId(2), 2);
        cache.pin(FileId(0)).unwrap();
        let bundle = Bundle::from_raw([1]);
        // f0 pinned, f1 in flight: f2 wins, and both skips are restored.
        assert_eq!(heap.choose(&cache, &bundle), Some(FileId(2)));
        cache.evict(FileId(2)).unwrap();
        cache.unpin(FileId(0)).unwrap();
        let empty = Bundle::new([]);
        assert_eq!(heap.choose(&cache, &empty), Some(FileId(0)));
        assert_eq!(heap.choose(&cache, &empty), Some(FileId(1)));
    }

    #[test]
    fn ordered_list_is_fifo_with_o1_removal() {
        let mut list: OrderedList<()> = OrderedList::new();
        for i in 0..5u32 {
            list.push_back(FileId(i), ());
        }
        assert_eq!(list.remove(FileId(2)), Some(()));
        assert_eq!(list.remove(FileId(2)), None);
        let order: Vec<FileId> = list.iter().map(|(f, _)| f).collect();
        assert_eq!(
            order,
            vec![FileId(0), FileId(1), FileId(3), FileId(4)],
            "removal keeps relative order"
        );
        assert_eq!(list.pop_front(), Some((FileId(0), ())));
        list.move_to_back(FileId(1), ());
        let order: Vec<FileId> = list.iter().map(|(f, _)| f).collect();
        assert_eq!(order, vec![FileId(3), FileId(4), FileId(1)]);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn ordered_list_choose_skips_pinned_and_inflight() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(4);
        let mut list: OrderedList<()> = OrderedList::new();
        for i in 0..4 {
            cache.insert(FileId(i), &catalog).unwrap();
            list.push_back(FileId(i), ());
        }
        cache.pin(FileId(0)).unwrap();
        let bundle = Bundle::from_raw([1]);
        assert_eq!(list.choose(&cache, &bundle), Some(FileId(2)));
        // Skipped entries stayed in place (and in order).
        let order: Vec<FileId> = list.iter().map(|(f, _)| f).collect();
        assert_eq!(order, vec![FileId(0), FileId(1), FileId(3)]);
    }

    #[test]
    fn ordered_list_slab_recycles_slots() {
        let mut list: OrderedList<u64> = OrderedList::new();
        for i in 0..8u32 {
            list.push_back(FileId(i), u64::from(i));
        }
        for i in 0..8u32 {
            assert_eq!(list.remove(FileId(i)), Some(u64::from(i)));
        }
        let slab_size = list.nodes.len();
        for i in 8..16u32 {
            list.push_back(FileId(i), u64::from(i));
        }
        assert_eq!(list.nodes.len(), slab_size, "freed slots were not reused");
        assert_eq!(list.len(), 8);
    }

    #[test]
    fn sorted_arena_select_matches_naive_filter() {
        let mut state = 0xA3E4u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..300 {
            let n = (next() % 20 + 1) as usize;
            let mut ids: Vec<FileId> = (0..n).map(|_| FileId((next() % 64) as u32)).collect();
            ids.sort_unstable();
            ids.dedup();
            let mut arena = SortedArena::new();
            for &f in &ids {
                arena.insert(f);
            }
            let excl: Vec<FileId> = ids.iter().copied().filter(|_| next() % 3 == 0).collect();
            let naive: Vec<FileId> = ids.iter().copied().filter(|f| !excl.contains(f)).collect();
            for (idx, &want) in naive.iter().enumerate() {
                assert_eq!(arena.select_excluding(idx, &excl), want);
            }
        }
    }
}

//! Property-based tests of the indexed eviction structures against naive
//! reference models: the lazy-deletion heap must make exactly the choices
//! of a filtered full scan (minimum key, ties to the lower id) under
//! arbitrary interleavings of re-prioritisation, removal, stale entries,
//! pins, and in-flight bundles.

use fbc_baselines::util::{LazyHeap, OrderedList, SortedArena};
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::types::FileId;
use proptest::prelude::*;
use std::collections::HashMap;

const UNIVERSE: u32 = 24;

/// One step of the model-based heap workout.
#[derive(Debug, Clone)]
enum Op {
    /// Insert or re-key a file (creates stale heap entries on re-key).
    Update(u32, u64),
    /// Stop tracking a file (and evict it from the cache).
    Remove(u32),
    /// Pin a file (pinned files must never be chosen).
    Pin(u32),
    /// Unpin a file.
    Unpin(u32),
    /// Ask for a victim while `bundle` is in flight and compare with the
    /// model's filtered minimum.
    Choose(Vec<u32>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted op mix (the vendored shim has no `prop_oneof!`): updates
    // dominate, with a steady trickle of removals, pins, and choices.
    (
        0u8..8,
        0..UNIVERSE,
        0u64..50,
        proptest::collection::vec(0..UNIVERSE, 0..4),
    )
        .prop_map(|(sel, f, k, ids)| match sel {
            0..=2 => Op::Update(f, k),
            3 => Op::Remove(f),
            4 => Op::Pin(f),
            5 => Op::Unpin(f),
            _ => Op::Choose(ids),
        })
}

/// The model: the minimum `(key, id)` over tracked files that are
/// resident, unpinned, and not part of the in-flight bundle — i.e. the
/// reference full scan the heap replaces.
fn model_choose(
    model: &HashMap<FileId, u64>,
    cache: &CacheState,
    bundle: &Bundle,
) -> Option<FileId> {
    model
        .iter()
        .filter(|&(&f, _)| cache.contains(f) && !cache.is_pinned(f) && !bundle.contains(f))
        .map(|(&f, &k)| (k, f))
        .min()
        .map(|(_, f)| f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heap ≡ filtered-scan model under arbitrary op interleavings.
    #[test]
    fn lazy_heap_choose_matches_filtered_scan_model(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let catalog = FileCatalog::from_sizes(vec![1; UNIVERSE as usize]);
        let mut cache = CacheState::new(u64::from(UNIVERSE));
        let mut heap: LazyHeap<u64> = LazyHeap::new();
        let mut model: HashMap<FileId, u64> = HashMap::new();
        let mut pins: Vec<FileId> = Vec::new();

        for op in ops {
            match op {
                Op::Update(f, k) => {
                    let f = FileId(f);
                    if !cache.contains(f) {
                        cache.insert(f, &catalog).unwrap();
                    }
                    heap.update(f, k);
                    model.insert(f, k);
                    prop_assert_eq!(heap.key_of(f), Some(k));
                }
                Op::Remove(f) => {
                    let f = FileId(f);
                    if cache.contains(f) && !cache.is_pinned(f) {
                        cache.evict(f).unwrap();
                    }
                    if !cache.contains(f) {
                        heap.remove(f);
                        model.remove(&f);
                    }
                }
                Op::Pin(f) => {
                    let f = FileId(f);
                    if cache.contains(f) && !pins.contains(&f) {
                        cache.pin(f).unwrap();
                        pins.push(f);
                    }
                }
                Op::Unpin(f) => {
                    let f = FileId(f);
                    if let Some(i) = pins.iter().position(|&p| p == f) {
                        cache.unpin(f).unwrap();
                        pins.remove(i);
                    }
                }
                Op::Choose(ids) => {
                    let bundle = Bundle::from_raw(ids);
                    let expect = model_choose(&model, &cache, &bundle);
                    let got = heap.choose(&cache, &bundle);
                    prop_assert_eq!(got, expect, "heap victim != filtered-scan victim");
                    if let Some(v) = got {
                        // `choose` un-tracks the victim; the caller evicts it.
                        prop_assert!(!heap.contains(v));
                        cache.evict(v).unwrap();
                        model.remove(&v);
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
    }

    /// Ties always break to the lower id, no matter the insertion order.
    #[test]
    fn lazy_heap_ties_break_to_lower_id(
        mut ids in proptest::collection::vec(0..UNIVERSE, 2..10),
        key in 0u64..5,
    ) {
        ids.sort_unstable();
        ids.dedup();
        let catalog = FileCatalog::from_sizes(vec![1; UNIVERSE as usize]);
        let mut cache = CacheState::new(u64::from(UNIVERSE));
        let mut heap: LazyHeap<u64> = LazyHeap::new();
        // Insert in reverse order so the lowest id goes in last.
        for &f in ids.iter().rev() {
            cache.insert(FileId(f), &catalog).unwrap();
            heap.update(FileId(f), key);
        }
        let empty = Bundle::from_raw(std::iter::empty::<u32>());
        prop_assert_eq!(heap.choose(&cache, &empty), Some(FileId(ids[0])));
    }

    /// Stale entries (left behind by re-keying) never win: after any
    /// sequence of re-keys, the chosen victim reflects only the latest keys.
    #[test]
    fn lazy_heap_rekeys_forget_old_priorities(
        rekeys in proptest::collection::vec((0..4u32, 0u64..50), 1..40)
    ) {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let mut cache = CacheState::new(4);
        let mut heap: LazyHeap<u64> = LazyHeap::new();
        let mut latest: HashMap<FileId, u64> = HashMap::new();
        for f in 0..4u32 {
            cache.insert(FileId(f), &catalog).unwrap();
            heap.update(FileId(f), 25);
            latest.insert(FileId(f), 25);
        }
        for (f, k) in rekeys {
            heap.update(FileId(f), k);
            latest.insert(FileId(f), k);
        }
        let empty = Bundle::from_raw(std::iter::empty::<u32>());
        let expect = model_choose(&latest, &cache, &empty);
        prop_assert_eq!(heap.choose(&cache, &empty), expect);
    }

    /// The ordered list is exactly a queue with O(1) removal: its front
    /// choice equals the oldest entry of a `VecDeque` model under the same
    /// exclusions.
    #[test]
    fn ordered_list_choose_matches_queue_model(
        ops in proptest::collection::vec(
            // 0..=2 → push/move to back, 3 → remove, else → choose excluding f.
            (0u8..6, 0..UNIVERSE).prop_map(|(sel, f)| (sel.min(4).saturating_sub(2), f)),
            1..100,
        )
    ) {
        let catalog = FileCatalog::from_sizes(vec![1; UNIVERSE as usize]);
        let mut cache = CacheState::new(u64::from(UNIVERSE));
        let mut list: OrderedList<()> = OrderedList::new();
        let mut model: Vec<FileId> = Vec::new();
        for (kind, f) in ops {
            let f = FileId(f);
            match kind {
                0 => {
                    if !cache.contains(f) {
                        cache.insert(f, &catalog).unwrap();
                    }
                    list.move_to_back(f, ());
                    model.retain(|&x| x != f);
                    model.push(f);
                }
                1 => {
                    if cache.contains(f) {
                        cache.evict(f).unwrap();
                    }
                    list.remove(f);
                    model.retain(|&x| x != f);
                }
                _ => {
                    let bundle = Bundle::new([f]);
                    let expect = model.iter().copied().find(|&x| x != f);
                    prop_assert_eq!(list.choose(&cache, &bundle), expect);
                    if let Some(v) = expect {
                        cache.evict(v).unwrap();
                        model.retain(|&x| x != v);
                    }
                }
            }
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(
                list.iter().map(|(x, _)| x).collect::<Vec<_>>(),
                model.clone()
            );
        }
    }

    /// `select_excluding` is exactly "sort, filter, index".
    #[test]
    fn sorted_arena_order_statistics_match_filter(
        mut resident in proptest::collection::vec(0..UNIVERSE, 1..16),
        mut excl in proptest::collection::vec(0..UNIVERSE, 0..8),
        idx_seed in 0usize..64,
    ) {
        resident.sort_unstable();
        resident.dedup();
        excl.sort_unstable();
        excl.dedup();
        excl.retain(|f| resident.contains(f));
        let mut arena = SortedArena::new();
        for &f in &resident {
            arena.insert(FileId(f));
        }
        let excl: Vec<FileId> = excl.into_iter().map(FileId).collect();
        let survivors: Vec<FileId> = resident
            .iter()
            .map(|&f| FileId(f))
            .filter(|f| !excl.contains(f))
            .collect();
        // No `prop_assume!` in the vendored shim: skip the empty case.
        if !survivors.is_empty() {
            let idx = idx_seed % survivors.len();
            prop_assert_eq!(arena.select_excluding(idx, &excl), survivors[idx]);
        }
    }
}

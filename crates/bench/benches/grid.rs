//! Criterion micro-benchmarks of the discrete-event grid engine: events
//! processed per second for single- and multi-SRM simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbc_core::catalog::FileCatalog;
use fbc_core::optfilebundle::OptFileBundle;
use fbc_core::policy::CachePolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess, JobArrival};
use fbc_grid::engine::{run_grid, GridConfig};
use fbc_grid::multi::{run_multi_grid, Dispatch, MultiGridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_workload::{Popularity, Workload, WorkloadConfig};

fn workload(jobs: usize) -> (FileCatalog, Vec<JobArrival>) {
    let w = Workload::generate(WorkloadConfig {
        num_files: 200,
        max_file_frac: 0.02,
        pool_requests: 100,
        jobs,
        files_per_request: (1, 4),
        popularity: Popularity::zipf(),
        seed: 0x6E1D,
        ..WorkloadConfig::default()
    });
    let arrivals = schedule_arrivals(
        &w.jobs,
        ArrivalProcess::Poisson {
            rate: 10.0,
            seed: 3,
        },
    );
    (w.catalog, arrivals)
}

fn bench_single_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_engine");
    group.sample_size(10);
    for &jobs in &[500usize, 2_000] {
        let (catalog, arrivals) = workload(jobs);
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(
            BenchmarkId::new("single_srm", jobs),
            &(catalog, arrivals),
            |b, (catalog, arrivals)| {
                b.iter(|| {
                    let mut policy = OptFileBundle::new();
                    run_grid(&mut policy, catalog, arrivals, &GridConfig::default())
                });
            },
        );
    }
    group.finish();
}

fn bench_multi_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_engine_multi");
    group.sample_size(10);
    let jobs = 2_000usize;
    let (catalog, arrivals) = workload(jobs);
    group.throughput(Throughput::Elements(jobs as u64));
    for &nodes in &[2usize, 4] {
        let config = MultiGridConfig {
            srm: SrmConfig::default(),
            nodes,
            mss: Default::default(),
            link: Default::default(),
            dispatch: Dispatch::BundleAffinity,
        };
        group.bench_with_input(
            BenchmarkId::new("bundle_affinity", nodes),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut policies: Vec<Box<dyn CachePolicy>> = (0..nodes)
                        .map(|_| Box::new(OptFileBundle::new()) as Box<dyn CachePolicy>)
                        .collect();
                    run_multi_grid(&mut policies, &catalog, &arrivals, config)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_grid, bench_multi_grid);
criterion_main!(benches);

//! Criterion micro-benchmarks of the request-history machinery: recording,
//! candidate discovery with and without the inverted [`SupportIndex`], and
//! relative-value computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbc_core::bundle::Bundle;
use fbc_core::catalog::FileCatalog;
use fbc_core::history::RequestHistory;
use fbc_core::index::SupportIndex;
use fbc_core::types::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` distinct bundles over `n` files, bundle size 2–6.
fn bundles(n: usize, files: usize, seed: u64) -> Vec<Bundle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(2..=6);
            Bundle::from_raw((0..k).map(|_| rng.gen_range(0..files as u32)))
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_record");
    for &n in &[1_000usize, 10_000] {
        let bs = bundles(n, n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &bs, |b, bs| {
            b.iter(|| {
                let mut h = RequestHistory::new();
                for bundle in bs {
                    h.record(bundle);
                }
                h.len()
            });
        });
    }
    group.finish();
}

fn bench_candidate_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_supported_candidates");
    for &n in &[1_000usize, 10_000] {
        let files = n;
        let bs = bundles(n, files, 2);
        // Populate history + index; mark 5% of files resident.
        let mut history = RequestHistory::new();
        let mut index = SupportIndex::new();
        for bundle in &bs {
            history.record(bundle);
            index.on_record(bundle);
        }
        let resident: Vec<FileId> = (0..(files / 20).max(4)).map(|i| FileId(i as u32)).collect();
        let resident_set: std::collections::HashSet<FileId> = resident.iter().copied().collect();
        for &f in &resident {
            index.on_insert(f);
        }
        let incoming = bs[0].clone();

        group.bench_with_input(BenchmarkId::new("scan", n), &(), |b, _| {
            b.iter(|| {
                history
                    .entries()
                    .filter(|e| {
                        e.bundle
                            .is_subset_of(|f| resident_set.contains(&f) || incoming.contains(f))
                    })
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &(), |b, _| {
            b.iter(|| index.supported_with(&incoming).len());
        });
    }
    group.finish();
}

fn bench_relative_value(c: &mut Criterion) {
    let bs = bundles(5_000, 5_000, 3);
    let catalog = FileCatalog::from_sizes(vec![1_000_000; 5_000]);
    let mut history = RequestHistory::new();
    for bundle in &bs {
        history.record(bundle);
    }
    c.bench_function("relative_value_5k_history", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % bs.len();
            history.relative_value(&bs[i], &catalog)
        });
    });
}

criterion_group!(
    benches,
    bench_record,
    bench_candidate_discovery,
    bench_relative_value
);
criterion_main!(benches);

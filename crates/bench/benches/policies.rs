//! Criterion micro-benchmarks of whole-trace policy throughput: how many
//! requests per second each replacement policy can decide on, on the
//! paper's standard workload. OptFileBundle's per-decision cost is the
//! price of bundle-awareness; the paper argues it stays constant with
//! cache-supported history truncation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbc_baselines::{Gdsf, Landlord, Lfu, Lru};
use fbc_core::optfilebundle::{HistoryMode, OfbConfig, OptFileBundle};
use fbc_core::policy::CachePolicy;
use fbc_sim::runner::{run_trace, RunConfig};
use fbc_workload::{Popularity, Trace, Workload, WorkloadConfig};

fn standard_trace(jobs: usize) -> (Trace, u64) {
    let cfg = WorkloadConfig {
        jobs,
        popularity: Popularity::zipf(),
        seed: 0xBE7C,
        ..WorkloadConfig::default()
    };
    let w = Workload::generate(cfg);
    let cache = (w.mean_request_bytes() * 8.0) as u64;
    (w.into_trace(), cache)
}

fn bench_policy_throughput(c: &mut Criterion) {
    let jobs = 2_000usize;
    let (trace, cache) = standard_trace(jobs);
    let mut group = c.benchmark_group("policy_trace_throughput");
    group.throughput(Throughput::Elements(jobs as u64));
    group.sample_size(10);

    type PolicyFactory = Box<dyn Fn() -> Box<dyn CachePolicy>>;
    let cases: Vec<(&str, PolicyFactory)> = vec![
        ("OptFileBundle", Box::new(|| Box::new(OptFileBundle::new()))),
        (
            "OptFileBundle-full-history",
            Box::new(|| {
                Box::new(OptFileBundle::with_config(OfbConfig {
                    history_mode: HistoryMode::Full,
                    ..OfbConfig::default()
                }))
            }),
        ),
        ("Landlord", Box::new(|| Box::new(Landlord::new()))),
        ("LRU", Box::new(|| Box::new(Lru::new()))),
        ("LFU", Box::new(|| Box::new(Lfu::new()))),
        ("GDSF", Box::new(|| Box::new(Gdsf::new()))),
    ];
    for (name, make) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, trace| {
            b.iter(|| {
                let mut policy = make();
                run_trace(policy.as_mut(), trace, &RunConfig::new(cache))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_throughput);
criterion_main!(benches);

//! Criterion micro-benchmarks for `OptCacheSelect`: decision latency as a
//! function of the candidate-history size (the cost the paper's §5.2
//! history-truncation study is about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbc_core::enumerate::opt_cache_select_enumerated;
use fbc_core::instance::FbcInstance;
use fbc_core::select::{opt_cache_select, GreedyVariant, SelectOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A candidate set shaped like a real replacement decision: `n` requests of
/// 2–6 files over a pool of `n` files, capacity enough for roughly a
/// quarter of them.
fn instance(n: usize, seed: u64) -> FbcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=100)).collect();
    let requests: Vec<(Vec<u32>, f64)> = (0..n)
        .map(|_| {
            let k = rng.gen_range(2..=6);
            let files: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
            (files, rng.gen_range(1..=50) as f64)
        })
        .collect();
    let capacity: u64 = sizes.iter().sum::<u64>() / 4;
    FbcInstance::new(capacity, sizes, requests).expect("valid instance")
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_cache_select");
    // Shared-credit is O(n² · b); keep sampling modest at the top end.
    group.sample_size(10);
    for &n in &[64usize, 256, 1024, 4096] {
        let inst = instance(n, 42);
        for (label, variant) in [
            ("paper_literal", GreedyVariant::PaperLiteral),
            ("sorted_once", GreedyVariant::SortedOnce),
            ("shared_credit", GreedyVariant::SharedCredit),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
                let opts = SelectOptions {
                    variant,
                    max_single_fallback: true,
                };
                b.iter(|| opt_cache_select(std::hint::black_box(inst), &opts));
            });
        }
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_enumeration");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let inst = instance(n, 7);
        group.bench_with_input(BenchmarkId::new("k2", n), &inst, |b, inst| {
            b.iter(|| opt_cache_select_enumerated(std::hint::black_box(inst), 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_enumeration);
criterion_main!(benches);

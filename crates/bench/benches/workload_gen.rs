//! Criterion micro-benchmarks of workload generation: Zipf sampling and the
//! full §5.1 generator, so sweep costs are attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbc_workload::{Popularity, PopularitySampler, Workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_zipf_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sampling");
    for &n in &[100usize, 10_000, 1_000_000] {
        let sampler = PopularitySampler::new(Popularity::zipf(), n);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &sampler, |b, s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| s.sample(&mut rng));
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for &jobs in &[1_000usize, 10_000] {
        let cfg = WorkloadConfig {
            jobs,
            ..WorkloadConfig::default()
        };
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &cfg, |b, cfg| {
            b.iter(|| Workload::generate(*cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zipf_sampling, bench_workload_generation);
criterion_main!(benches);

//! Extension experiment: second-hit **admission control** around each
//! policy. One-shot requests are streamed past the cache instead of being
//! admitted; under Zipf popularity most requests recur, so gating costs
//! little, while under uniform popularity over a large pool the gate
//! prevents constant churn.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin ablation_admission
//! ```

use fbc_baselines::{AdmissionGate, Landlord, Lru};
use fbc_bench::{banner, paper_workload, results_dir, Experiment, BASE_CACHE};
use fbc_core::bundle::Bundle;
use fbc_core::optfilebundle::OptFileBundle;
use fbc_core::policy::CachePolicy;
use fbc_sim::report::{f4, Table};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::{Popularity, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interleaves one-shot scan jobs (random unique bundles) into a workload:
/// every other job becomes a scan. Models analysis campaigns mixed with
/// ad-hoc exploratory queries that never recur.
fn scanified(exp: &Experiment, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let files = exp.trace.catalog.len() as u32;
    let mut jobs = Vec::with_capacity(exp.trace.requests.len() * 2);
    for r in &exp.trace.requests {
        jobs.push(r.clone());
        let k = rng.gen_range(2..=6);
        jobs.push(Bundle::from_raw((0..k).map(|_| rng.gen_range(0..files))));
    }
    Trace::new(exp.trace.catalog.clone(), jobs)
}

fn main() {
    banner("Ablation — second-hit admission control (streamed bypass)");
    let exp_u = Experiment::generate(paper_workload(Popularity::Uniform, 0.01, 15_001));
    let exp_z = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 15_001));

    type Factory = Box<dyn Fn() -> Box<dyn CachePolicy> + Sync>;
    let cases: Vec<(&str, Factory)> = vec![
        ("OptFileBundle", Box::new(|| Box::new(OptFileBundle::new()))),
        (
            "OptFileBundle+admit(2)",
            Box::new(|| Box::new(AdmissionGate::second_hit(OptFileBundle::new()))),
        ),
        ("Landlord", Box::new(|| Box::new(Landlord::new()))),
        (
            "Landlord+admit(2)",
            Box::new(|| Box::new(AdmissionGate::second_hit(Landlord::new()))),
        ),
        ("LRU", Box::new(|| Box::new(Lru::new()))),
        (
            "LRU+admit(2)",
            Box::new(|| Box::new(AdmissionGate::second_hit(Lru::new()))),
        ),
    ];

    let scan_z = scanified(&exp_z, 0x5CA4);
    let results = parallel_sweep(&cases, default_threads(), |(_, make)| {
        let mu = exp_u.run(make(), BASE_CACHE);
        let mz = exp_z.run(make(), BASE_CACHE);
        let mut ps = make();
        let ms = fbc_sim::runner::run_trace(
            ps.as_mut(),
            &scan_z,
            &fbc_sim::runner::RunConfig::new(BASE_CACHE),
        );
        (mu, mz, ms)
    });

    let mut table = Table::new([
        "policy",
        "bmr (uniform)",
        "bmr (zipf)",
        "bmr (zipf + 50% scans)",
        "hit ratio (zipf + scans)",
    ]);
    for ((name, _), (mu, mz, ms)) in cases.iter().zip(&results) {
        table.add_row([
            name.to_string(),
            f4(mu.byte_miss_ratio()),
            f4(mz.byte_miss_ratio()),
            f4(ms.byte_miss_ratio()),
            f4(ms.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: on the pure pool workload every bundle recurs, so gating only\n\
         delays admission and costs a little; once half the jobs are one-shot\n\
         scans, the gate keeps them from churning the working set and wins."
    );

    let out = results_dir().join("ablation_admission.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Ablation: Algorithm 2 Step 3 taken literally (prefetch files of selected
//! historical requests that are not resident) versus the cache-supported
//! default where the prefetch set is empty by construction.
//!
//! Prefetching trades extra bytes moved now for possible hits later; under
//! the byte-miss-ratio metric it must pay for itself.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin ablation_prefetch
//! ```

use fbc_bench::{banner, paper_workload, results_dir, Experiment};
use fbc_core::optfilebundle::{HistoryMode, OfbConfig, OptFileBundle};
use fbc_sim::report::{f4, Table};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

fn main() {
    banner("Ablation — prefetching selected non-resident files (Alg. 2 Step 3)");
    let configs = [
        (
            "cache-supported, no prefetch",
            HistoryMode::CacheSupported,
            false,
        ),
        ("full history, no prefetch", HistoryMode::Full, false),
        ("full history + prefetch", HistoryMode::Full, true),
    ];

    let exp_u = Experiment::generate(paper_workload(Popularity::Uniform, 0.01, 12_001));
    let exp_z = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 12_001));
    let cache_u = fbc_bench::BASE_CACHE;
    let cache_z = fbc_bench::BASE_CACHE;

    let run = |exp: &Experiment, cache: u64, mode: HistoryMode, prefetch: bool| {
        let policy = OptFileBundle::with_config(OfbConfig {
            history_mode: mode,
            prefetch,
            ..OfbConfig::default()
        });
        exp.run(policy, cache)
    };
    let results = parallel_sweep(&configs, default_threads(), |&(_, mode, prefetch)| {
        (
            run(&exp_u, cache_u, mode, prefetch),
            run(&exp_z, cache_z, mode, prefetch),
        )
    });

    let mut table = Table::new([
        "configuration",
        "bmr (uniform)",
        "hit ratio (uniform)",
        "bmr (zipf)",
        "hit ratio (zipf)",
    ]);
    for ((name, _, _), (mu, mz)) in configs.iter().zip(&results) {
        table.add_row([
            name.to_string(),
            f4(mu.byte_miss_ratio()),
            f4(mu.request_hit_ratio()),
            f4(mz.byte_miss_ratio()),
            f4(mz.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: prefetching raises the request-hit ratio but moves extra bytes;\n\
         whether the byte miss ratio improves depends on how predictable the\n\
         workload is (Zipf benefits more than uniform)."
    );

    let out = results_dir().join("ablation_prefetch.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Ablation: the paper's "Note" refinement — recomputing adjusted relative
//! values after every selection (shared-credit) — versus a single sort with
//! marginal charging, versus Algorithm 1 exactly as printed (full-size
//! charging).
//!
//! Two views:
//!
//! 1. **Trace level**: byte miss ratio over the standard workload. On these
//!    random workloads the variants are close (the candidate instances are
//!    easy), which itself is informative.
//! 2. **Instance level**: approximation ratio against the exact optimum on
//!    adversarial dense-graph (DKS-reduction) instances, where full-size
//!    charging visibly underfills the cache.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin ablation_recompute
//! ```

use fbc_bench::{banner, paper_workload, results_dir, Experiment, BASE_CACHE};
use fbc_core::dks::{dks_to_fbc, Graph};
use fbc_core::exact::solve_exact;
use fbc_core::optfilebundle::{OfbConfig, OptFileBundle};
use fbc_core::select::{opt_cache_select, GreedyVariant, SelectOptions};
use fbc_sim::report::{f4, Table};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VARIANTS: [(&str, GreedyVariant); 3] = [
    ("paper-literal", GreedyVariant::PaperLiteral),
    ("sorted-once", GreedyVariant::SortedOnce),
    ("shared-credit", GreedyVariant::SharedCredit),
];

fn trace_level() {
    println!("-- trace level: byte miss ratio on the standard workload --");
    let exp_u = Experiment::generate(paper_workload(Popularity::Uniform, 0.01, 11_001));
    let exp_z = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 11_001));

    let run = |exp: &Experiment, v: GreedyVariant| {
        let policy = OptFileBundle::with_config(OfbConfig {
            variant: v,
            ..OfbConfig::default()
        });
        exp.run(policy, BASE_CACHE)
    };
    let results = parallel_sweep(&VARIANTS, default_threads(), |&(_, v)| {
        (run(&exp_u, v), run(&exp_z, v))
    });

    let mut table = Table::new(["variant", "bmr (uniform)", "bmr (zipf)", "hit ratio (zipf)"]);
    for ((name, _), (mu, mz)) in VARIANTS.iter().zip(&results) {
        table.add_row([
            name.to_string(),
            f4(mu.byte_miss_ratio()),
            f4(mz.byte_miss_ratio()),
            f4(mz.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    let out = results_dir().join("ablation_recompute_trace.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}\n", out.display());
}

/// A random graph with edge probability `p` reduced to an FBC instance.
fn random_dks_instance(
    rng: &mut StdRng,
    n: usize,
    p: f64,
    k: usize,
) -> fbc_core::instance::FbcInstance {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                edges.push((a, b));
            }
        }
    }
    if edges.is_empty() {
        edges.push((0, 1));
    }
    let graph = Graph::new(n, edges).expect("valid random graph");
    dks_to_fbc(&graph, k).expect("k <= n")
}

fn instance_level() {
    println!("-- instance level: approximation ratio on dense-graph instances --");
    let mut rng = StdRng::seed_from_u64(0xD4_5001);
    let trials = if fbc_bench::quick_mode() { 100 } else { 500 };

    let mut sums = [0.0f64; 3];
    let mut worst = [f64::INFINITY; 3];
    for _ in 0..trials {
        let inst = random_dks_instance(&mut rng, 10, 0.4, 5);
        let exact = solve_exact(&inst).value.max(1e-12);
        for (vi, (_, variant)) in VARIANTS.iter().enumerate() {
            let got = opt_cache_select(
                &inst,
                &SelectOptions {
                    variant: *variant,
                    max_single_fallback: true,
                },
            )
            .value;
            let ratio = got / exact;
            sums[vi] += ratio;
            worst[vi] = worst[vi].min(ratio);
        }
    }

    let mut table = Table::new(["variant", "mean ratio vs exact", "worst ratio"]);
    for (vi, (name, _)) in VARIANTS.iter().enumerate() {
        table.add_row([
            name.to_string(),
            f4(sums[vi] / trials as f64),
            f4(worst[vi]),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nExpected: shared-credit >= sorted-once >= paper-literal in mean ratio —\n\
         full-size charging double-counts shared vertices and underfills the cache."
    );
    let out = results_dir().join("ablation_recompute_dks.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

fn main() {
    banner("Ablation — OptCacheSelect greedy variants (paper §3 Note)");
    trace_level();
    instance_level();
}

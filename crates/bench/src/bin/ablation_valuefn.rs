//! Ablation: the request-value function `v(r)` (paper §3: the value "can
//! also reflect request priority or some other measure of importance").
//!
//! On the paper's stationary workloads a plain counter is ideal. This
//! experiment builds a **phase-changing** workload — two halves drawn from
//! *different* request pools over the same files — where counted popularity
//! goes stale at the phase boundary and an exponentially-decayed value
//! adapts.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin ablation_valuefn
//! ```

use fbc_bench::{banner, paper_workload, results_dir, BASE_CACHE};
use fbc_core::history::ValueFn;
use fbc_core::optfilebundle::{OfbConfig, OptFileBundle};
use fbc_sim::report::{f4, Table};
use fbc_sim::runner::{run_trace, RunConfig};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::{transform, Popularity, Trace, Workload};

fn main() {
    banner("Ablation — value function v(r) on a phase-changing workload");

    // Two phases over the same catalog: the request pools differ, so phase 2
    // invalidates phase 1's learned popularity. Phase 2 reuses phase 1's
    // catalog and draws its jobs from a freshly seeded pool over it.
    let base = paper_workload(Popularity::zipf(), 0.01, 20_001);
    let phase1 = Workload::generate(base);
    let pool2 = fbc_workload::generate_request_pool(
        &phase1.catalog,
        &fbc_workload::RequestPoolConfig {
            num_requests: base.pool_requests,
            files_per_request: base.files_per_request,
            max_bundle_bytes: base.cache_size,
            seed: 0x9B52,
        },
    );
    let sampler = fbc_workload::PopularitySampler::new(Popularity::zipf(), pool2.len());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let jobs2: Vec<_> = (0..phase1.jobs.len())
        .map(|_| pool2[sampler.sample(&mut rng)].clone())
        .collect();

    let t1 = Trace::new(phase1.catalog.clone(), phase1.jobs.clone());
    let t2 = Trace::new(phase1.catalog.clone(), jobs2);
    let trace = transform::concat(&t1, &t2);

    let cases = [
        ("count (paper)", ValueFn::Count),
        ("decay hl=2000", ValueFn::Decay { half_life: 2000.0 }),
        ("decay hl=500", ValueFn::Decay { half_life: 500.0 }),
        ("decay hl=100", ValueFn::Decay { half_life: 100.0 }),
    ];
    let results = parallel_sweep(&cases, default_threads(), |&(_, value_fn)| {
        let mut policy = OptFileBundle::with_config(OfbConfig {
            value_fn,
            ..OfbConfig::default()
        });
        // Measure the second phase only: warm up through phase 1.
        run_trace(
            &mut policy,
            &trace,
            &RunConfig::with_warmup(BASE_CACHE, t1.len() as u64),
        )
    });

    let mut table = Table::new(["value function", "phase-2 bmr", "phase-2 hit ratio"]);
    for ((name, _), m) in cases.iter().zip(&results) {
        table.add_row([
            name.to_string(),
            f4(m.byte_miss_ratio()),
            f4(m.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: after the phase change, counted values keep voting for the old\n\
         pool's bundles; decayed values forget them at a rate set by the half-life\n\
         — too aggressive a decay (hl=100) starts to forget the *new* hot set too."
    );

    let out = results_dir().join("ablation_valuefn.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Empirical verification of **Theorem 4.1**: on random small FBC
//! instances, compares `OptCacheSelect` (and its partial-enumeration
//! variant) against the exact branch-and-bound optimum, and checks the
//! `½(1 − e^{−1/d})` / `(1 − e^{−1/d})` guarantees.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin bound_check
//! ```

use fbc_bench::{banner, results_dir};
use fbc_core::bounds::{check_enumerated_bound, check_greedy_bound};
use fbc_core::enumerate::opt_cache_select_enumerated;
use fbc_core::exact::solve_exact;
use fbc_core::instance::FbcInstance;
use fbc_core::select::{opt_cache_select, SelectOptions};
use fbc_sim::report::{f4, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut StdRng) -> FbcInstance {
    let m = rng.gen_range(4..=12);
    let sizes: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=30)).collect();
    let n = rng.gen_range(3..=14);
    let requests: Vec<(Vec<u32>, f64)> = (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=4.min(m));
            let files: Vec<u32> = (0..k).map(|_| rng.gen_range(0..m as u32)).collect();
            (files, rng.gen_range(1..=100) as f64)
        })
        .collect();
    let capacity = rng.gen_range(10..=120);
    FbcInstance::new(capacity, sizes, requests).expect("valid random instance")
}

fn main() {
    banner("Theorem 4.1 — empirical approximation-ratio check");
    let instances = if fbc_bench::quick_mode() { 300 } else { 2000 };
    let mut rng = StdRng::seed_from_u64(0x41_2004);

    let mut worst_greedy = f64::INFINITY;
    let mut worst_enum = f64::INFINITY;
    let mut sum_greedy = 0.0;
    let mut sum_enum = 0.0;
    let mut greedy_optimal = 0u64;
    let mut enum_optimal = 0u64;
    let mut violations = 0u64;
    let mut max_d = 0;

    for _ in 0..instances {
        let inst = random_instance(&mut rng);
        let exact = solve_exact(&inst);
        let greedy = opt_cache_select(&inst, &SelectOptions::default());
        let enumerated = opt_cache_select_enumerated(&inst, 2);
        max_d = max_d.max(inst.max_degree());

        let cg = check_greedy_bound(&inst, greedy.value, exact.value);
        let ce = check_enumerated_bound(&inst, enumerated.value, exact.value);
        if !cg.holds || !ce.holds {
            violations += 1;
        }
        worst_greedy = worst_greedy.min(cg.achieved_ratio);
        worst_enum = worst_enum.min(ce.achieved_ratio);
        sum_greedy += cg.achieved_ratio;
        sum_enum += ce.achieved_ratio;
        if cg.achieved_ratio >= 1.0 - 1e-9 {
            greedy_optimal += 1;
        }
        if ce.achieved_ratio >= 1.0 - 1e-9 {
            enum_optimal += 1;
        }
    }

    let mut table = Table::new([
        "algorithm",
        "worst ratio",
        "mean ratio",
        "optimal found",
        "theoretical bound (worst d)",
    ]);
    table.add_row([
        "OptCacheSelect (greedy)".to_string(),
        f4(worst_greedy),
        f4(sum_greedy / instances as f64),
        format!("{greedy_optimal}/{instances}"),
        f4(fbc_core::bounds::greedy_bound(max_d)),
    ]);
    table.add_row([
        "partial enumeration (k=2)".to_string(),
        f4(worst_enum),
        f4(sum_enum / instances as f64),
        format!("{enum_optimal}/{instances}"),
        f4(fbc_core::bounds::enumerated_bound(max_d)),
    ]);
    print!("{}", table.to_ascii());
    println!("\nGuarantee violations: {violations} (must be 0); max file degree seen: {max_d}.");
    assert_eq!(violations, 0, "Theorem 4.1 guarantee violated!");

    let out = results_dir().join("bound_check.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

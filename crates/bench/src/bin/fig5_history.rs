//! Reproduces **Figure 5**: effect of truncating the request-history length
//! on `OptFileBundle`'s byte miss ratio.
//!
//! The paper varied the history "from arbitrarily limiting the history to
//! the requests in the cache to a full history of all requests" and found
//! the effect negligible — justifying the cheap cache-supported truncation
//! used in all subsequent experiments.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin fig5_history
//! ```

use fbc_bench::{banner, paper_workload, results_dir, Experiment};
use fbc_core::optfilebundle::{HistoryMode, OfbConfig, OptFileBundle};
use fbc_sim::report::{f4, Table};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

fn mode_label(mode: HistoryMode) -> String {
    match mode {
        HistoryMode::CacheSupported => "cache-supported".into(),
        HistoryMode::Window(n) => format!("window({n})"),
        HistoryMode::Full => "full".into(),
    }
}

fn main() {
    banner("Figure 5 — effect of varying the history length");
    // Window sizes start at the cache's own request capacity (~50 average
    // requests) — the paper's truncation study ranges "from arbitrarily
    // limiting the history to the requests in the cache to a full history";
    // windows smaller than the cache capacity discard candidates the cache
    // could still support and are outside that range.
    let modes = [
        HistoryMode::CacheSupported,
        HistoryMode::Window(50),
        HistoryMode::Window(100),
        HistoryMode::Window(200),
        HistoryMode::Window(400),
        HistoryMode::Full,
    ];

    let exp_u = Experiment::generate(paper_workload(Popularity::Uniform, 0.01, 5_001));
    let exp_z = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 5_001));
    let cache_u = fbc_bench::BASE_CACHE;
    let cache_z = fbc_bench::BASE_CACHE;
    let run = |exp: &Experiment, cache: u64, mode: HistoryMode| {
        let policy = OptFileBundle::with_config(OfbConfig {
            history_mode: mode,
            ..OfbConfig::default()
        });
        exp.run(policy, cache).byte_miss_ratio()
    };
    let uniform = parallel_sweep(&modes, default_threads(), |&m| run(&exp_u, cache_u, m));
    let zipf = parallel_sweep(&modes, default_threads(), |&m| run(&exp_z, cache_z, m));

    let mut table = Table::new(["history", "bmr(uniform)", "bmr(zipf)"]);
    for ((mode, u), z) in modes.iter().zip(&uniform).zip(&zipf) {
        table.add_row([mode_label(*mode), f4(*u), f4(*z)]);
    }
    print!("{}", table.to_ascii());

    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    println!(
        "\nPaper check (truncation effects should be negligible): \
         bmr spread uniform = {}, zipf = {}",
        f4(spread(&uniform)),
        f4(spread(&zipf))
    );

    let out = results_dir().join("fig5_history.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

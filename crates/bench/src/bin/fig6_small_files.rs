//! Reproduces **Figure 6(a)/(b)**: byte miss ratio of `OptFileBundle` vs.
//! `Landlord` for *small files* (max file size = 1 % of the cache), under
//! (a) uniform and (b) Zipf request popularity. The cache is fixed and the
//! request size is varied, implicitly varying the cache size measured in
//! requests (paper §5.2).
//!
//! Expected shape (paper §5.3): OptFileBundle's byte miss ratio is much
//! lower than Landlord's, the gap is largest for small files, and Zipf
//! miss ratios are lower than uniform ones.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin fig6_small_files
//! ```

use fbc_bench::{banner, policy_cache_sweep, results_dir, REQUEST_SIZE_SWEEP};
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::Popularity;

fn main() {
    banner("Figure 6 — byte miss ratio, small files (max file = 1% of cache)");
    let points = policy_cache_sweep(0.01, 6_001);

    let mut table = Table::new([
        "files/request",
        "requests/cache",
        "bmr OFB (uniform)",
        "bmr Landlord (uniform)",
        "bmr OFB (zipf)",
        "bmr Landlord (zipf)",
    ]);
    for &range in &REQUEST_SIZE_SWEEP {
        let get = |pop: Popularity, policy: &str| {
            points
                .iter()
                .find(|p| p.bundle_range == range && p.popularity == pop && p.policy == policy)
                .expect("point computed")
        };
        let rpc = get(Popularity::Uniform, "OptFileBundle").requests_per_cache;
        table.add_row([
            format!("{}-{}", range.0, range.1),
            f2(rpc),
            f4(get(Popularity::Uniform, "OptFileBundle")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::Uniform, "Landlord")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::zipf(), "OptFileBundle")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::zipf(), "Landlord")
                .metrics
                .byte_miss_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nPaper checks: OFB <= Landlord at every point; zipf below uniform for each\n\
         policy; miss ratio rises as requests grow (fewer fit in the cache)."
    );

    let out = results_dir().join("fig6_small_files.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Reproduces **Figure 7**: byte miss ratio of `OptFileBundle` vs.
//! `Landlord` for *large files* (max file size = 10 % of the cache), under
//! uniform and Zipf request popularity. The cache is fixed and the request
//! size varied, as in Fig. 6.
//!
//! Expected shape (paper §5.3): OptFileBundle still wins, but less markedly
//! than with small files — a 10 GiB cache holds only a handful of
//! large-file requests, so there is little room for combination-keeping.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin fig7_large_files
//! ```

use fbc_bench::{banner, policy_cache_sweep, results_dir, REQUEST_SIZE_SWEEP};
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::Popularity;

fn main() {
    banner("Figure 7 — byte miss ratio, large files (max file = 10% of cache)");
    let points = policy_cache_sweep(0.10, 7_001);

    let mut table = Table::new([
        "files/request",
        "requests/cache",
        "bmr OFB (uniform)",
        "bmr Landlord (uniform)",
        "bmr OFB (zipf)",
        "bmr Landlord (zipf)",
    ]);
    for &range in &REQUEST_SIZE_SWEEP {
        let get = |pop: Popularity, policy: &str| {
            points
                .iter()
                .find(|p| p.bundle_range == range && p.popularity == pop && p.policy == policy)
                .expect("point computed")
        };
        let rpc = get(Popularity::Uniform, "OptFileBundle").requests_per_cache;
        table.add_row([
            format!("{}-{}", range.0, range.1),
            f2(rpc),
            f4(get(Popularity::Uniform, "OptFileBundle")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::Uniform, "Landlord")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::zipf(), "OptFileBundle")
                .metrics
                .byte_miss_ratio()),
            f4(get(Popularity::zipf(), "Landlord")
                .metrics
                .byte_miss_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nPaper checks: OFB <= Landlord; note requests/cache is an order of magnitude\n\
         smaller than Fig. 6's, and the OFB advantage narrows accordingly."
    );

    let out = results_dir().join("fig7_large_files.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

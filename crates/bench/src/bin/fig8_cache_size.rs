//! Reproduces **Figure 8**: effect of varying the request size — and hence,
//! implicitly, the cache size in requests — on the average volume of data
//! moved into the cache per request.
//!
//! Expected shape (paper §5.3): "As the cache is able to serve more
//! requests the amount of data moved into the cache for each request is
//! smaller. This difference … between OptFileBundle … and Landlord is even
//! more pronounced for Zipf request distribution."
//!
//! ```text
//! cargo run --release -p fbc-bench --bin fig8_cache_size
//! ```

use fbc_bench::{banner, policy_cache_sweep, results_dir, REQUEST_SIZE_SWEEP};
use fbc_core::types::{format_bytes, MIB};
use fbc_sim::report::{f2, Table};
use fbc_workload::Popularity;

fn main() {
    banner("Figure 8 — average data moved per request vs cache size (in requests)");
    let points = policy_cache_sweep(0.01, 8_001);

    let mut table = Table::new([
        "files/request",
        "requests/cache",
        "MiB/req OFB (uniform)",
        "MiB/req Landlord (uniform)",
        "MiB/req OFB (zipf)",
        "MiB/req Landlord (zipf)",
    ]);
    for &range in &REQUEST_SIZE_SWEEP {
        let get = |pop: Popularity, policy: &str| {
            points
                .iter()
                .find(|p| p.bundle_range == range && p.popularity == pop && p.policy == policy)
                .expect("point computed")
        };
        let rpc = get(Popularity::Uniform, "OptFileBundle").requests_per_cache;
        let mib = |pop, policy| get(pop, policy).metrics.bytes_moved_per_request() / MIB as f64;
        table.add_row([
            format!("{}-{}", range.0, range.1),
            f2(rpc),
            f2(mib(Popularity::Uniform, "OptFileBundle")),
            f2(mib(Popularity::Uniform, "Landlord")),
            f2(mib(Popularity::zipf(), "OptFileBundle")),
            f2(mib(Popularity::zipf(), "Landlord")),
        ]);
    }
    print!("{}", table.to_ascii());

    if let Some(p) = points.iter().find(|p| {
        p.bundle_range == (4, 8)
            && p.popularity == Popularity::zipf()
            && p.policy == "OptFileBundle"
    }) {
        println!(
            "\nAt 4-8 files/request (zipf), OptFileBundle moved {} total over {} jobs.",
            format_bytes(p.metrics.fetched_bytes),
            p.metrics.jobs
        );
    }
    println!(
        "Paper checks: per-request volume shrinks as more requests fit the cache;\n\
         OFB below Landlord, with the largest relative gap under Zipf popularity."
    );

    let out = results_dir().join("fig8_cache_size.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Reproduces **Figure 9(a)/(b)**: effect of the admission-queue length on
//! the byte miss ratio, under (a) uniform and (b) Zipf popularity.
//!
//! The paper aggregates incoming jobs in a queue of length q ∈ {1, 5, …,
//! 100}, repeatedly serving the highest-relative-value request until the
//! queue drains. Expected shape (§5.3): queueing is minor for uniform
//! popularity but significant for Zipf, where q = 100 gives a much lower
//! byte miss ratio.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin fig9_queue_length
//! ```

use fbc_bench::{banner, paper_workload, results_dir, Experiment};
use fbc_core::optfilebundle::OptFileBundle;
use fbc_sim::queue::{run_queued, QueueConfig};
use fbc_sim::report::{f4, Table};
use fbc_sim::runner::RunConfig;
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

const QUEUE_LENGTHS: [usize; 5] = [1, 5, 10, 50, 100];

fn main() {
    banner("Figure 9 — effect of varying the queue length (q1..q100)");

    let exp_u = Experiment::generate(paper_workload(Popularity::Uniform, 0.01, 9_001));
    let exp_z = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 9_001));
    // A quarter-size cache keeps replacement pressure high so scheduling
    // effects are visible.
    let cache_u = fbc_bench::BASE_CACHE / 4;
    let cache_z = fbc_bench::BASE_CACHE / 4;

    let run = |exp: &Experiment, cache: u64, q: usize| {
        let mut policy = OptFileBundle::new();
        run_queued(
            &mut policy,
            &exp.trace,
            &RunConfig::new(cache),
            &QueueConfig::hrv(q),
        )
        .byte_miss_ratio()
    };
    let uniform = parallel_sweep(&QUEUE_LENGTHS, default_threads(), |&q| {
        run(&exp_u, cache_u, q)
    });
    let zipf = parallel_sweep(&QUEUE_LENGTHS, default_threads(), |&q| {
        run(&exp_z, cache_z, q)
    });

    let mut table = Table::new(["queue length", "bmr (uniform)", "bmr (zipf)"]);
    for ((q, u), z) in QUEUE_LENGTHS.iter().zip(&uniform).zip(&zipf) {
        table.add_row([format!("q{q}"), f4(*u), f4(*z)]);
    }
    print!("{}", table.to_ascii());

    let gain = |v: &[f64]| (v[0] - v[v.len() - 1]) / v[0].max(1e-12);
    println!(
        "\nPaper checks: relative bmr improvement q1 -> q100: uniform {:.1}% (minor), \
         zipf {:.1}% (significant).",
        100.0 * gain(&uniform),
        100.0 * gain(&zipf)
    );

    let out = results_dir().join("fig9_queue_length.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

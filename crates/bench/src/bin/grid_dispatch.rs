//! Extension experiment: multi-SRM cluster dispatch (paper §2 notes SRMs
//! may run on "a cluster of machines" with distributed disk caches).
//! Compares round-robin, least-loaded and bundle-affinity routing of jobs
//! to 4 SRM nodes sharing one mass storage system.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin grid_dispatch
//! ```

use fbc_bench::{banner, paper_workload, results_dir};
use fbc_core::policy::CachePolicy;
use fbc_core::types::GIB;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::multi::{run_multi_grid, Dispatch, MultiGridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::{Popularity, Workload};

const NODES: usize = 4;

fn main() {
    banner("Multi-SRM dispatch — routing jobs across a 4-node SRM cluster");
    let mut wl_cfg = paper_workload(Popularity::zipf(), 0.01, 16_001);
    wl_cfg.jobs = if fbc_bench::quick_mode() { 800 } else { 6_000 };
    let workload = Workload::generate(wl_cfg);
    let arrivals = schedule_arrivals(
        &workload.jobs,
        ArrivalProcess::Poisson {
            rate: 4.0,
            seed: 61,
        },
    );
    // Each node gets a quarter of the single-node cache budget.
    let config = |dispatch: Dispatch| MultiGridConfig {
        srm: SrmConfig {
            cache_size: (10 * GIB) / NODES as u64,
            max_concurrent_jobs: 2,
            ..SrmConfig::default()
        },
        nodes: NODES,
        mss: Default::default(),
        link: Default::default(),
        dispatch,
    };

    let mut table = Table::new([
        "dispatch",
        "byte miss ratio",
        "request-hit ratio",
        "mean resp (s)",
        "throughput (jobs/s)",
        "routing imbalance",
    ]);
    for dispatch in [
        Dispatch::RoundRobin,
        Dispatch::LeastLoaded,
        Dispatch::BundleAffinity,
    ] {
        let mut policies: Vec<Box<dyn CachePolicy>> = (0..NODES)
            .map(|_| fbc_baselines::PolicyKind::OptFileBundle.build())
            .collect();
        let stats = run_multi_grid(
            &mut policies,
            &workload.catalog,
            &arrivals,
            &config(dispatch),
        );
        table.add_row([
            dispatch.label().to_string(),
            f4(stats.overall.cache.byte_miss_ratio()),
            f4(stats.overall.cache.request_hit_ratio()),
            f2(stats.overall.mean_response().as_secs_f64()),
            f2(stats.overall.throughput()),
            f2(stats.routing_imbalance()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: bundle-affinity routing sends every recurrence of a request to\n\
         the same node's cache, preserving the locality bundle-aware caching\n\
         feeds on — at the price of some load imbalance."
    );

    let out = results_dir().join("grid_dispatch.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! End-to-end data-grid experiment (paper §2): jobs arrive at an SRM by a
//! Poisson process, misses are read from tape-backed mass storage over a
//! WAN link, and the policies are compared on what the user ultimately
//! sees — job response time and throughput — in addition to the byte miss
//! ratio.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin grid_endtoend
//! ```

use fbc_baselines::{Landlord, Lru, PolicyKind};
use fbc_bench::{banner, paper_workload, results_dir};
use fbc_core::policy::CachePolicy;
use fbc_core::types::GIB;
use fbc_grid::{run_scenario, ArrivalProcess, GridConfig, ScenarioConfig, SimDuration, SrmConfig};
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::Popularity;

fn scenario(popularity: Popularity) -> ScenarioConfig {
    let mut workload = paper_workload(popularity, 0.01, 13_001);
    workload.jobs = if fbc_bench::quick_mode() { 400 } else { 3_000 };
    ScenarioConfig {
        workload,
        grid: GridConfig {
            srm: SrmConfig {
                // 4 average requests' worth of cache: replacement pressure on.
                cache_size: 2 * GIB,
                max_concurrent_jobs: 4,
                ..SrmConfig::default()
            },
            ..GridConfig::default()
        },
        arrivals: ArrivalProcess::Poisson {
            rate: 2.0,
            seed: 99,
        },
    }
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn CachePolicy>>;

fn main() {
    banner("Grid end-to-end — response time & throughput under an SRM");
    let policies: Vec<(&str, PolicyFactory)> = vec![
        (
            "OptFileBundle",
            Box::new(|| PolicyKind::OptFileBundle.build()),
        ),
        ("Landlord", Box::new(|| Box::new(Landlord::new()))),
        ("LRU", Box::new(|| Box::new(Lru::new()))),
    ];

    for popularity in [Popularity::Uniform, Popularity::zipf()] {
        println!("--- popularity: {} ---", popularity.label());
        let cfg = scenario(popularity);
        let mut table = Table::new([
            "policy",
            "completed",
            "byte miss ratio",
            "mean resp (s)",
            "p95 resp (s)",
            "throughput (jobs/s)",
        ]);
        for (name, make) in &policies {
            let mut policy = make();
            let stats = run_scenario(policy.as_mut(), &cfg);
            let p95: SimDuration = stats.percentile_response(0.95);
            table.add_row([
                name.to_string(),
                stats.completed.to_string(),
                f4(stats.cache.byte_miss_ratio()),
                f2(stats.mean_response().as_secs_f64()),
                f2(p95.as_secs_f64()),
                f2(stats.throughput()),
            ]);
        }
        print!("{}", table.to_ascii());
        let out = results_dir().join(format!("grid_endtoend_{}.csv", popularity.label()));
        table.save_csv(&out).expect("write CSV");
        println!("CSV written to {}\n", out.display());
    }
    println!(
        "Reading: a lower byte miss ratio translates directly into fewer tape mounts\n\
         and WAN transfers, hence lower response times and higher throughput."
    );
}

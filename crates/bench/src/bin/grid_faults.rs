//! Robustness sweep: the end-to-end grid experiment re-run under each
//! fault preset plus an escalating transient-error rate, reporting the
//! availability the SRM's retry/backoff layer preserves next to the byte
//! miss ratio. The zero-fault row doubles as a live check of the
//! determinism contract: it must match a run without any injector.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin grid_faults
//! ```

use fbc_baselines::{Landlord, PolicyKind};
use fbc_bench::{banner, paper_workload, results_dir};
use fbc_core::policy::CachePolicy;
use fbc_core::types::GIB;
use fbc_grid::{
    run_scenario, run_scenario_with_faults, ArrivalProcess, FaultPlan, GridConfig, RetryPolicy,
    ScenarioConfig, SimDuration, SrmConfig,
};
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::Popularity;

fn scenario() -> ScenarioConfig {
    let mut workload = paper_workload(Popularity::zipf(), 0.01, 13_001);
    workload.jobs = if fbc_bench::quick_mode() { 300 } else { 2_000 };
    ScenarioConfig {
        workload,
        grid: GridConfig {
            srm: SrmConfig {
                cache_size: 2 * GIB,
                max_concurrent_jobs: 4,
                ..SrmConfig::default()
            },
            retry: RetryPolicy {
                max_retries: 4,
                fetch_timeout: Some(SimDuration::from_secs(600)),
                ..RetryPolicy::default()
            },
            ..GridConfig::default()
        },
        arrivals: ArrivalProcess::Poisson {
            rate: 2.0,
            seed: 99,
        },
    }
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn CachePolicy>>;

fn main() {
    banner("Grid robustness — availability under injected faults");
    let policies: Vec<(&str, PolicyFactory)> = vec![
        (
            "OptFileBundle",
            Box::new(|| PolicyKind::OptFileBundle.build()),
        ),
        ("Landlord", Box::new(|| Box::new(Landlord::new()))),
    ];
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "tape-outage",
            FaultPlan::preset("tape-outage").expect("preset"),
        ),
        ("flaky-wan", FaultPlan::preset("flaky-wan").expect("preset")),
        (
            "transient-10%",
            FaultPlan::parse("transient=0.10;seed=7").expect("spec"),
        ),
        ("blackout", FaultPlan::preset("blackout").expect("preset")),
    ];

    let cfg = scenario();
    let mut table = Table::new([
        "policy",
        "faults",
        "completed",
        "failed",
        "availability",
        "byte miss ratio",
        "retries",
        "mean resp (s)",
    ]);
    for (name, make) in &policies {
        for (plan_name, plan) in &plans {
            let mut policy = make();
            let stats = run_scenario_with_faults(policy.as_mut(), &cfg, Some(plan));
            if plan.is_zero_fault() {
                let mut check = make();
                let plain = run_scenario(check.as_mut(), &cfg);
                assert_eq!(
                    plain, stats,
                    "zero-fault plan diverged from the fault-free run"
                );
            }
            table.add_row([
                name.to_string(),
                plan_name.to_string(),
                stats.completed.to_string(),
                stats.failed.to_string(),
                f4(stats.availability()),
                f4(stats.cache.byte_miss_ratio()),
                stats.fetch_retries.to_string(),
                f2(stats.mean_response().as_secs_f64()),
            ]);
        }
    }
    print!("{}", table.to_ascii());
    let out = results_dir().join("grid_faults.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}\n", out.display());
    println!(
        "Reading: retries with exponential backoff ride out bounded outages\n\
         (availability stays 1.0 at the cost of response time); only the\n\
         permanent blackout exhausts retry budgets and fails jobs."
    );
}

//! Extension experiment: mass-storage replication (paper §1 lists
//! "strategic data replication" among data-grid techniques). Sweeps the
//! replica count per file across a 4-site storage fabric and measures the
//! effect on job response time — byte traffic is unchanged, only drive
//! contention and thus timing improves.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin grid_replication
//! ```

use fbc_bench::{banner, paper_workload, results_dir};
use fbc_core::optfilebundle::OptFileBundle;
use fbc_core::types::GIB;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::replica::{run_grid_replicated, Placement, ReplicaGridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::{Popularity, Workload};

const SITES: usize = 4;

fn main() {
    banner("Storage replication — replicas per file across a 4-site MSS fabric");
    let mut wl_cfg = paper_workload(Popularity::zipf(), 0.01, 17_001);
    wl_cfg.jobs = if fbc_bench::quick_mode() { 600 } else { 4_000 };
    let workload = Workload::generate(wl_cfg);
    let files = workload.catalog.len();
    let arrivals = schedule_arrivals(
        &workload.jobs,
        ArrivalProcess::Poisson {
            rate: 3.0,
            seed: 71,
        },
    );
    let config = |placement: Placement| ReplicaGridConfig {
        srm: SrmConfig {
            cache_size: 2 * GIB,
            max_concurrent_jobs: 4,
            ..SrmConfig::default()
        },
        mss: Default::default(),
        link: Default::default(),
        placement,
    };

    let mut table = Table::new([
        "replicas/file",
        "byte miss ratio",
        "mean resp (s)",
        "p95 resp (s)",
        "throughput (jobs/s)",
    ]);
    for copies in 1..=SITES {
        let placement = if copies == SITES {
            Placement::full(files, SITES)
        } else {
            Placement::random(files, SITES, copies, 0x4E9)
        };
        let mut policy = OptFileBundle::new();
        let stats = run_grid_replicated(
            &mut policy,
            &workload.catalog,
            &arrivals,
            &config(placement),
        );
        table.add_row([
            copies.to_string(),
            f4(stats.cache.byte_miss_ratio()),
            f2(stats.mean_response().as_secs_f64()),
            f2(stats.percentile_response(0.95).as_secs_f64()),
            f2(stats.throughput()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: replication leaves the byte miss ratio essentially unchanged\n\
         (the cache decides what moves) but spreads tape-drive contention across\n\
         sites, cutting response times — diminishing returns past 2-3 copies."
    );

    let out = results_dir().join("grid_replication.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! Extension experiment (paper §6 future work): the **hybrid execution
//! model** — a mix of jobs executing *One File at a Time* with jobs
//! executing *File-Bundle at a Time* — swept over the single-file fraction.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin hybrid_model
//! ```

use fbc_baselines::Landlord;
use fbc_bench::{banner, paper_workload, results_dir, Experiment, BASE_CACHE};
use fbc_core::optfilebundle::OptFileBundle;
use fbc_core::policy::CachePolicy;
use fbc_sim::hybrid::run_hybrid;
use fbc_sim::report::{f2, f4, Table};
use fbc_sim::runner::RunConfig;
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn main() {
    banner("Hybrid execution model — one-file-at-a-time job fraction sweep");
    let exp = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 14_001));
    let cfg = RunConfig::new(BASE_CACHE);

    let cells: Vec<(usize, f64)> = (0..2)
        .flat_map(|p| FRACTIONS.iter().map(move |&f| (p, f)))
        .collect();
    let results = parallel_sweep(&cells, default_threads(), |&(p, frac)| {
        let mut policy: Box<dyn CachePolicy> = if p == 0 {
            Box::new(OptFileBundle::new())
        } else {
            Box::new(Landlord::new())
        };
        run_hybrid(policy.as_mut(), &exp.trace, &cfg, frac, 0xF8AC)
    });

    let mut table = Table::new([
        "single-file fraction",
        "bmr OFB",
        "job-hit OFB",
        "bmr Landlord",
        "job-hit Landlord",
    ]);
    for (i, &frac) in FRACTIONS.iter().enumerate() {
        let ofb = &results[i];
        let ll = &results[FRACTIONS.len() + i];
        table.add_row([
            f2(frac),
            f4(ofb.overall.byte_miss_ratio()),
            f4(ofb.overall.request_hit_ratio()),
            f4(ll.overall.byte_miss_ratio()),
            f4(ll.overall.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: as jobs shift to one-file-at-a-time the *job-hit* ratio falls\n\
         (co-residency of a whole job is no longer guaranteed), while the byte\n\
         miss ratio stays flat — OptFileBundle degenerates gracefully into a\n\
         frequency/size-aware single-file policy and keeps its lead over\n\
         Landlord's recency-based credits."
    );

    let out = results_dir().join("hybrid_model.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

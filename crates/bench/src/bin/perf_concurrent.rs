//! Sharded-SRM throughput benchmark: decision-service wall-clock
//! throughput (decided jobs/sec) of the concurrent front-end
//! (`fbc_grid::concurrent`) across shard counts, against the
//! single-threaded engine.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin perf_concurrent            # full run
//! cargo run --release -p fbc-bench --bin perf_concurrent -- --smoke # CI gate
//! ```
//!
//! The workload is decision-dominated: the catalog is only modestly
//! larger than the cache, so once the cache fills, most of the distinct
//! bundles in the request history stay cache-supported — and with the
//! default unbounded `max_candidates`, every replacement decision ranks
//! a candidate set that keeps growing with the supported history. That
//! per-decision cost dwarfs the event-loop overhead. Sharding splits the
//! capacity and the request stream `N` ways, so every shard decides over
//! a supported history `~N×` smaller (shrunk twice: fewer distinct
//! bundles per shard *and* a smaller resident fraction backing them) —
//! that state shrinkage is the single-core speedup measured here, and it
//! is why the gate holds even on one hardware thread. Worker-thread
//! parallelism stacks *on top* of it on multi-core hosts (the suite pins
//! result-equality for any worker count, so using them is free).
//!
//! Sharding is a quality trade, not a free lunch: each shard caches out
//! of `capacity/N`, so the table also reports the byte miss ratio per
//! shard count to keep the cost visible.
//!
//! The full run writes `results/perf_concurrent.csv` and merges a
//! `"perf_concurrent"` section into `BENCH_core.json`. The `--smoke`
//! mode writes nothing; it runs a reduced size and fails (non-zero exit)
//! when either
//!
//! * 4-shard throughput is below 1.5× single-shard (machine-independent
//!   ratio), or
//! * the 1-shard run diverges from `run_grid` (bit-identical `GridStats`
//!   and `GridReport` required), or
//! * a committed `BENCH_core.json` has a `headline_jobs_per_sec` and the
//!   measured headline regressed more than 2× against it.

use fbc_bench::{banner, extract_number, quick_mode, results_dir, upsert_section};
use fbc_core::bundle::Bundle;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::SendPolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess, JobArrival};
use fbc_grid::concurrent::{run_concurrent_grid, ConcurrentConfig};
use fbc_grid::engine::{run_grid, GridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_sim::report::Table;
use std::time::Instant;

/// Deterministic xorshift64 generator (no external RNG needed here).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const FILE_SIZE: u64 = 1_000_000;

/// A decision-heavy stream: `jobs` bundles of 3 files drawn at random
/// from a `files`-file catalog, batch-submitted so the SRM queue is
/// never idle. Random triples over a large population are almost all
/// distinct, which keeps the policy's request history growing and the
/// candidate selection busy.
fn workload(files: usize, jobs: usize, seed: u64) -> (FileCatalog, Vec<JobArrival>) {
    let catalog = FileCatalog::from_sizes(vec![FILE_SIZE; files]);
    let mut state = seed;
    let bundles: Vec<Bundle> = (0..jobs)
        .map(|_| {
            Bundle::from_raw([
                (xorshift(&mut state) % files as u64) as u32,
                (xorshift(&mut state) % files as u64) as u32,
                (xorshift(&mut state) % files as u64) as u32,
            ])
        })
        .collect();
    (catalog, schedule_arrivals(&bundles, ArrivalProcess::Batch))
}

fn grid_config(resident_files: usize) -> GridConfig {
    GridConfig {
        srm: SrmConfig {
            cache_size: resident_files as u64 * FILE_SIZE,
            max_concurrent_jobs: 4,
            ..SrmConfig::default()
        },
        ..GridConfig::default()
    }
}

fn factory() -> SendPolicy {
    Box::new(fbc_core::optfilebundle::OptFileBundle::new())
}

struct Row {
    shards: usize,
    jobs_per_sec: f64,
    speedup: f64,
    byte_miss: f64,
    elapsed_ns: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "perf_concurrent — CI smoke (regression gate)"
    } else {
        "perf_concurrent — sharded SRM decision throughput"
    });

    let reduced = smoke || quick_mode();
    let (files, jobs, resident) = if reduced {
        (6_000, 6_000, 4_000)
    } else {
        (24_000, 12_000, 16_000)
    };
    let iters = 1; // decision-state growth makes reruns near-identical
    let shard_counts: &[usize] = if reduced { &[1, 4] } else { &[1, 2, 4, 8] };

    let (catalog, arrivals) = workload(files, jobs, 0xC0 ^ jobs as u64);
    let config = grid_config(resident);

    // Divergence gate: the 1-shard concurrent service must be
    // bit-identical to the single-threaded engine (checked on a prefix of
    // the stream — the two extra single-shard replays are the expensive
    // part, and equivalence is about the code path, not the size).
    {
        let equiv = &arrivals[..jobs.min(2_000)];
        let mut policy = factory();
        let seq = run_grid(policy.as_mut(), &catalog, equiv, &config);
        let con = run_concurrent_grid(
            &factory,
            &catalog,
            equiv,
            &ConcurrentConfig::sharded(config, 1),
            None,
        );
        assert_eq!(
            seq, con.overall,
            "DIVERGENCE: 1-shard concurrent GridStats differ from run_grid"
        );
        assert_eq!(
            seq.report("OptFileBundle").as_str(),
            con.overall.report("OptFileBundle").as_str(),
            "DIVERGENCE: 1-shard concurrent GridReport differs from run_grid"
        );
        println!("equivalence: 1-shard run is bit-identical to run_grid\n");
    }

    let mut rows: Vec<Row> = Vec::new();
    for &shards in shard_counts {
        let cfg = ConcurrentConfig::sharded(config, shards);
        let mut best_ns = u64::MAX;
        let mut byte_miss = 0.0;
        let mut decided = 0u64;
        for _ in 0..iters {
            let start = Instant::now();
            let stats = run_concurrent_grid(&factory, &catalog, &arrivals, &cfg, None);
            let ns = (start.elapsed().as_nanos() as u64).max(1);
            decided = stats.overall.completed + stats.overall.rejected + stats.overall.failed;
            assert_eq!(decided, jobs as u64, "every job must be decided");
            byte_miss = stats.overall.cache.byte_miss_ratio();
            best_ns = best_ns.min(ns);
        }
        let jobs_per_sec = decided as f64 * 1e9 / best_ns as f64;
        let base = rows.first().map_or(jobs_per_sec, |r: &Row| r.jobs_per_sec);
        rows.push(Row {
            shards,
            jobs_per_sec,
            speedup: jobs_per_sec / base,
            byte_miss,
            elapsed_ns: best_ns,
        });
    }

    // `miss Δ` is the byte-miss-ratio increase over the 1-shard run: the
    // quality price of splitting the cache `N` ways. A speedup from this
    // table quoted without its miss Δ is comparing unequal caches.
    let base_miss = rows.first().map_or(0.0, |r| r.byte_miss);
    let mut table = Table::new([
        "shards",
        "jobs/s",
        "speedup",
        "byte miss",
        "miss Δ",
        "wall ms",
    ]);
    for r in &rows {
        table.add_row([
            r.shards.to_string(),
            format!("{:.0}", r.jobs_per_sec),
            format!("{:.2}x", r.speedup),
            format!("{:.4}", r.byte_miss),
            format!("{:+.4}", r.byte_miss - base_miss),
            format!("{:.0}", r.elapsed_ns as f64 / 1e6),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "
not capacity-fair: each shard caches out of capacity/N, so rows differ in
         per-shard capacity as well as shard count — the miss Δ column is the hit-rate
         cost of that split and must be quoted alongside any speedup. A capacity-fair
         N-shard comparison would hold capacity/N fixed (N times the total bytes)."
    );

    let at = |shards: usize| rows.iter().find(|r| r.shards == shards);
    let headline_jps = at(4).map_or(0.0, |r| r.jobs_per_sec);
    let headline_speedup = at(4).map_or(0.0, |r| r.speedup);
    println!(
        "\nheadline: 4-shard {headline_jps:.0} jobs/s — {headline_speedup:.2}x single-shard \
         (single-core shard-state shrinkage; worker threads add on multi-core)"
    );

    if smoke {
        // Gate: machine-independent 4-shard vs 1-shard ratio.
        assert!(
            headline_speedup >= 1.5,
            "REGRESSION: 4-shard decision throughput only {headline_speedup:.2}x \
             single-shard (acceptance floor: 1.5x)"
        );
        // >2x throughput regression against the committed baseline.
        if let Ok(json) = std::fs::read_to_string("BENCH_core.json") {
            if let Some(committed) = extract_number(&json, "\"headline_jobs_per_sec\":") {
                assert!(
                    headline_jps >= committed / 2.0,
                    "REGRESSION: measured {headline_jps:.0} jobs/s is more than 2x below \
                     the committed baseline {committed:.0}"
                );
                println!(
                    "smoke: headline {headline_jps:.0} jobs/s vs committed {committed:.0} \
                     jobs/s — within 2x"
                );
            }
        }
        println!("smoke: OK (4-shard speedup {headline_speedup:.2}x >= 1.5x)");
        return;
    }

    let out = results_dir().join("perf_concurrent.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());

    // Merge our section into the shared summary (hand-rolled JSON; the
    // vendored serde shim has no serializer).
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "    \"headline_jobs_per_sec\": {headline_jps:.1},\n    \
         \"headline_shard_speedup\": {headline_speedup:.2},\n    \
         \"files\": {files},\n    \"jobs\": {jobs},\n    \
         \"resident_files\": {resident},\n    \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"shards\": {}, \"jobs_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"byte_miss_ratio\": {:.4}, \"byte_miss_delta_vs_single\": {:.4}}}{}\n",
            r.shards,
            r.jobs_per_sec,
            r.speedup,
            r.byte_miss,
            r.byte_miss - base_miss,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  }");
    let old = std::fs::read_to_string("BENCH_core.json").unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = upsert_section(&old, "perf_concurrent", &body);
    std::fs::write("BENCH_core.json", &merged).expect("write BENCH_core.json");
    println!("JSON summary merged into BENCH_core.json");
}

//! Decision-path benchmark, two layers:
//!
//! 1. **Kernel sweep** — throughput (decisions/sec) and p50/p99 latency of
//!    `OptCacheSelect` across history sizes `n` and file-degree regimes
//!    `d`, for all three greedy variants plus the retained reference
//!    shared-credit loop (`reference-kernels` feature).
//! 2. **Full decision path** — end-to-end `OptFileBundle::handle`
//!    throughput at steady state (history of `n = 2000` requests, `d ≈ 8`,
//!    near-every job forcing a replacement decision), comparing the
//!    persistent incremental candidate maintenance (`with_config`) against
//!    the per-decision rebuild reference (`with_config_reference`). Both
//!    engines replay the identical trace and their outcomes are asserted
//!    equal, so every benchmark run is also a differential test.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin perf_decision            # full run
//! cargo run --release -p fbc-bench --bin perf_decision -- --smoke # CI gate
//! ```
//!
//! The full run writes `results/perf_decision.csv` and a machine-readable
//! summary `BENCH_core.json` in the current directory (repo root). The
//! `--smoke` mode writes nothing; it runs a reduced measurement and fails
//! (non-zero exit) when either
//!
//! * the incremental decision path is not at least 2× the rebuild
//!   reference's decisions/sec on the steady-state cache-supported
//!   workload (machine-independent ratio), or
//! * the incremental kernel is not at least 2× the reference loop's
//!   decisions/sec at `n = 2000, d ≈ 8` (machine-independent ratio), or
//! * the full-history decision path is not at least 2× the rebuild
//!   reference — the committed pre-residency baseline sat at 1.12×, so
//!   this floor only passes with the Full/Window fast path live
//!   (machine-independent ratio), or
//! * `SharedCredit` falls below half of `PaperLiteral`'s decisions/sec at
//!   `n = 2000, d ≈ 8` (the "within 2×" acceptance ratio), or
//! * a committed `BENCH_core.json` exists and the measured headline
//!   throughput regressed more than 2× against it, or
//! * the instrumented-but-disabled observability path (`fbc-obs` handle
//!   attached, sink off) exceeds 1.05× the never-attached decision path.

use fbc_bench::{
    banner, cache_membership_kernel, extract_number, extract_section, quick_mode, results_dir,
    upsert_section,
};
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::instance::FbcInstance;
use fbc_core::optfilebundle::{HistoryMode, OfbConfig, OptFileBundle};
use fbc_core::policy::CachePolicy;
use fbc_core::select::{
    best_single, greedy_shared_credit_reference, opt_cache_select_lazy_with_scratch,
    opt_cache_select_with_scratch, GreedyVariant, LazySelectScratch, SelectOptions, SelectScratch,
};
use fbc_obs::Obs;
use fbc_sim::report::Table;
use std::time::Instant;

/// Deterministic xorshift64 generator (no external RNG needed here).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Builds a synthetic selection instance with `n` requests of ~`b` files
/// each over `m = n·b/d` files, so the expected file degree is `d` — the
/// quantity the kernel's `O(b · d · log n)` per-iteration bound depends on.
fn instance(n: usize, b: usize, d: usize, seed: u64) -> FbcInstance {
    let mut state = seed;
    let m = ((n * b) / d).max(b + 1);
    let sizes: Vec<u64> = (0..m).map(|_| xorshift(&mut state) % 100 + 1).collect();
    let total: u64 = sizes.iter().sum();
    let requests: Vec<(Vec<u32>, f64)> = (0..n)
        .map(|_| {
            let k = b / 2 + (xorshift(&mut state) as usize) % b;
            let files: Vec<u32> = (0..k.max(1))
                .map(|_| (xorshift(&mut state) % m as u64) as u32)
                .collect();
            (files, (xorshift(&mut state) % 100 + 1) as f64)
        })
        .collect();
    // 25% of the population fits: enough pressure that the greedy loop runs
    // many selection iterations without degenerating to "take everything".
    FbcInstance::new(total / 4, sizes, requests).expect("valid synthetic instance")
}

/// Median of per-batch throughput ratios between two kernels, measured in
/// interleaved batches (A, B, A, B, ...). The gates compare *ratios*, and a
/// ratio assembled from two phase-separated absolute measurements inherits
/// the machine's frequency drift between the phases (easily ±15% here);
/// interleaving puts both sides of each ratio sample under the same drift,
/// and the median discards the batches an interrupt landed in. Returns
/// `time_b / time_a` — the throughput of `a` relative to `b`.
fn paired_throughput_ratio<A: FnMut(), B: FnMut()>(
    mut a: A,
    mut b: B,
    batches: usize,
    per_batch: usize,
) -> f64 {
    a();
    b();
    let mut ratios: Vec<f64> = (0..batches)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_batch {
                a();
            }
            let ta = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for _ in 0..per_batch {
                b();
            }
            let tb = t.elapsed().as_secs_f64();
            tb / ta
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Times `f` for `iters` iterations (after `warmup` unrecorded ones) and
/// returns per-iteration nanos.
fn time_ns<F: FnMut()>(mut f: F, warmup: usize, iters: usize) -> Vec<u64> {
    for _ in 0..warmup {
        f();
    }
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Measurement {
    n: usize,
    d: usize,
    variant: &'static str,
    iters: usize,
    decisions_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    mean_ns: f64,
}

/// Per-job nanos of `OptFileBundle::handle` over a fixed random-pair
/// trace, best-of-`repeats` with one untimed warmup run per mode.
///
/// `obs = None` leaves the policy untouched (the pre-attach default);
/// `Some(obs)` attaches the handle before the run. Attaching a
/// *disabled* handle exercises the exact instrumented-but-off path the
/// 1.05× overhead budget in the issue refers to. The cache holds the
/// whole population, so each handle call is dominated by admit
/// bookkeeping — the regime where a per-call branch is most visible.
fn obs_handle_ns_per_job(
    jobs: &[Bundle],
    catalog: &FileCatalog,
    capacity: u64,
    obs: Option<&Obs>,
    repeats: usize,
) -> f64 {
    let mut best = u64::MAX;
    for rep in 0..=repeats {
        if let Some(o) = obs {
            o.clear();
        }
        let mut policy = OptFileBundle::new();
        if let Some(o) = obs {
            policy.attach_obs(o.clone());
        }
        let mut cache = CacheState::new(capacity);
        let start = Instant::now();
        for b in jobs {
            std::hint::black_box(policy.handle(b, &mut cache, catalog));
        }
        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if rep > 0 {
            best = best.min(elapsed);
        }
    }
    best as f64 / jobs.len() as f64
}

/// Steady-state decision-path workload: a pool of `n` distinct bundles of
/// ~`b` files over `m = n·b/d` files (expected degree `d`), a catalog, a
/// job trace sampling the pool, and a cache capacity small enough that
/// almost every miss forces a replacement decision.
fn decision_workload(
    n: usize,
    b: usize,
    d: usize,
    cap_div: u64,
    jobs: usize,
    seed: u64,
) -> (FileCatalog, Vec<Bundle>, Vec<Bundle>, u64) {
    let mut state = seed;
    let m = ((n * b) / d).max(b + 1);
    let sizes: Vec<u64> = (0..m).map(|_| xorshift(&mut state) % 100 + 1).collect();
    let total: u64 = sizes.iter().sum();
    let pool: Vec<Bundle> = (0..n)
        .map(|_| {
            let k = b / 2 + (xorshift(&mut state) as usize) % b;
            Bundle::from_raw((0..k.max(1)).map(|_| (xorshift(&mut state) % m as u64) as u32))
        })
        .collect();
    let trace: Vec<Bundle> = (0..jobs)
        .map(|_| pool[(xorshift(&mut state) % n as u64) as usize].clone())
        .collect();
    // The cache holds only a sliver of the population (the data-grid
    // regime: long history, small working cache), so nearly every job
    // forces a replacement decision whose select step is cheap relative
    // to a full history scan. `cap_div` lets callers pin the *absolute*
    // cache size while growing the history, keeping the per-decision
    // select work constant as the scan the rebuild pays grows with `n`.
    (FileCatalog::from_sizes(sizes), pool, trace, total / cap_div)
}

struct PathMeasurement {
    mode: &'static str,
    n: usize,
    engine: &'static str,
    jobs: usize,
    decisions_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// End-to-end `handle` throughput of `policy` at steady state: one untimed
/// warm pass over the full pool (so the history holds all `n` entries and
/// the cache is hot), then the timed trace with per-job latency capture
/// (p50/p99 via the same nearest-rank rule the kernel table uses). Returns
/// the per-request outcomes so the caller can differential-check engines
/// against each other.
#[allow(clippy::too_many_arguments)]
fn decision_path_run(
    mut policy: OptFileBundle,
    catalog: &FileCatalog,
    pool: &[Bundle],
    trace: &[Bundle],
    capacity: u64,
    mode: &'static str,
    n: usize,
    engine: &'static str,
) -> (PathMeasurement, Vec<fbc_core::policy::RequestOutcome>) {
    let mut cache = CacheState::new(capacity);
    for b in pool {
        std::hint::black_box(policy.handle(b, &mut cache, catalog));
    }
    let mut outcomes = Vec::with_capacity(trace.len());
    let mut samples: Vec<u64> = Vec::with_capacity(trace.len());
    let start = Instant::now();
    for b in trace {
        let job_start = Instant::now();
        outcomes.push(policy.handle(b, &mut cache, catalog));
        samples.push(job_start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    samples.sort_unstable();
    let jobs = samples.len();
    let rank = |q: f64| samples[(((q * jobs as f64).ceil() as usize).clamp(1, jobs)) - 1];
    (
        PathMeasurement {
            mode,
            n,
            engine,
            jobs,
            decisions_per_sec: trace.len() as f64 / elapsed,
            p50_ns: rank(0.50),
            p99_ns: rank(0.99),
        },
        outcomes,
    )
}

fn summarize(n: usize, d: usize, variant: &'static str, mut samples: Vec<u64>) -> Measurement {
    let iters = samples.len();
    let mean_ns = samples.iter().sum::<u64>() as f64 / iters as f64;
    samples.sort_unstable();
    let rank = |q: f64| samples[(((q * iters as f64).ceil() as usize).clamp(1, iters)) - 1];
    Measurement {
        n,
        d,
        variant,
        iters,
        decisions_per_sec: 1e9 / mean_ns,
        p50_ns: rank(0.50),
        p99_ns: rank(0.99),
        mean_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "perf_decision — CI smoke (regression gate)"
    } else {
        "perf_decision — OptCacheSelect decision-path throughput"
    });

    let reduced = smoke || quick_mode();
    let (warmup, iters, ref_iters) = if reduced { (3, 25, 8) } else { (10, 120, 30) };
    let bundle = 4usize;
    let sweep: &[(usize, usize)] = if reduced {
        &[(250, 8), (2000, 8)]
    } else {
        &[
            (250, 2),
            (250, 8),
            (250, 32),
            (1000, 2),
            (1000, 8),
            (1000, 32),
            (2000, 2),
            (2000, 8),
            (2000, 32),
        ]
    };
    let variants = [
        (GreedyVariant::PaperLiteral, "PaperLiteral"),
        (GreedyVariant::SortedOnce, "SortedOnce"),
        (GreedyVariant::SharedCredit, "SharedCredit"),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut scratch = SelectScratch::default();
    let mut lazy_scratch = LazySelectScratch::default();
    for &(n, d) in sweep {
        let inst = instance(n, bundle, d, ((0xBE0001 + n as u64) << 8) | d as u64);
        for (variant, label) in variants {
            let opts = SelectOptions {
                variant,
                max_single_fallback: true,
            };
            let samples = time_ns(
                || {
                    std::hint::black_box(opt_cache_select_with_scratch(
                        std::hint::black_box(&inst),
                        &opts,
                        &mut scratch,
                    ));
                },
                warmup,
                iters,
            );
            measurements.push(summarize(n, d, label, samples));
        }
        // The previous-generation kernel (version-stamped lazy binary
        // heap), retained verbatim behind `reference-kernels`, composed
        // through its own dispatcher.
        let lazy_opts = SelectOptions {
            variant: GreedyVariant::SharedCredit,
            max_single_fallback: true,
        };
        let samples = time_ns(
            || {
                std::hint::black_box(opt_cache_select_lazy_with_scratch(
                    std::hint::black_box(&inst),
                    &lazy_opts,
                    &mut lazy_scratch,
                ));
            },
            warmup,
            iters,
        );
        measurements.push(summarize(n, d, "LazySharedCredit", samples));
        // The reference loop composed exactly as the public entry point
        // composes the fast kernel (greedy + single-best fallback).
        let samples = time_ns(
            || {
                let g = greedy_shared_credit_reference(
                    std::hint::black_box(&inst),
                    &[],
                    inst.capacity(),
                );
                let s = best_single(&inst);
                std::hint::black_box(if s.value > g.value { s } else { g });
            },
            warmup.min(3),
            ref_iters,
        );
        measurements.push(summarize(n, d, "ReferenceSharedCredit", samples));
    }

    let mut table = Table::new([
        "n",
        "d",
        "variant",
        "iters",
        "decisions/s",
        "p50(us)",
        "p99(us)",
    ]);
    for m in &measurements {
        table.add_row([
            m.n.to_string(),
            m.d.to_string(),
            m.variant.to_string(),
            m.iters.to_string(),
            format!("{:.1}", m.decisions_per_sec),
            format!("{:.1}", m.p50_ns as f64 / 1e3),
            format!("{:.1}", m.p99_ns as f64 / 1e3),
        ]);
    }
    print!("{}", table.to_ascii());

    let dps = |variant: &str, n: usize, d: usize| {
        measurements
            .iter()
            .find(|m| m.variant == variant && m.n == n && m.d == d)
            .map(|m| m.decisions_per_sec)
            .expect("measured configuration")
    };
    let kernel_headline = dps("SharedCredit", 2000, 8);
    let kernel_reference = dps("ReferenceSharedCredit", 2000, 8);
    let kernel_lazy = dps("LazySharedCredit", 2000, 8);
    let kernel_speedup = kernel_headline / kernel_reference;
    // The SC/PL acceptance ratio is measured paired (not from the table's
    // phase-separated rows): both kernels interleave on the same instance,
    // so the gate quantity is genuinely machine-independent.
    let sc_vs_pl_ratio = {
        let inst = instance(2000, bundle, 8, ((0xBE0001 + 2000u64) << 8) | 8);
        let sc_opts = SelectOptions {
            variant: GreedyVariant::SharedCredit,
            max_single_fallback: true,
        };
        let pl_opts = SelectOptions {
            variant: GreedyVariant::PaperLiteral,
            max_single_fallback: true,
        };
        let (batches, per_batch) = if reduced { (9, 12) } else { (15, 30) };
        let mut pl_scratch = SelectScratch::default();
        paired_throughput_ratio(
            || {
                std::hint::black_box(opt_cache_select_with_scratch(
                    std::hint::black_box(&inst),
                    &sc_opts,
                    &mut scratch,
                ));
            },
            || {
                std::hint::black_box(opt_cache_select_with_scratch(
                    std::hint::black_box(&inst),
                    &pl_opts,
                    &mut pl_scratch,
                ));
            },
            batches,
            per_batch,
        )
    };
    println!(
        "\nkernel (n=2000, d=8): dense-heap {kernel_headline:.1}/s vs lazy-heap \
         {kernel_lazy:.1}/s ({:.1}x) vs reference {kernel_reference:.1}/s \
         ({kernel_speedup:.1}x) — SharedCredit/PaperLiteral ratio {sc_vs_pl_ratio:.2}",
        kernel_headline / kernel_lazy
    );

    // Full decision path at steady state: the persistent resident state
    // (O(Δ) candidate maintenance) vs the per-decision rebuild reference,
    // on the identical trace. Outcome equality is asserted, so this
    // doubles as an end-to-end differential test. Four rows:
    //
    // * cache-supported, n=2000 — the headline configuration;
    // * cache-supported, n=8000 with the same absolute cache size — the
    //   history-scaling row the smoke ratio gate uses: the select work is
    //   unchanged, only the O(n) scan the rebuild pays per decision grows;
    // * full-history, n=2000 — every decision selects over all n
    //   candidates; the incremental engine serves it from the resident
    //   mirror (cached owner-key ordering + dense-heap kernel in place)
    //   while the rebuild reference re-walks the recency list, re-sorts,
    //   and re-builds the instance per decision — the Full-mode gate;
    // * window(1000), n=2000 — same fast path under epoch-stamped window
    //   truncation.
    //
    // All rows run the same job counts; the Full/Window rows used to be
    // capped at 250 jobs (the rebuild path made 4000 prohibitive) and so
    // omitted latency columns — the resident fast path lifted the cap.
    let mut path_measurements: Vec<PathMeasurement> = Vec::new();
    let mut headline = f64::NAN;
    let mut path_reference = f64::NAN;
    let mut path_speedup = f64::NAN;
    let mut scaling_speedup = f64::NAN;
    let mut full_speedup = f64::NAN;
    let mut window_speedup = f64::NAN;
    for (mode, mode_label, n, cap_div) in [
        (HistoryMode::CacheSupported, "CacheSupported", 2000, 60),
        (HistoryMode::CacheSupported, "CacheSupported", 8000, 240),
        (HistoryMode::Full, "Full", 2000, 60),
        (HistoryMode::Window(1000), "Window(1000)", 2000, 60),
    ] {
        let jobs = if reduced { 400 } else { 4000 };
        let (catalog, pool, trace, capacity) = decision_workload(n, 4, 8, cap_div, jobs, 0xD3C1DE);
        let config = OfbConfig {
            variant: GreedyVariant::SharedCredit,
            history_mode: mode,
            ..OfbConfig::default()
        };
        let (inc, inc_out) = decision_path_run(
            OptFileBundle::with_config(config),
            &catalog,
            &pool,
            &trace,
            capacity,
            mode_label,
            n,
            "incremental",
        );
        let (reb, reb_out) = decision_path_run(
            OptFileBundle::with_config_reference(config),
            &catalog,
            &pool,
            &trace,
            capacity,
            mode_label,
            n,
            "rebuild",
        );
        assert_eq!(
            inc_out, reb_out,
            "decision-path engines diverged in {mode_label} mode at n={n}"
        );
        let ratio = inc.decisions_per_sec / reb.decisions_per_sec;
        match (mode, n) {
            (HistoryMode::CacheSupported, 2000) => {
                headline = inc.decisions_per_sec;
                path_reference = reb.decisions_per_sec;
                path_speedup = ratio;
            }
            (HistoryMode::CacheSupported, _) => scaling_speedup = ratio,
            (HistoryMode::Full, _) => full_speedup = ratio,
            (HistoryMode::Window(_), _) => window_speedup = ratio,
        }
        path_measurements.push(inc);
        path_measurements.push(reb);
    }
    let mut path_table = Table::new([
        "mode",
        "n",
        "engine",
        "jobs",
        "decisions/s",
        "p50(us)",
        "p99(us)",
    ]);
    for m in &path_measurements {
        path_table.add_row([
            m.mode.to_string(),
            m.n.to_string(),
            m.engine.to_string(),
            m.jobs.to_string(),
            format!("{:.1}", m.decisions_per_sec),
            format!("{:.1}", m.p50_ns as f64 / 1e3),
            format!("{:.1}", m.p99_ns as f64 / 1e3),
        ]);
    }
    println!("\ndecision path (steady state, d=8, SharedCredit):");
    print!("{}", path_table.to_ascii());
    println!(
        "headline (cache-supported decision path, n=2000): incremental {headline:.1}/s vs \
         rebuild {path_reference:.1}/s — speedup {path_speedup:.1}x (history-scaling row \
         n=8000: {scaling_speedup:.1}x; full-history mode: {full_speedup:.1}x; \
         window(1000): {window_speedup:.1}x)"
    );

    // Observability overhead on the instrumented decision path: the same
    // handle-call trace plain (never attached), with a disabled sink
    // attached, and with an enabled sink attached.
    let obs_jobs = if reduced { 20_000 } else { 100_000 };
    let obs_files = 2_000usize;
    let mut state = 0xB5EEDu64;
    let catalog = FileCatalog::from_sizes(vec![1u64; obs_files]);
    let trace: Vec<Bundle> = (0..obs_jobs)
        .map(|_| {
            Bundle::from_raw([
                (xorshift(&mut state) % obs_files as u64) as u32,
                (xorshift(&mut state) % obs_files as u64) as u32,
            ])
        })
        .collect();
    let capacity = obs_files as u64; // everything fits: cheap per-call work
    let repeats = if reduced { 5 } else { 8 };
    let plain_ns = obs_handle_ns_per_job(&trace, &catalog, capacity, None, repeats);
    let off = Obs::disabled();
    let off_ns = obs_handle_ns_per_job(&trace, &catalog, capacity, Some(&off), repeats);
    let on = Obs::enabled();
    let on_ns = obs_handle_ns_per_job(&trace, &catalog, capacity, Some(&on), repeats);
    let off_overhead = off_ns / plain_ns;
    let on_overhead = on_ns / plain_ns;
    println!(
        "obs overhead: plain {plain_ns:.0} ns/job, attached-off {off_ns:.0} ns/job \
         ({off_overhead:.3}x), enabled {on_ns:.0} ns/job ({on_overhead:.2}x)"
    );

    // Residency membership kernel: the dense slab/bitset `CacheState`
    // against its retained HashMap/BTreeSet twin on the hit-check + churn
    // loop every decision runs before any selection. The helper asserts
    // both sides replay identically, so this row doubles as a
    // differential test.
    let cache_kernel = cache_membership_kernel(2_000, if reduced { 8 } else { 32 });
    println!(
        "cache membership kernel (n=2000): dense {:.1} ns/probe vs reference {:.1} ns/probe \
         ({:.1}x)",
        cache_kernel.dense_ns_per_op, cache_kernel.reference_ns_per_op, cache_kernel.speedup
    );

    if smoke {
        // Gate 0: a disabled sink must cost at most one branch per call —
        // the issue's 1.05× overhead budget for instrumented-but-off.
        assert!(
            off_overhead <= 1.05,
            "REGRESSION: instrumented-but-disabled decision path is \
             {off_overhead:.3}x the plain path (budget: 1.05x)"
        );
        // Gate 1: machine-independent kernel-vs-reference ratio.
        assert!(
            kernel_speedup >= 2.0,
            "REGRESSION: incremental kernel only {kernel_speedup:.2}x the reference loop \
             at n=2000, d=8 (acceptance floor: 2x)"
        );
        // Gate 2: machine-independent decision-path ratio on the
        // history-scaling row (n=8000, fixed cache size) — the regime the
        // O(Δ) maintenance targets, where the rebuild's per-decision scan
        // is material rather than drowned by the shared select kernel.
        assert!(
            scaling_speedup >= 2.0,
            "REGRESSION: incremental decision path only {scaling_speedup:.2}x the rebuild \
             reference on the history-scaling workload (acceptance floor: 2x)"
        );
        // Gate 3: full-history decision path vs the rebuild reference. The
        // committed pre-residency baseline sat at 1.12×, so a 2× floor
        // only passes with the Full/Window resident fast path live.
        assert!(
            full_speedup >= 2.0,
            "REGRESSION: full-history decision path only {full_speedup:.2}x the rebuild \
             reference (acceptance floor: 2x, committed baseline before the resident \
             fast path: 1.12x)"
        );
        // Gate 4: SharedCredit must stay within 2x of PaperLiteral at the
        // headline kernel configuration (machine-independent ratio).
        assert!(
            sc_vs_pl_ratio >= 0.5,
            "REGRESSION: SharedCredit at only {sc_vs_pl_ratio:.2}x PaperLiteral's \
             throughput at n=2000, d=8 (acceptance floor: within 2x, i.e. ratio >= 0.5)"
        );
        // Gate 5: >2x throughput regression against the committed baseline.
        if let Ok(json) = std::fs::read_to_string("BENCH_core.json") {
            if let Some(committed) = extract_number(&json, "\"headline_decisions_per_sec\":") {
                assert!(
                    headline >= committed / 2.0,
                    "REGRESSION: measured {headline:.1} decisions/s is more than 2x below \
                     the committed baseline {committed:.1}"
                );
                println!(
                    "smoke: headline {headline:.1}/s vs committed {committed:.1}/s — within 2x"
                );
            }
        }
        println!(
            "smoke: OK (decision path at n=8000 {scaling_speedup:.1}x >= 2x, full mode \
             {full_speedup:.1}x >= 2x, kernel {kernel_speedup:.1}x >= 2x, \
             SharedCredit/PaperLiteral {sc_vs_pl_ratio:.2} >= 0.5, \
             obs-off {off_overhead:.3}x <= 1.05x)"
        );
        return;
    }

    let out = results_dir().join("perf_decision.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());

    // Hand-rolled JSON (the vendored serde shim has no serializer); the one
    // key the smoke gate parses back is `headline_decisions_per_sec`.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"perf_decision\",\n");
    json.push_str(&format!(
        "  \"headline_decisions_per_sec\": {headline:.1},\n  \
         \"decision_path_rebuild_per_sec\": {path_reference:.1},\n  \
         \"decision_path_speedup\": {path_speedup:.2},\n  \
         \"decision_path_scaling_speedup\": {scaling_speedup:.2},\n  \
         \"decision_path_full_mode_speedup\": {full_speedup:.2},\n  \
         \"decision_path_window_speedup\": {window_speedup:.2},\n  \
         \"kernel_decisions_per_sec\": {kernel_headline:.1},\n  \
         \"kernel_lazy_decisions_per_sec\": {kernel_lazy:.1},\n  \
         \"kernel_reference_decisions_per_sec\": {kernel_reference:.1},\n  \
         \"kernel_speedup_vs_reference\": {kernel_speedup:.2},\n  \
         \"kernel_sc_vs_paperliteral_ratio\": {sc_vs_pl_ratio:.2},\n  \
         \"obs_plain_ns_per_job\": {plain_ns:.1},\n  \
         \"obs_off_ns_per_job\": {off_ns:.1},\n  \
         \"obs_on_ns_per_job\": {on_ns:.1},\n  \
         \"obs_off_overhead\": {off_overhead:.3},\n  \
         \"obs_on_overhead\": {on_overhead:.2},\n  \
         \"cache_kernel_dense_ns_per_probe\": {:.1},\n  \
         \"cache_kernel_reference_ns_per_probe\": {:.1},\n  \
         \"cache_kernel_speedup\": {:.2},\n  \"decision_path\": [\n",
        cache_kernel.dense_ns_per_op, cache_kernel.reference_ns_per_op, cache_kernel.speedup
    ));
    for (i, m) in path_measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"jobs\": {}, \
             \"decisions_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            m.mode,
            m.n,
            m.engine,
            m.jobs,
            m.decisions_per_sec,
            m.p50_ns,
            m.p99_ns,
            if i + 1 == path_measurements.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"d\": {}, \"variant\": \"{}\", \"iters\": {}, \
             \"decisions_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.1}}}{}\n",
            m.n,
            m.d,
            m.variant,
            m.iters,
            m.decisions_per_sec,
            m.p50_ns,
            m.p99_ns,
            m.mean_ns,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    // Carry over the other perf binaries' sections, if a previous run
    // recorded them — all perf binaries share the summary file.
    if let Ok(old) = std::fs::read_to_string("BENCH_core.json") {
        for name in [
            "perf_eviction",
            "perf_concurrent",
            "perf_online",
            "perf_grid",
        ] {
            if let Some(section) = extract_section(&old, name) {
                json = upsert_section(&json, name, &section);
            }
        }
    }
    std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
    println!("JSON summary written to BENCH_core.json");
}

//! Eviction-path micro-benchmark: eviction throughput (evictions/sec) of
//! every baseline policy's indexed victim selection against its retained
//! pre-index full-scan twin (`reference-kernels` feature), across resident
//! set sizes `n`.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin perf_eviction            # full run
//! cargo run --release -p fbc-bench --bin perf_eviction -- --smoke # CI gate
//! ```
//!
//! The workload: a catalog of `2n` unit-size files over a cache of `n`
//! bytes. A warm phase fills the cache to exactly `n` resident files, then
//! a churn phase requests random pairs from the whole population — about
//! half of each pair misses, so nearly every request runs the victim
//! selection path under a full cache. Reference twins get a time budget
//! instead of a fixed churn length (the pre-index ARC is quadratic per
//! eviction, so a full 10k churn would take hours); the reported rate is
//! evictions over measured churn time either way.
//!
//! The full run writes `results/perf_eviction.csv` and merges a
//! `"perf_eviction"` section into `BENCH_core.json`. The `--smoke` mode
//! writes nothing; it runs reduced sizes and fails (non-zero exit) when
//! either
//!
//! * the geometric-mean indexed-vs-reference speedup at the largest smoke
//!   size is below 2× (machine-independent ratio), or
//! * a committed `BENCH_core.json` has a `headline_evictions_per_sec` and
//!   the measured headline regressed more than 2× against it.

use fbc_baselines::PolicyKind;
use fbc_bench::{
    banner, cache_membership_kernel, extract_number, quick_mode, results_dir, upsert_section,
};
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::CachePolicy;
use fbc_core::types::Bytes;
use fbc_obs::Obs;
use fbc_sim::report::Table;
use std::time::Instant;

/// Deterministic xorshift64 generator (no external RNG needed here).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Warm trace: bundles of 4 consecutive ids covering files `0..n` exactly,
/// so every policy ends the phase with the same `n` resident files.
fn warm_trace(n: usize) -> Vec<Bundle> {
    (0..n / 4)
        .map(|i| Bundle::from_raw((0..4u32).map(|j| (i * 4) as u32 + j)))
        .collect()
}

/// Churn trace: `n` random pairs from the `2n`-file population.
fn churn_trace(n: usize, seed: u64) -> Vec<Bundle> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            Bundle::from_raw([
                (xorshift(&mut state) % (2 * n) as u64) as u32,
                (xorshift(&mut state) % (2 * n) as u64) as u32,
            ])
        })
        .collect()
}

struct RunResult {
    evictions: u64,
    elapsed_ns: u64,
    /// Churn requests actually processed before the time budget ran out.
    processed: usize,
}

/// Prepares the policy on the full trace, replays the warm phase untimed,
/// then times the churn phase (checking the budget every 32 requests).
fn run_churn(
    policy: &mut Box<dyn CachePolicy>,
    warm: &[Bundle],
    churn: &[Bundle],
    catalog: &FileCatalog,
    capacity: Bytes,
    budget_ns: u64,
) -> RunResult {
    let mut full: Vec<Bundle> = Vec::with_capacity(warm.len() + churn.len());
    full.extend_from_slice(warm);
    full.extend_from_slice(churn);
    policy.prepare(&full);
    let mut cache = CacheState::new(capacity);
    for b in warm {
        policy.handle(b, &mut cache, catalog);
    }
    let mut evictions = 0u64;
    let mut processed = 0usize;
    let start = Instant::now();
    for chunk in churn.chunks(32) {
        for b in chunk {
            evictions += policy.handle(b, &mut cache, catalog).evicted_files.len() as u64;
        }
        processed += chunk.len();
        if start.elapsed().as_nanos() as u64 > budget_ns {
            break;
        }
    }
    RunResult {
        evictions,
        elapsed_ns: (start.elapsed().as_nanos() as u64).max(1),
        processed,
    }
}

struct Row {
    n: usize,
    policy: String,
    indexed_eps: f64,
    reference_eps: f64,
    speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        return 0.0;
    }
    (sum / count as f64).exp()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "perf_eviction — CI smoke (regression gate)"
    } else {
        "perf_eviction — baseline victim-selection throughput"
    });

    let reduced = smoke || quick_mode();
    let sizes: &[usize] = if reduced {
        &[250, 1_000]
    } else {
        &[1_000, 10_000]
    };
    let iters = if reduced { 1 } else { 2 };
    let budget_ns: u64 = if reduced {
        1_500_000_000
    } else {
        4_000_000_000
    };

    let mut kinds: Vec<PolicyKind> = PolicyKind::ONLINE.to_vec();
    kinds.push(PolicyKind::BeladyMin);

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let catalog = FileCatalog::from_sizes(vec![1; 2 * n]);
        let warm = warm_trace(n);
        let churn = churn_trace(n, 0xE71C ^ ((n as u64) << 4));
        for &kind in &kinds {
            let Some(_) = kind.build_reference() else {
                continue; // OptFileBundle is covered by perf_decision
            };
            // Best-of-`iters` on both sides; fresh policy and cache per run.
            let mut best_idx: Option<RunResult> = None;
            let mut best_ref: Option<RunResult> = None;
            for _ in 0..iters {
                let mut p = kind.build();
                let r = run_churn(&mut p, &warm, &churn, &catalog, n as Bytes, budget_ns);
                if best_idx
                    .as_ref()
                    .is_none_or(|b| r.elapsed_ns < b.elapsed_ns)
                {
                    best_idx = Some(r);
                }
                let mut p = kind.build_reference().expect("twin exists");
                let r = run_churn(&mut p, &warm, &churn, &catalog, n as Bytes, budget_ns);
                if best_ref
                    .as_ref()
                    .is_none_or(|b| r.elapsed_ns < b.elapsed_ns)
                {
                    best_ref = Some(r);
                }
            }
            let (idx, rf) = (best_idx.unwrap(), best_ref.unwrap());
            // Free differential check whenever both sides finished the
            // whole churn: identical policies make identical evictions.
            if idx.processed == churn.len() && rf.processed == churn.len() {
                assert_eq!(
                    idx.evictions, rf.evictions,
                    "{kind:?} diverged from its reference twin at n={n}"
                );
            }
            let indexed_eps = idx.evictions as f64 * 1e9 / idx.elapsed_ns as f64;
            let reference_eps = rf.evictions as f64 * 1e9 / rf.elapsed_ns as f64;
            rows.push(Row {
                n,
                policy: kind.build().name().to_string(),
                indexed_eps,
                reference_eps,
                speedup: indexed_eps / reference_eps,
            });
        }
    }

    let mut table = Table::new(["n", "policy", "indexed ev/s", "reference ev/s", "speedup"]);
    for r in &rows {
        table.add_row([
            r.n.to_string(),
            r.policy.clone(),
            format!("{:.0}", r.indexed_eps),
            format!("{:.0}", r.reference_eps),
            format!("{:.1}x", r.speedup),
        ]);
    }
    print!("{}", table.to_ascii());

    let largest = *sizes.last().expect("non-empty size sweep");

    // Observability overhead on the eviction path, measured on LRU (the
    // cheapest per-request policy, so a per-call branch is most visible):
    // the same churn plain, with a disabled sink attached, and enabled.
    let obs_overheads = {
        let catalog = FileCatalog::from_sizes(vec![1; 2 * largest]);
        let warm = warm_trace(largest);
        let churn = churn_trace(largest, 0xE71C ^ ((largest as u64) << 4));
        let mode = |obs: Option<&Obs>| -> f64 {
            let mut best = f64::MAX;
            for rep in 0..=iters {
                if let Some(o) = obs {
                    o.clear();
                }
                let mut p = PolicyKind::Lru.build();
                if let Some(o) = obs {
                    p.attach_obs(o.clone());
                }
                let r = run_churn(&mut p, &warm, &churn, &catalog, largest as Bytes, budget_ns);
                let ns_per_req = r.elapsed_ns as f64 / r.processed.max(1) as f64;
                if rep > 0 {
                    best = best.min(ns_per_req);
                }
            }
            best
        };
        let plain_ns = mode(None);
        let off = Obs::disabled();
        let off_ns = mode(Some(&off));
        let on = Obs::enabled();
        let on_ns = mode(Some(&on));
        println!(
            "\nobs overhead (LRU, n={largest}): plain {plain_ns:.0} ns/req, attached-off \
             {off_ns:.0} ns/req ({:.3}x), enabled {on_ns:.0} ns/req ({:.2}x)",
            off_ns / plain_ns,
            on_ns / plain_ns
        );
        (off_ns / plain_ns, on_ns / plain_ns)
    };

    // Residency membership kernel: the dense slab/bitset `CacheState`
    // against its retained HashMap/BTreeSet twin on the batched hit-check
    // + churn loop every eviction decision sits behind. The helper asserts
    // both sides replay identically, so this row doubles as a differential
    // test.
    let cache_kernel = cache_membership_kernel(largest, if reduced { 8 } else { 32 });
    println!(
        "\ncache membership kernel (n={largest}): dense {:.1} ns/probe vs reference \
         {:.1} ns/probe ({:.1}x)",
        cache_kernel.dense_ns_per_op, cache_kernel.reference_ns_per_op, cache_kernel.speedup
    );

    let headline_eps = geomean(
        rows.iter()
            .filter(|r| r.n == largest)
            .map(|r| r.indexed_eps),
    );
    let headline_speedup = geomean(rows.iter().filter(|r| r.n == largest).map(|r| r.speedup));
    println!(
        "\nheadline (n={largest}): geomean indexed {headline_eps:.0} evictions/s \
         — geomean speedup vs reference {headline_speedup:.1}x"
    );

    if smoke {
        // Gate 1: machine-independent indexed-vs-reference ratio.
        assert!(
            headline_speedup >= 2.0,
            "REGRESSION: indexed victim selection only {headline_speedup:.2}x the \
             reference scan at n={largest} (acceptance floor: 2x)"
        );
        // Gate 2: >2x throughput regression against the committed baseline.
        if let Ok(json) = std::fs::read_to_string("BENCH_core.json") {
            if let Some(committed) = extract_number(&json, "\"headline_evictions_per_sec\":") {
                assert!(
                    headline_eps >= committed / 2.0,
                    "REGRESSION: measured {headline_eps:.0} evictions/s is more than 2x \
                     below the committed baseline {committed:.0}"
                );
                println!(
                    "smoke: headline {headline_eps:.0} ev/s vs committed {committed:.0} ev/s \
                     — within 2x"
                );
            }
        }
        println!("smoke: OK (geomean speedup {headline_speedup:.1}x >= 2x)");
        return;
    }

    let out = results_dir().join("perf_eviction.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());

    // Merge our section into the shared summary (hand-rolled JSON; the
    // vendored serde shim has no serializer).
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "    \"headline_evictions_per_sec\": {headline_eps:.1},\n    \
         \"headline_eviction_speedup\": {headline_speedup:.2},\n    \
         \"obs_off_overhead\": {:.3},\n    \
         \"obs_on_overhead\": {:.2},\n    \
         \"cache_kernel_dense_ns_per_probe\": {:.1},\n    \
         \"cache_kernel_reference_ns_per_probe\": {:.1},\n    \
         \"cache_kernel_speedup\": {:.2},\n    \
         \"largest_n\": {largest},\n    \"results\": [\n",
        obs_overheads.0,
        obs_overheads.1,
        cache_kernel.dense_ns_per_op,
        cache_kernel.reference_ns_per_op,
        cache_kernel.speedup
    ));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"n\": {}, \"policy\": \"{}\", \"indexed_eps\": {:.1}, \
             \"reference_eps\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.n,
            r.policy,
            r.indexed_eps,
            r.reference_eps,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  }");
    let old = std::fs::read_to_string("BENCH_core.json").unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = upsert_section(&old, "perf_eviction", &body);
    std::fs::write("BENCH_core.json", &merged).expect("write BENCH_core.json");
    println!("JSON summary merged into BENCH_core.json");
}

//! End-to-end grid engine throughput over the dense residency path.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin perf_grid            # full run
//! cargo run --release -p fbc-bench --bin perf_grid -- --smoke # CI gate
//! ```
//!
//! Where `perf_concurrent` measures a decision-dominated stream (almost
//! every arrival forces a replacement selection), this benchmark measures
//! the opposite regime: a **hit-dominated** stream, where the per-request
//! cost is the residency membership check itself — the batched
//! `contains_all` test the grid engine runs on every arrival and every
//! queued-drain candidate. The workload draws all jobs from a small pool
//! of distinct bundles over a catalog that fits in cache entirely, so
//! after a brief cold phase every request is a full-cache hit and the
//! event loop spends its time exactly on the path the dense slab/bitset
//! `CacheState` rebuilt.
//!
//! Two layers:
//!
//! 1. **End-to-end jobs/s** through `run_concurrent_grid` at shard counts
//!    {1, 4} (plus a `run_grid` divergence check on a prefix: the 1-shard
//!    service must stay bit-identical to the single-threaded engine).
//! 2. **Hit-check ns/request** — the shared membership micro-kernel
//!    (`fbc_bench::cache_membership_kernel`), dense `CacheState` vs its
//!    retained `HashMap`+`BTreeSet` reference twin. The helper asserts
//!    both sides replay identically, so every run is also a differential
//!    test of the dense representation.
//!
//! The full run writes `results/perf_grid.csv` and merges a `"perf_grid"`
//! section into `BENCH_core.json`. The `--smoke` mode writes nothing; it
//! runs a reduced size and fails (non-zero exit) when either
//!
//! * the dense membership kernel is slower than the reference twin
//!   (speedup < 1.0 — the representation must never lose to the hash
//!   path it replaced), or
//! * the 1-shard run diverges from `run_grid`, or the dense and reference
//!   kernels diverge, or
//! * a committed `BENCH_core.json` has a `headline_grid_jobs_per_sec`
//!   and the measured headline regressed more than 2× against it.

use fbc_bench::{
    banner, cache_membership_kernel, extract_number, quick_mode, results_dir, upsert_section,
};
use fbc_core::bundle::Bundle;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::SendPolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess, JobArrival};
use fbc_grid::concurrent::{run_concurrent_grid, ConcurrentConfig};
use fbc_grid::engine::{run_grid, GridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_sim::report::Table;
use std::time::Instant;

/// Deterministic xorshift64 generator (no external RNG needed here).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const FILE_SIZE: u64 = 1_000_000;

/// A hit-dominated stream: `jobs` arrivals cycling through a pool of
/// `pool` distinct 3-file bundles over a `files`-file catalog, batch
/// submitted. The catalog fits in cache whole, so after the pool's first
/// pass every arrival is a full-cache hit — the steady state is wall-to-
/// wall membership checks.
fn workload(files: usize, pool: usize, jobs: usize, seed: u64) -> (FileCatalog, Vec<JobArrival>) {
    let catalog = FileCatalog::from_sizes(vec![FILE_SIZE; files]);
    let mut state = seed;
    let distinct: Vec<Bundle> = (0..pool)
        .map(|_| {
            Bundle::from_raw([
                (xorshift(&mut state) % files as u64) as u32,
                (xorshift(&mut state) % files as u64) as u32,
                (xorshift(&mut state) % files as u64) as u32,
            ])
        })
        .collect();
    let bundles: Vec<Bundle> = (0..jobs)
        .map(|i| distinct[(xorshift(&mut state) as usize ^ i) % pool].clone())
        .collect();
    (catalog, schedule_arrivals(&bundles, ArrivalProcess::Batch))
}

fn grid_config(files: usize) -> GridConfig {
    GridConfig {
        srm: SrmConfig {
            // The whole catalog fits: no evictions, every steady-state
            // request exercises only the hit-check path.
            cache_size: files as u64 * FILE_SIZE,
            max_concurrent_jobs: 4,
            ..SrmConfig::default()
        },
        ..GridConfig::default()
    }
}

fn factory() -> SendPolicy {
    Box::new(fbc_core::optfilebundle::OptFileBundle::new())
}

struct Row {
    shards: usize,
    jobs_per_sec: f64,
    speedup: f64,
    byte_miss: f64,
    elapsed_ns: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "perf_grid — CI smoke (regression gate)"
    } else {
        "perf_grid — end-to-end grid hit-check throughput"
    });

    let reduced = smoke || quick_mode();
    let (files, pool, jobs) = if reduced {
        (2_000, 256, 20_000)
    } else {
        (4_000, 512, 100_000)
    };
    let iters = if reduced { 1 } else { 2 };
    let shard_counts: &[usize] = &[1, 4];

    let (catalog, arrivals) = workload(files, pool, jobs, 0x6121D ^ jobs as u64);
    let config = grid_config(files);

    // Divergence gate: the 1-shard concurrent service must be
    // bit-identical to the single-threaded engine on a prefix.
    {
        let equiv = &arrivals[..jobs.min(4_000)];
        let mut policy = factory();
        let seq = run_grid(policy.as_mut(), &catalog, equiv, &config);
        let con = run_concurrent_grid(
            &factory,
            &catalog,
            equiv,
            &ConcurrentConfig::sharded(config, 1),
            None,
        );
        assert_eq!(
            seq, con.overall,
            "DIVERGENCE: 1-shard concurrent GridStats differ from run_grid"
        );
        println!("equivalence: 1-shard run is bit-identical to run_grid\n");
    }

    let mut rows: Vec<Row> = Vec::new();
    for &shards in shard_counts {
        let cfg = ConcurrentConfig::sharded(config, shards);
        let mut best_ns = u64::MAX;
        let mut byte_miss = 0.0;
        let mut decided = 0u64;
        for _ in 0..iters {
            let start = Instant::now();
            let stats = run_concurrent_grid(&factory, &catalog, &arrivals, &cfg, None);
            let ns = (start.elapsed().as_nanos() as u64).max(1);
            decided = stats.overall.completed + stats.overall.rejected + stats.overall.failed;
            assert_eq!(decided, jobs as u64, "every job must be decided");
            byte_miss = stats.overall.cache.byte_miss_ratio();
            best_ns = best_ns.min(ns);
        }
        let jobs_per_sec = decided as f64 * 1e9 / best_ns as f64;
        let base = rows.first().map_or(jobs_per_sec, |r: &Row| r.jobs_per_sec);
        rows.push(Row {
            shards,
            jobs_per_sec,
            speedup: jobs_per_sec / base,
            byte_miss,
            elapsed_ns: best_ns,
        });
    }

    let mut table = Table::new(["shards", "jobs/s", "speedup", "byte miss", "wall ms"]);
    for r in &rows {
        table.add_row([
            r.shards.to_string(),
            format!("{:.0}", r.jobs_per_sec),
            format!("{:.2}x", r.speedup),
            format!("{:.4}", r.byte_miss),
            format!("{:.0}", r.elapsed_ns as f64 / 1e6),
        ]);
    }
    print!("{}", table.to_ascii());

    // Hit-check micro-kernel: ns per membership probe, dense vs the
    // reference twin (differential by construction — the helper asserts
    // identical replay).
    let kernel_n = if reduced { 1_000 } else { 10_000 };
    let kernel = cache_membership_kernel(kernel_n, if reduced { 8 } else { 32 });
    println!(
        "\nhit-check kernel (n={kernel_n}): dense {:.1} ns/probe vs reference {:.1} ns/probe \
         ({:.1}x)",
        kernel.dense_ns_per_op, kernel.reference_ns_per_op, kernel.speedup
    );

    let headline_jps = rows
        .iter()
        .find(|r| r.shards == 1)
        .map_or(0.0, |r| r.jobs_per_sec);
    let sharded_jps = rows
        .iter()
        .find(|r| r.shards == 4)
        .map_or(0.0, |r| r.jobs_per_sec);
    println!(
        "\nheadline: 1-shard {headline_jps:.0} jobs/s end-to-end on the hit-dominated \
         stream (4-shard: {sharded_jps:.0} jobs/s); dense hit check {:.1} ns/probe",
        kernel.dense_ns_per_op
    );

    if smoke {
        // Gate 1: the dense representation must not lose to the hash twin
        // it replaced (machine-independent ratio; the divergence checks
        // above already ran).
        assert!(
            kernel.speedup >= 1.0,
            "REGRESSION: dense membership kernel only {:.2}x the reference twin \
             (acceptance floor: 1.0x — dense must never be slower)",
            kernel.speedup
        );
        // Gate 2: >2x throughput regression against the committed baseline.
        if let Ok(json) = std::fs::read_to_string("BENCH_core.json") {
            if let Some(committed) = extract_number(&json, "\"headline_grid_jobs_per_sec\":") {
                assert!(
                    headline_jps >= committed / 2.0,
                    "REGRESSION: measured {headline_jps:.0} jobs/s is more than 2x below \
                     the committed baseline {committed:.0}"
                );
                println!(
                    "smoke: headline {headline_jps:.0} jobs/s vs committed {committed:.0} \
                     jobs/s — within 2x"
                );
            }
        }
        println!(
            "smoke: OK (dense kernel {:.1}x >= 1.0x, 1-shard equivalence held)",
            kernel.speedup
        );
        return;
    }

    let out = results_dir().join("perf_grid.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());

    // Merge our section into the shared summary (hand-rolled JSON; the
    // vendored serde shim has no serializer).
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "    \"headline_grid_jobs_per_sec\": {headline_jps:.1},\n    \
         \"sharded_grid_jobs_per_sec\": {sharded_jps:.1},\n    \
         \"hit_check_dense_ns_per_probe\": {:.1},\n    \
         \"hit_check_reference_ns_per_probe\": {:.1},\n    \
         \"hit_check_speedup\": {:.2},\n    \
         \"files\": {files},\n    \"pool\": {pool},\n    \"jobs\": {jobs},\n    \
         \"results\": [\n",
        kernel.dense_ns_per_op, kernel.reference_ns_per_op, kernel.speedup
    ));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"shards\": {}, \"jobs_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"byte_miss_ratio\": {:.4}}}{}\n",
            r.shards,
            r.jobs_per_sec,
            r.speedup,
            r.byte_miss,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  }");
    let old = std::fs::read_to_string("BENCH_core.json").unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = upsert_section(&old, "perf_grid", &body);
    std::fs::write("BENCH_core.json", &merged).expect("write BENCH_core.json");
    println!("JSON summary merged into BENCH_core.json");
}

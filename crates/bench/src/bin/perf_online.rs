//! Competitive-ratio harness for the online bundle-marking policies
//! (`fbc_baselines::online_bundle`, Qin–Etesami): measures query-miss
//! competitive ratios against the *exact* offline optimum
//! (`fbc_core::offline::opt_query_misses`) and asserts them under the
//! proved `k − ℓ + 1` bound.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin perf_online            # full run
//! cargo run --release -p fbc-bench --bin perf_online -- --smoke # CI gate
//! ```
//!
//! Three sections, all bit-for-bit deterministic (fixed seeds, no
//! wall-clock dependence), on unit-size catalogs where the bound's
//! arithmetic is exact:
//!
//! 1. **Adversarial lower bound** — the sliding-window sequence of
//!    `fbc_workload::adversary` for `(k, ℓ)` ∈ {(20, 2), (50, 4),
//!    (100, 8)}, `T = 10 (k − ℓ + 1)` queries. Every demand-driven
//!    policy misses every query here, so the marking policies sit
//!    *exactly at* their bound — tightness, measured. OptFileBundle and
//!    Landlord ride along for context (value-based retention can beat
//!    marking on this sequence; nothing can beat OPT).
//! 2. **Round-robin phases** — the benign phase workload: marking pays
//!    one loading burst per phase and then hits, landing far under the
//!    bound.
//! 3. **Distributed** — the same policy behind the sharded admission
//!    front-end (`run_concurrent_grid`, `m` ∈ {1, 2, 4} shards,
//!    capacity split `m` ways): each shard's measured ratio against
//!    *its own* routed sub-trace's offline optimum stays under the
//!    per-shard bound `ρ(k/m, ℓ)`.
//!
//! The full run writes `results/perf_online.csv` and merges a
//! `"perf_online"` section into `BENCH_core.json`. `--smoke` writes
//! nothing and fails (non-zero exit) when
//!
//! * any marking-policy ratio exceeds its bound (the competitive
//!   guarantee, machine-independently deterministic), or
//! * the committed `BENCH_core.json` has a `headline_ratio` and the
//!   measured headline drifted from it (the workload is seeded, so any
//!   drift is a behaviour change, not noise).

use fbc_baselines::online_bundle::{distributed_marking_bound, marking_competitive_bound};
use fbc_baselines::PolicyKind;
use fbc_bench::{banner, extract_number, results_dir, upsert_section};
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::offline::{competitive_ratio, opt_query_misses};
use fbc_core::policy::SendPolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::concurrent::{run_concurrent_grid, ConcurrentConfig};
use fbc_grid::engine::GridConfig;
use fbc_grid::srm::SrmConfig;
use fbc_grid::{ShardBy, ShardMap};
use fbc_sim::report::Table;
use fbc_workload::adversary::{round_robin_phases, sliding_window, unit_catalog};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Replays `trace` through a fresh instance of `kind` on a `capacity`-byte
/// cache and returns the number of missed queries.
fn online_misses(kind: PolicyKind, trace: &[Bundle], catalog: &FileCatalog, capacity: u64) -> u64 {
    let mut policy = kind.build();
    let mut cache = CacheState::new(capacity);
    trace
        .iter()
        .map(|b| u64::from(!policy.handle(b, &mut cache, catalog).hit))
        .sum()
}

struct Row {
    section: &'static str,
    setting: String,
    policy: &'static str,
    misses: u64,
    opt: u64,
    ratio: f64,
    bound: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "perf_online — CI smoke (competitive-bound gate)"
    } else {
        "perf_online — online bundle caching vs offline OPT"
    });

    let comparators = [
        ("BundleMarking", PolicyKind::BundleMarking),
        ("BundleMarking(rand)", PolicyKind::BundleMarkingRand),
        ("OptFileBundle", PolicyKind::OptFileBundle),
        ("Landlord", PolicyKind::Landlord),
        ("LRU", PolicyKind::Lru),
    ];
    let is_marking = |p: &str| p == "BundleMarking" || p == "BundleMarking(rand)";

    let mut rows: Vec<Row> = Vec::new();

    // ── Section 1: adversarial sliding-window lower bound ────────────
    for (k, l) in [(20u32, 2u32), (50, 4), (100, 8)] {
        let bound = marking_competitive_bound(k as u64, l as u64);
        let t = 10 * (k - l + 1) as usize; // aligned: OPT pays exactly T / (k−ℓ+1)
        let trace = sliding_window(k, l, t);
        let catalog = unit_catalog(k as usize + 1);
        let opt = opt_query_misses(&trace, &catalog, k as u64);
        for (name, kind) in comparators {
            let misses = online_misses(kind, &trace, &catalog, k as u64);
            rows.push(Row {
                section: "sliding-window",
                setting: format!("k={k} l={l} T={t}"),
                policy: name,
                misses,
                opt,
                ratio: competitive_ratio(misses as f64, opt as f64),
                bound,
            });
        }
    }

    // ── Section 2: round-robin phase workload ────────────────────────
    {
        let (k, l, phases, qpp) = (50u32, 5u32, 8u32, 200usize);
        let bound = marking_competitive_bound(k as u64, l as u64);
        let trace = round_robin_phases(k, l, phases, qpp);
        let catalog = unit_catalog((phases * k) as usize);
        let opt = opt_query_misses(&trace, &catalog, k as u64);
        for (name, kind) in comparators {
            let misses = online_misses(kind, &trace, &catalog, k as u64);
            rows.push(Row {
                section: "round-robin",
                setting: format!("k={k} l={l} {phases}x{qpp}"),
                policy: name,
                misses,
                opt,
                ratio: competitive_ratio(misses as f64, opt as f64),
                bound,
            });
        }
    }

    // ── Section 3: distributed (sharded admission front-end) ─────────
    // Random ℓ-distinct-file bundles; capacity splits m ways; each
    // shard's ratio is measured against its own routed sub-trace's OPT
    // and must stay under the per-shard bound ρ(k/m, ℓ).
    {
        let (total_files, universe, l, jobs) = (96u64, 128u32, 4usize, 3_000usize);
        let catalog = unit_catalog(universe as usize);
        let mut state = 0x0B5Eu64;
        let bundles: Vec<Bundle> = (0..jobs)
            .map(|_| {
                let mut picks: Vec<u32> = Vec::with_capacity(l);
                while picks.len() < l {
                    let f = (xorshift(&mut state) % universe as u64) as u32;
                    if !picks.contains(&f) {
                        picks.push(f);
                    }
                }
                Bundle::from_raw(picks)
            })
            .collect();
        let arrivals = schedule_arrivals(&bundles, ArrivalProcess::Batch);
        for shards in [1usize, 2, 4] {
            let grid = GridConfig {
                srm: SrmConfig {
                    cache_size: total_files,
                    // Strictly sequential service per shard, so each
                    // shard's observed request order is its routed
                    // sub-trace order and OPT is a true lower bound.
                    max_concurrent_jobs: 1,
                    ..SrmConfig::default()
                },
                ..GridConfig::default()
            };
            let factory = || -> SendPolicy { PolicyKind::BundleMarking.build_send() };
            let stats = run_concurrent_grid(
                &factory,
                &catalog,
                &arrivals,
                &ConcurrentConfig::sharded(grid, shards),
                None,
            );
            // Pre-route with the same pure hash the front-end uses to
            // recover each shard's sub-trace for the offline optimum.
            let map = ShardMap::new(shards, ShardBy::default());
            let mut sub: Vec<Vec<Bundle>> = vec![Vec::new(); shards];
            for b in &bundles {
                sub[map.shard_of(b)].push(b.clone());
            }
            let per_shard_capacity = total_files / shards as u64;
            let bound = distributed_marking_bound(total_files, shards as u64, l as u64);
            for (i, shard) in stats.per_shard.iter().enumerate() {
                assert_eq!(
                    shard.cache.jobs,
                    sub[i].len() as u64,
                    "pre-routing diverged from the front-end's ShardMap"
                );
                let misses = shard.cache.jobs - shard.cache.hits;
                let opt = opt_query_misses(&sub[i], &catalog, per_shard_capacity);
                rows.push(Row {
                    section: "distributed",
                    setting: format!("m={shards} shard={i} k/m={per_shard_capacity}"),
                    policy: "BundleMarking",
                    misses,
                    opt,
                    ratio: competitive_ratio(misses as f64, opt as f64),
                    bound,
                });
            }
        }
    }

    let mut table = Table::new([
        "section", "setting", "policy", "misses", "OPT", "ratio", "bound",
    ]);
    for r in &rows {
        table.add_row([
            r.section.to_string(),
            r.setting.clone(),
            r.policy.to_string(),
            r.misses.to_string(),
            r.opt.to_string(),
            format!("{:.4}", r.ratio),
            format!("{:.1}", r.bound),
        ]);
    }
    print!("{}", table.to_ascii());

    // The competitive guarantee, enforced: every marking-policy row must
    // sit at or under its bound. (Comparators are context, not gated —
    // value-based policies carry no such guarantee.)
    let mut violations = 0;
    for r in rows.iter().filter(|r| is_marking(r.policy)) {
        if r.ratio > r.bound + 1e-9 {
            println!(
                "VIOLATION: {} [{} {}] ratio {:.4} exceeds bound {:.1}",
                r.policy, r.section, r.setting, r.ratio, r.bound
            );
            violations += 1;
        }
    }
    assert_eq!(
        violations, 0,
        "competitive bound violated on {violations} row(s)"
    );

    let headline = rows
        .iter()
        .find(|r| {
            r.section == "sliding-window"
                && r.policy == "BundleMarking"
                && r.setting.starts_with("k=100")
        })
        .expect("headline row");
    println!(
        "\nheadline: BundleMarking {} — ratio {:.2} vs bound {:.0} (tight: the adversary \
         forces equality); all marking rows within bound",
        headline.setting, headline.ratio, headline.bound
    );

    if smoke {
        // The workload is fully seeded: any drift from the committed
        // headline is a behaviour change, not noise.
        if let Ok(json) = std::fs::read_to_string("BENCH_core.json") {
            if let Some(committed) = extract_number(&json, "\"headline_ratio\":") {
                assert!(
                    (headline.ratio - committed).abs() <= 1e-3,
                    "REGRESSION: measured headline ratio {:.4} drifted from the committed \
                     {committed:.4} on a deterministic workload",
                    headline.ratio
                );
                println!(
                    "smoke: headline ratio {:.2} matches committed {committed:.2}",
                    headline.ratio
                );
            }
        }
        println!("smoke: OK (all marking ratios within their competitive bounds)");
        return;
    }

    let out = results_dir().join("perf_online.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "    \"headline_ratio\": {:.4},\n    \"headline_bound\": {:.1},\n    \
         \"results\": [\n",
        headline.ratio, headline.bound
    ));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"section\": \"{}\", \"setting\": \"{}\", \"policy\": \"{}\", \
             \"misses\": {}, \"opt\": {}, \"ratio\": {:.4}, \"bound\": {:.1}}}{}\n",
            r.section,
            r.setting,
            r.policy,
            r.misses,
            r.opt,
            r.ratio,
            r.bound,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  }");
    let old = std::fs::read_to_string("BENCH_core.json").unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = upsert_section(&old, "perf_online", &body);
    std::fs::write("BENCH_core.json", &merged).expect("write BENCH_core.json");
    println!("JSON summary merged into BENCH_core.json");
}

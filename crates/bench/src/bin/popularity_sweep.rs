//! Extension experiment: sensitivity to popularity skew. The paper studies
//! only the two extremes — uniform and Zipf(1) — "since each request draws
//! a random combination of files" (§5.2); this sweep fills in the θ axis
//! and shows where bundle-awareness pays most.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin popularity_sweep
//! ```

use fbc_baselines::Landlord;
use fbc_bench::{banner, paper_workload, results_dir, Experiment, BASE_CACHE};
use fbc_core::optfilebundle::OptFileBundle;
use fbc_sim::report::{f2, f4, Table};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

const THETAS: [f64; 6] = [0.0, 0.4, 0.8, 1.0, 1.4, 2.0];

fn main() {
    banner("Popularity sweep — byte miss ratio vs Zipf skew θ (θ=0 is uniform)");

    let results = parallel_sweep(&THETAS, default_threads(), |&theta| {
        let popularity = if theta == 0.0 {
            Popularity::Uniform
        } else {
            Popularity::Zipf { theta }
        };
        let exp = Experiment::generate(paper_workload(popularity, 0.01, 19_001));
        let ofb = exp.run(OptFileBundle::new(), BASE_CACHE);
        let ll = exp.run(Landlord::new(), BASE_CACHE);
        (ofb, ll)
    });

    let mut table = Table::new([
        "theta",
        "bmr OFB",
        "bmr Landlord",
        "OFB advantage (%)",
        "hit ratio OFB",
    ]);
    for (&theta, (ofb, ll)) in THETAS.iter().zip(&results) {
        let gain = 100.0 * (ll.byte_miss_ratio() - ofb.byte_miss_ratio())
            / ll.byte_miss_ratio().max(1e-12);
        table.add_row([
            f2(theta),
            f4(ofb.byte_miss_ratio()),
            f4(ll.byte_miss_ratio()),
            f2(gain),
            f4(ofb.request_hit_ratio()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: skew concentrates recurrence onto few bundles, which is exactly\n\
         the signal OptFileBundle's history exploits — its relative advantage\n\
         grows with θ until the hot set fits outright and every policy converges."
    );

    let out = results_dir().join("popularity_sweep.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

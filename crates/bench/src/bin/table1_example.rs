//! Reproduces **Table 1** of the paper: file request probabilities of the
//! §3 worked example (six equally likely requests over seven files).
//!
//! ```text
//! cargo run --release -p fbc-bench --bin table1_example
//! ```

use fbc_core::bundle::Bundle;
use fbc_core::history::RequestHistory;
use fbc_core::types::FileId;
use fbc_sim::report::{f4, Table};

/// The §3 example: the request/file assignment consistent with both paper
/// tables (see `fbc_core::history` tests for the derivation).
pub fn example_history() -> RequestHistory {
    let mut h = RequestHistory::new();
    for r in [
        Bundle::from_raw([1, 3, 5]), // r1
        Bundle::from_raw([2, 6, 7]), // r2
        Bundle::from_raw([1, 5]),    // r3
        Bundle::from_raw([4, 6, 7]), // r4
        Bundle::from_raw([3, 5]),    // r5
        Bundle::from_raw([5, 6, 7]), // r6
    ] {
        h.record(&r);
    }
    h
}

fn main() {
    fbc_bench::banner("Table 1 — file request probabilities (paper §3)");
    let history = example_history();

    let mut table = Table::new(["File", "No of Requests", "File request probability"]);
    for f in 1..=7u32 {
        let degree = history.degree(FileId(f));
        let prob = history.file_request_probability(FileId(f));
        table.add_row([format!("f{f}"), degree.to_string(), f4(prob)]);
    }
    print!("{}", table.to_ascii());

    let out = fbc_bench::results_dir().join("table1.csv");
    table.save_csv(&out).expect("write CSV");
    println!("\nCSV written to {}", out.display());
    println!(
        "\nPaper check: most popular file is f5 (degree {}), followed by f6/f7 (degree 3).",
        history.degree(FileId(5))
    );
    assert_eq!(history.degree(FileId(5)), 4);
    assert_eq!(history.max_degree(), 4);
}

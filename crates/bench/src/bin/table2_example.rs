//! Reproduces **Table 2** of the paper: request-hit probabilities for
//! selected cache contents of the §3 worked example — and goes further:
//! enumerates *all* 35 three-file cache contents to confirm that
//! `{f1,f3,f5}` is the global optimum and that keeping the three most
//! popular files is far from it.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin table2_example
//! ```

use fbc_core::bundle::Bundle;
use fbc_core::history::RequestHistory;
use fbc_core::instance::FbcInstance;
use fbc_core::select::{opt_cache_select, SelectOptions};
use fbc_core::types::FileId;
use fbc_sim::report::{f4, Table};

fn example_history() -> RequestHistory {
    let mut h = RequestHistory::new();
    for r in [
        Bundle::from_raw([1, 3, 5]),
        Bundle::from_raw([2, 6, 7]),
        Bundle::from_raw([1, 5]),
        Bundle::from_raw([4, 6, 7]),
        Bundle::from_raw([3, 5]),
        Bundle::from_raw([5, 6, 7]),
    ] {
        h.record(&r);
    }
    h
}

fn hit_prob(history: &RequestHistory, cache: &[u32]) -> f64 {
    history.request_hit_probability(|f: FileId| cache.contains(&f.0))
}

fn label(cache: &[u32]) -> String {
    cache
        .iter()
        .map(|f| format!("f{f}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    fbc_bench::banner("Table 2 — request-hit probabilities (paper §3)");
    let history = example_history();

    // The five rows the paper prints.
    let rows: [&[u32]; 5] = [
        &[5, 6, 7], // the three most popular files
        &[1, 3, 5], // the bundle-aware optimum
        &[1, 5, 6],
        &[3, 5, 6],
        &[1, 2, 3],
    ];
    let mut table = Table::new(["Cache contents", "Request-hit probability"]);
    for cache in rows {
        table.add_row([label(cache), f4(hit_prob(&history, cache))]);
    }
    print!("{}", table.to_ascii());

    // Exhaustive check over all C(7,3) = 35 cache contents.
    let mut best: (Vec<u32>, f64) = (vec![], -1.0);
    let mut count = 0;
    for a in 1..=7u32 {
        for b in (a + 1)..=7 {
            for c in (b + 1)..=7 {
                count += 1;
                let p = hit_prob(&history, &[a, b, c]);
                if p > best.1 {
                    best = (vec![a, b, c], p);
                }
            }
        }
    }
    assert_eq!(count, 35);
    println!(
        "\nExhaustive optimum over all {count} contents: {{{}}} with request-hit probability {}",
        label(&best.0),
        f4(best.1)
    );
    assert_eq!(best.0, vec![1, 3, 5]);
    assert!((best.1 - 0.5).abs() < 1e-12);

    // OptCacheSelect finds the same optimum from the history alone.
    let requests: Vec<(Vec<u32>, f64)> = [
        vec![0u32, 2, 4],
        vec![1, 5, 6],
        vec![0, 4],
        vec![3, 5, 6],
        vec![2, 4],
        vec![4, 5, 6],
    ]
    .into_iter()
    .map(|files| (files, 1.0))
    .collect();
    let inst = FbcInstance::new(3, vec![1; 7], requests).expect("valid instance");
    let sel = opt_cache_select(&inst, &SelectOptions::default());
    let selected: Vec<u32> = sel.files.iter().map(|&l| l + 1).collect();
    println!(
        "OptCacheSelect chooses {{{}}} supporting {} of 6 requests.",
        label(&selected),
        sel.chosen.len()
    );
    assert_eq!(selected, vec![1, 3, 5]);

    let out = fbc_bench::results_dir().join("table2.csv");
    table.save_csv(&out).expect("write CSV");
    println!("\nCSV written to {}", out.display());
}

//! Convergence experiment: the running (windowed) byte miss ratio of each
//! policy over the course of the trace — how fast each policy's cache
//! converges onto the hot set, and where it settles. Complements the
//! steady-state tables of Figs. 6–8 with the time axis.
//!
//! ```text
//! cargo run --release -p fbc-bench --bin warmup_curve
//! ```

use fbc_baselines::PolicyKind;
use fbc_bench::{banner, paper_workload, results_dir, Experiment, BASE_CACHE};
use fbc_sim::report::{f4, sparkline, Table};
use fbc_sim::runner::{run_trace, RunConfig};
use fbc_sim::sweep::{default_threads, parallel_sweep};
use fbc_workload::Popularity;

fn main() {
    banner("Warmup curves — windowed byte miss ratio over the trace");
    let exp = Experiment::generate(paper_workload(Popularity::zipf(), 0.01, 18_001));
    let window = (exp.trace.len() as u64 / 20).max(1);
    let kinds = [
        PolicyKind::OptFileBundle,
        PolicyKind::Landlord,
        PolicyKind::Lru,
        PolicyKind::Arc,
        PolicyKind::Gdsf,
    ];

    let results = parallel_sweep(&kinds, default_threads(), |&kind| {
        let mut policy = kind.build();
        let name = policy.name().to_string();
        let m = run_trace(
            policy.as_mut(),
            &exp.trace,
            &RunConfig {
                series_window: Some(window),
                ..RunConfig::new(BASE_CACHE)
            },
        );
        (name, m)
    });

    let mut table = Table::new([
        "policy",
        "first-window bmr",
        "last-window bmr",
        "steady bmr (post-warmup)",
        "curve",
    ]);
    for (name, m) in &results {
        let series: Vec<f64> = m.series.iter().map(|p| p.byte_miss_ratio).collect();
        // Steady-state estimate: mean of the second half of the windows.
        let half = &series[series.len() / 2..];
        let steady = half.iter().sum::<f64>() / half.len() as f64;
        table.add_row([
            name.clone(),
            f4(series[0]),
            f4(*series.last().expect("non-empty series")),
            f4(steady),
            sparkline(&series),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nReading: every curve starts high (cold cache; the first window already\n\
         averages over early warmup) and falls as the hot set loads; OptFileBundle\n\
         both converges quickly and settles lowest, because its history-driven\n\
         selection stops evicting the combinations that recur."
    );

    let out = results_dir().join("warmup_curve.csv");
    table.save_csv(&out).expect("write CSV");
    println!("CSV written to {}", out.display());
}

//! # fbc-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index) plus Criterion micro-benchmarks. Every binary prints the rows /
//! series the paper reports and writes a CSV under `results/`.
//!
//! Common parameters follow §5.1/§5.2: a 10 GiB cache, a file population
//! totalling ~8x the cache with sizes uniform in `[1 MiB, frac · cache]`, a
//! pool of 400 distinct requests, and
//! 10 000 jobs drawn under uniform or Zipf popularity. Cache sizes are
//! reported "by the number of requests that can be accommodated in the
//! cache" (§5), i.e. as multiples of the mean request size.
//!
//! Set `FBC_QUICK=1` to shrink job counts ~10× (CI / smoke runs), and
//! `FBC_RESULTS=<dir>` to redirect CSV output.

#![warn(missing_docs)]

use fbc_core::policy::CachePolicy;
use fbc_core::types::{Bytes, GIB};
use fbc_sim::metrics::Metrics;
use fbc_sim::runner::{run_trace, RunConfig};
use fbc_workload::{Popularity, Trace, Workload, WorkloadConfig};
use std::path::PathBuf;

/// Where experiment CSVs go (`FBC_RESULTS`, default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FBC_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Whether to run in quick mode (`FBC_QUICK=1`): ~10× fewer jobs.
pub fn quick_mode() -> bool {
    std::env::var_os("FBC_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Number of jobs per run: 10 000 as in the paper, 1 000 in quick mode.
pub fn default_jobs() -> usize {
    if quick_mode() {
        1_000
    } else {
        10_000
    }
}

/// The base cache size all workloads are generated against.
pub const BASE_CACHE: Bytes = 10 * GIB;

/// The paper's standard workload configuration.
///
/// `max_file_frac` is the §5.1 "maximum size expressed as a percentage of
/// defined cache size": 0.01 for the *small files* experiments (Fig. 6),
/// 0.10 for *large files* (Fig. 7).
pub fn paper_workload(popularity: Popularity, max_file_frac: f64, seed: u64) -> WorkloadConfig {
    // The file population scales inversely with file size so that its
    // total is ~8x the cache in both the small-file (1%) and large-file
    // (10%) settings -- without capacity pressure every policy degenerates
    // to cold misses. 1600 files for Fig. 6, 160 for Fig. 7.
    let num_files = ((16.0 / max_file_frac).round() as usize).clamp(100, 10_000);
    WorkloadConfig {
        cache_size: BASE_CACHE,
        num_files,
        max_file_frac,
        pool_requests: 400,
        jobs: default_jobs(),
        files_per_request: (2, 6),
        popularity,
        seed,
    }
}

/// A generated workload together with the derived quantities experiments
/// sweep over.
pub struct Experiment {
    /// The workload (catalog + pool + job sequence).
    pub workload: Workload,
    /// Replayable trace view of the workload.
    pub trace: Trace,
    /// Mean request size in bytes.
    pub mean_request: f64,
}

impl Experiment {
    /// Generates a workload and its trace.
    pub fn generate(config: WorkloadConfig) -> Self {
        let workload = Workload::generate(config);
        let mean_request = workload.mean_request_bytes();
        let trace = Trace::new(workload.catalog.clone(), workload.jobs.clone());
        Self {
            workload,
            trace,
            mean_request,
        }
    }

    /// The cache size (bytes) that holds `k` average requests — the paper's
    /// unit for reporting cache sizes.
    pub fn cache_for_requests(&self, k: f64) -> Bytes {
        (self.mean_request * k).round() as Bytes
    }

    /// Runs a fresh policy built by `make` over the trace at the given
    /// cache size.
    pub fn run<P: CachePolicy>(&self, mut policy: P, cache_size: Bytes) -> Metrics {
        run_trace(&mut policy, &self.trace, &RunConfig::new(cache_size))
    }
}

/// The request-size sweep of Figs. 6–8: bundle-cardinality ranges. The
/// paper fixes the cache and "varie\[s\] the size of the incoming requests,
/// implicitly varying the size of the cache" measured in requests — larger
/// bundles mean fewer requests fit.
pub const REQUEST_SIZE_SWEEP: [(usize, usize); 5] = [(1, 2), (2, 4), (4, 8), (8, 16), (16, 24)];

/// One cell of the policy × popularity × request-size sweep matrix.
#[derive(Debug, Clone)]
pub struct MatrixPoint {
    /// The bundle-cardinality range of this workload.
    pub bundle_range: (usize, usize),
    /// Measured cache size in average requests (`BASE_CACHE` / mean
    /// request bytes) — the x-axis unit the paper reports.
    pub requests_per_cache: f64,
    /// Popularity distribution of the workload.
    pub popularity: Popularity,
    /// Policy name.
    pub policy: String,
    /// Full run metrics.
    pub metrics: Metrics,
}

/// Runs the Figs. 6–8 sweep: `OptFileBundle` vs. `Landlord`, uniform and
/// Zipf popularity, request sizes of [`REQUEST_SIZE_SWEEP`], a fixed
/// [`BASE_CACHE`]-sized cache, and files capped at `max_file_frac` of the
/// cache (0.01 for Fig. 6 "small files", 0.10 for Fig. 7 "large files").
///
/// Points are computed in parallel; the returned vector is ordered
/// (popularity, range, policy) with policy order `[OptFileBundle, Landlord]`.
pub fn policy_cache_sweep(max_file_frac: f64, seed: u64) -> Vec<MatrixPoint> {
    use fbc_baselines::Landlord;
    use fbc_core::optfilebundle::OptFileBundle;

    let pops = [Popularity::Uniform, Popularity::zipf()];
    // One workload per (popularity, bundle range).
    let experiments: Vec<(Popularity, (usize, usize), Experiment)> = pops
        .iter()
        .flat_map(|&p| {
            REQUEST_SIZE_SWEEP.iter().map(move |&range| {
                let mut cfg = paper_workload(p, max_file_frac, seed);
                cfg.files_per_request = range;
                (p, range, Experiment::generate(cfg))
            })
        })
        .collect();

    let mut cells: Vec<(usize, bool)> = Vec::new(); // (experiment idx, is_ofb)
    for ei in 0..experiments.len() {
        cells.push((ei, true));
        cells.push((ei, false));
    }
    let results = fbc_sim::sweep::parallel_sweep(
        &cells,
        fbc_sim::sweep::default_threads(),
        |&(ei, is_ofb)| {
            let exp = &experiments[ei].2;
            if is_ofb {
                exp.run(OptFileBundle::new(), BASE_CACHE)
            } else {
                exp.run(Landlord::new(), BASE_CACHE)
            }
        },
    );
    cells
        .into_iter()
        .zip(results)
        .map(|((ei, is_ofb), metrics)| {
            let (pop, range, ref exp) = experiments[ei];
            MatrixPoint {
                bundle_range: range,
                requests_per_cache: BASE_CACHE as f64 / exp.mean_request,
                popularity: pop,
                policy: if is_ofb { "OptFileBundle" } else { "Landlord" }.to_string(),
                metrics,
            }
        })
        .collect()
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Result of [`cache_membership_kernel`]: the dense slab/bitset
/// `CacheState` against its retained `HashMap`+`BTreeSet` twin on the
/// residency hot loop.
pub struct CacheKernelResult {
    /// Nanoseconds per probe (batched hit check + churn amortised), dense.
    pub dense_ns_per_op: f64,
    /// Same figure for `CacheStateReference`.
    pub reference_ns_per_op: f64,
    /// `reference_ns_per_op / dense_ns_per_op`.
    pub speedup: f64,
    /// Hit-count checksum; asserted equal between the two sides, so every
    /// benchmark run is also a differential test.
    pub hits: u64,
}

/// Micro-benchmark of the residency membership kernel shared by every
/// engine's hit/miss check: `passes` sweeps of `n` four-file bundle
/// probes (`supports`) over a full cache of `n` unit files from a `2n`
/// population, each miss churning one eviction plus one insertion. Both
/// representations replay the identical deterministic op stream; their
/// hit counts and final states must agree.
pub fn cache_membership_kernel(n: usize, passes: usize) -> CacheKernelResult {
    use fbc_core::bundle::Bundle;
    use fbc_core::cache::{CacheState, CacheStateReference};
    use fbc_core::catalog::FileCatalog;
    use fbc_core::types::FileId;
    use std::time::Instant;

    let catalog = FileCatalog::from_sizes(vec![1; 2 * n]);
    let mut state = 0xC0FFEE ^ ((n as u64) << 3);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let probes: Vec<Bundle> = (0..n)
        .map(|_| Bundle::from_raw((0..4).map(|_| (next() % (2 * n) as u64) as u32)))
        .collect();

    // One measured side; the macro keeps the op stream textually identical
    // for both cache types (no common trait to be generic over).
    macro_rules! side {
        ($cache:expr) => {{
            let mut cache = $cache;
            for f in 0..n as u32 {
                cache.insert(FileId(f), &catalog).expect("warm fill fits");
            }
            let mut hits = 0u64;
            let mut victim = 0u32; // rotates over the full id ring
            let start = Instant::now();
            for _ in 0..passes {
                for b in &probes {
                    if cache.supports(b) {
                        hits += 1;
                    } else {
                        // Miss: make room (next resident victim on the
                        // ring), then admit the first missing file.
                        while cache.evict(FileId(victim)).is_err() {
                            victim = (victim + 1) % (2 * n) as u32;
                        }
                        victim = (victim + 1) % (2 * n) as u32;
                        let missing = b.iter().find(|&f| !cache.contains(f));
                        if let Some(f) = missing {
                            cache.insert(f, &catalog).expect("room was made");
                        }
                    }
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            (
                elapsed * 1e9 / (passes * probes.len()) as f64,
                hits,
                cache.resident_files_sorted(),
            )
        }};
    }

    let (dense_ns, dense_hits, dense_state) = side!(CacheState::with_catalog(n as Bytes, &catalog));
    let (reference_ns, reference_hits, reference_state) =
        side!(CacheStateReference::new(n as Bytes));
    assert_eq!(
        dense_hits, reference_hits,
        "dense CacheState diverged from its reference twin (hit counts)"
    );
    assert_eq!(
        dense_state, reference_state,
        "dense CacheState diverged from its reference twin (final resident set)"
    );
    CacheKernelResult {
        dense_ns_per_op: dense_ns,
        reference_ns_per_op: reference_ns,
        speedup: reference_ns / dense_ns,
        hits: dense_hits,
    }
}

/// Pulls the first number following `key` out of `json` — a deliberately
/// naive parser for the handful of scalars the perf smoke gates read back
/// from the hand-rolled `BENCH_core.json` (the vendored serde shim has no
/// deserializer).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Byte span of the top-level `"name": { … }` section in a hand-rolled
/// `BENCH_core.json`: from the opening quote of the key to the section's
/// matching closing brace (inclusive). Brace matching ignores strings —
/// fine for our generated summaries, which never put braces in values.
fn section_span(json: &str, name: &str) -> Option<(usize, usize)> {
    let marker = format!("\"{name}\":");
    let mstart = json.find(&marker)?;
    let after = mstart + marker.len();
    let open = after + json[after..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((mstart, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// The `{ … }` object body of a top-level `"name": { … }` section of the
/// hand-rolled `BENCH_core.json`, if present.
pub fn extract_section(json: &str, name: &str) -> Option<String> {
    let (mstart, end) = section_span(json, name)?;
    let open = mstart + json[mstart..end].find('{')?;
    Some(json[open..end].to_string())
}

/// Inserts or replaces the top-level `"name": { … }` section in the
/// hand-rolled `BENCH_core.json` text, keeping every other key intact —
/// this is how `perf_decision` and `perf_eviction` share one summary file
/// without clobbering each other's headline numbers.
pub fn upsert_section(json: &str, name: &str, body: &str) -> String {
    let mut text = json.trim_end().to_string();
    if let Some((mstart, send)) = section_span(&text, name) {
        // Cut the old section together with its leading comma.
        let mut cut = mstart;
        while cut > 0 && (text.as_bytes()[cut - 1] as char).is_whitespace() {
            cut -= 1;
        }
        if cut > 0 && text.as_bytes()[cut - 1] == b',' {
            cut -= 1;
        }
        text.replace_range(cut..send, "");
    }
    let close = text.rfind('}').expect("BENCH summary is a JSON object");
    let mut head = text[..close].trim_end().to_string();
    if !head.ends_with('{') {
        head.push(',');
    }
    head.push_str(&format!("\n  \"{name}\": {body}\n}}\n"));
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::optfilebundle::OptFileBundle;

    #[test]
    fn experiment_generates_consistent_views() {
        let cfg = WorkloadConfig {
            jobs: 100,
            ..paper_workload(Popularity::Uniform, 0.01, 1)
        };
        let e = Experiment::generate(cfg);
        assert_eq!(e.trace.requests.len(), 100);
        assert!(e.mean_request > 0.0);
        assert!(e.cache_for_requests(4.0) > e.cache_for_requests(2.0));
    }

    #[test]
    fn bench_json_sections_round_trip() {
        let base = "{\n  \"bench\": \"perf_decision\",\n  \"headline_decisions_per_sec\": 1307.5,\n  \"results\": [\n    {\"n\": 250}\n  ]\n}\n";
        let body = "{\n    \"headline_evictions_per_sec\": 42.0,\n    \"results\": [\n      {\"policy\": \"LRU\"}\n    ]\n  }";
        let merged = upsert_section(base, "perf_eviction", body);
        assert_eq!(
            extract_section(&merged, "perf_eviction").as_deref(),
            Some(body)
        );
        assert_eq!(
            extract_number(&merged, "\"headline_decisions_per_sec\":"),
            Some(1307.5)
        );
        assert_eq!(
            extract_number(&merged, "\"headline_evictions_per_sec\":"),
            Some(42.0)
        );
        // Replacing is idempotent: no duplicate sections, other keys intact.
        let body2 = "{\n    \"headline_evictions_per_sec\": 43.5\n  }";
        let merged2 = upsert_section(&merged, "perf_eviction", body2);
        assert_eq!(merged2.matches("perf_eviction").count(), 1);
        assert_eq!(
            extract_number(&merged2, "\"headline_evictions_per_sec\":"),
            Some(43.5)
        );
        assert_eq!(
            extract_number(&merged2, "\"headline_decisions_per_sec\":"),
            Some(1307.5)
        );
        // Inserting into an empty object needs no comma.
        let fresh = upsert_section("{\n}\n", "perf_eviction", body2);
        assert_eq!(
            extract_number(&fresh, "\"headline_evictions_per_sec\":"),
            Some(43.5)
        );
    }

    #[test]
    fn run_produces_metrics() {
        let cfg = WorkloadConfig {
            jobs: 50,
            ..paper_workload(Popularity::zipf(), 0.01, 2)
        };
        let e = Experiment::generate(cfg);
        let m = e.run(OptFileBundle::new(), e.cache_for_requests(4.0));
        assert_eq!(m.jobs, 50);
        assert!(m.byte_miss_ratio() > 0.0); // cold misses at least
    }
}

//! Minimal dependency-free command-line argument parsing.
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag` forms, plus
//! human-friendly byte sizes (`10GiB`, `512MiB`, `4096`) and `MIN:MAX`
//! ranges.

use fbc_core::types::{Bytes, GIB, KIB, MIB, TIB};
use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    /// Positional (non-flag) arguments in order.
    pub positional: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(ArgError("unexpected bare '--'".into()));
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    args.flags.insert(k.to_string(), v.to_string());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let v = iter.next().expect("peeked");
                    args.flags.insert(stripped.to_string(), v);
                } else {
                    // Boolean flag.
                    args.flags.insert(stripped.to_string(), "true".to_string());
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Raw string value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value '{v}' for --{key}"))),
        }
    }

    /// Byte-size flag (`10GiB` etc.) with a default.
    pub fn get_bytes_or(&self, key: &str, default: Bytes) -> Result<Bytes, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => parse_bytes(v).map_err(|e| ArgError(format!("--{key}: {e}"))),
        }
    }

    /// `MIN:MAX` inclusive usize range flag with a default.
    pub fn get_range_or(
        &self,
        key: &str,
        default: (usize, usize),
    ) -> Result<(usize, usize), ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let (a, b) = v
                    .split_once(':')
                    .ok_or_else(|| ArgError(format!("--{key}: expected MIN:MAX, got '{v}'")))?;
                let lo: usize = a
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad minimum '{a}'")))?;
                let hi: usize = b
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad maximum '{b}'")))?;
                if lo == 0 || lo > hi {
                    return Err(ArgError(format!("--{key}: invalid range {lo}:{hi}")));
                }
                Ok((lo, hi))
            }
        }
    }

    /// Rejects unknown flags — catches typos like `--cach`.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses a byte size: a plain integer, or an integer/decimal with a
/// `KiB`/`MiB`/`GiB`/`TiB`/`KB`/`MB`/`GB`/`TB`/`B` suffix
/// (decimal suffixes are treated as their binary counterparts).
pub fn parse_bytes(s: &str) -> Result<Bytes, ArgError> {
    let s = s.trim();
    let (number, unit): (&str, Bytes) =
        if let Some(p) = s.strip_suffix("TiB").or(s.strip_suffix("TB")) {
            (p, TIB)
        } else if let Some(p) = s.strip_suffix("GiB").or(s.strip_suffix("GB")) {
            (p, GIB)
        } else if let Some(p) = s.strip_suffix("MiB").or(s.strip_suffix("MB")) {
            (p, MIB)
        } else if let Some(p) = s.strip_suffix("KiB").or(s.strip_suffix("KB")) {
            (p, KIB)
        } else if let Some(p) = s.strip_suffix('B') {
            (p, 1)
        } else {
            (s, 1)
        };
    let number = number.trim();
    let value: f64 = number
        .parse()
        .map_err(|_| ArgError(format!("invalid byte size '{s}'")))?;
    if !(value.is_finite() && value >= 0.0) {
        return Err(ArgError(format!("invalid byte size '{s}'")));
    }
    Ok((value * unit as f64).round() as Bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn flag_forms() {
        let a = parse(&["trace.txt", "--jobs", "100", "--popularity=zipf", "--quick"]);
        assert_eq!(a.get("jobs"), Some("100"));
        assert_eq!(a.get("popularity"), Some("zipf"));
        assert!(a.has("quick"));
        assert_eq!(a.positional, vec!["trace.txt"]);
    }

    #[test]
    fn flag_greedily_takes_following_value() {
        // A flag followed by a non-flag token consumes it as its value —
        // boolean flags must come last or use the --flag=true form.
        let a = parse(&["--quick", "trace.txt"]);
        assert_eq!(a.get("quick"), Some("trace.txt"));
        assert!(a.positional.is_empty());
    }

    #[test]
    fn typed_getters() {
        let a = parse(&["--jobs", "100"]);
        assert_eq!(a.get_or("jobs", 5usize).unwrap(), 100);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.get_or::<usize>("jobs", 0).is_ok());
        let bad = parse(&["--jobs", "x"]);
        assert!(bad.get_or::<usize>("jobs", 0).is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert_eq!(parse_bytes("1KiB").unwrap(), 1024);
        assert_eq!(parse_bytes("10GiB").unwrap(), 10 * GIB);
        assert_eq!(parse_bytes("1.5MiB").unwrap(), 3 * MIB / 2);
        assert_eq!(parse_bytes("2GB").unwrap(), 2 * GIB);
        assert_eq!(parse_bytes("512B").unwrap(), 512);
        assert!(parse_bytes("abc").is_err());
        assert!(parse_bytes("-5MiB").is_err());
    }

    #[test]
    fn ranges() {
        let a = parse(&["--bundle", "2:6"]);
        assert_eq!(a.get_range_or("bundle", (1, 1)).unwrap(), (2, 6));
        assert_eq!(a.get_range_or("other", (1, 4)).unwrap(), (1, 4));
        let bad = parse(&["--bundle", "6:2"]);
        assert!(bad.get_range_or("bundle", (1, 1)).is_err());
        let bad = parse(&["--bundle", "3"]);
        assert!(bad.get_range_or("bundle", (1, 1)).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse(&["--cach", "10"]);
        assert!(a.reject_unknown(&["cache"]).is_err());
        let ok = parse(&["--cache", "10"]);
        assert!(ok.reject_unknown(&["cache"]).is_ok());
    }

    #[test]
    fn required_flags() {
        let a = parse(&[]);
        assert!(a.require("trace").is_err());
        let b = parse(&["--trace", "t.txt"]);
        assert_eq!(b.require("trace").unwrap(), "t.txt");
    }
}

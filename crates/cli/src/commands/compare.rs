//! `fbcache compare` — run several policies over one trace and tabulate.

use crate::args::{ArgError, Args};
use crate::policies::{policy_by_name, POLICY_NAMES};
use fbc_sim::queue::QueueConfig;
use fbc_sim::report::{f4, Table};
use fbc_sim::runner::{run_trace, RunConfig};
use fbc_workload::{transform, Trace};

/// Usage text for `compare`.
pub const USAGE: &str = "\
fbcache compare --trace <FILE> --cache <SIZE> [options]

Run several policies over the same trace and print a comparison table.

Options:
  --trace FILE        input trace (required)
  --cache SIZE        disk-cache capacity (required)
  --policies LIST     comma-separated policy names
                      [optfilebundle,landlord,lru,arc,gdsf,belady]
  --queue N           queued admission (highest-relative-value, q=N) [1]
  --scans F           inject one-shot scan jobs with probability F [0]
  --warmup N          exclude the first N jobs from the metrics [0]
  --csv FILE          also write the table as CSV
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "trace", "cache", "policies", "queue", "scans", "warmup", "csv",
    ])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let list = args
        .get("policies")
        .unwrap_or("optfilebundle,landlord,lru,arc,gdsf,belady");
    let names: Vec<&str> = list.split(',').map(str::trim).collect();
    let queue_len: usize = args.get_or("queue", 1usize)?;
    let scans: f64 = args.get_or("scans", 0.0f64)?;
    if !(0.0..=1.0).contains(&scans) {
        return Err(ArgError(format!("--scans must be in [0, 1], got {scans}")));
    }
    let warmup: u64 = args.get_or("warmup", 0u64)?;

    let mut trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    if scans > 0.0 {
        trace = transform::with_scans(&trace, scans, 0x5CA4);
        println!("scan injection: trace grew to {} jobs", trace.len());
    }
    let run_cfg = RunConfig {
        warmup_jobs: warmup,
        ..RunConfig::new(cache)
    };

    let mut table = Table::new([
        "policy",
        "byte miss ratio",
        "request-hit ratio",
        "GiB fetched",
        "GiB evicted",
    ]);
    for name in names {
        let mut policy = policy_by_name(name).ok_or_else(|| {
            ArgError(format!(
                "unknown policy '{name}' (one of: {})",
                POLICY_NAMES.join(", ")
            ))
        })?;
        let m = if queue_len > 1 {
            fbc_sim::queue::run_queued(
                policy.as_mut(),
                &trace,
                &run_cfg,
                &QueueConfig::hrv(queue_len),
            )
        } else {
            run_trace(policy.as_mut(), &trace, &run_cfg)
        };
        table.add_row([
            policy.name().to_string(),
            f4(m.byte_miss_ratio()),
            f4(m.request_hit_ratio()),
            format!("{:.2}", m.fetched_bytes as f64 / (1u64 << 30) as f64),
            format!("{:.2}", m.evicted_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    print!("{}", table.to_ascii());
    if let Some(csv) = args.get("csv") {
        table
            .save_csv(csv)
            .map_err(|e| ArgError(format!("cannot write {csv}: {e}")))?;
        println!("CSV written to {csv}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn compare_runs_and_writes_csv() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("fbc_cli_compare_test.trace");
        let csv_path = dir.join("fbc_cli_compare_test.csv");
        Trace::new(
            FileCatalog::from_sizes(vec![5; 6]),
            (0..20u32).map(|i| Bundle::from_raw([i % 6])).collect(),
        )
        .save(&trace_path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                trace_path.to_str().unwrap(),
                "--cache",
                "15B",
                "--policies",
                "lru,fifo",
                "--csv",
                csv_path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.contains("LRU"));
        assert!(csv.contains("FIFO"));
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn bad_policy_list_is_an_error() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("fbc_cli_compare_bad.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1]),
            vec![Bundle::from_raw([0])],
        )
        .save(&trace_path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                trace_path.to_str().unwrap(),
                "--cache",
                "1B",
                "--policies",
                "lru,wat",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
        std::fs::remove_file(&trace_path).ok();
    }
}

//! `fbcache generate` — generate a synthetic workload and write its trace.

use crate::args::{ArgError, Args};
use fbc_core::types::GIB;
use fbc_workload::{Popularity, Workload, WorkloadConfig};

/// Usage text for `generate`.
pub const USAGE: &str = "\
fbcache generate --output <FILE> [options]

Generate a synthetic file-bundle workload (paper §5.1) and save its trace.

Options:
  --output FILE          output trace path (required)
  --cache-size SIZE      cache size the workload is scaled to [10GiB]
  --files N              number of files in mass storage [800]
  --max-file-frac F      max file size as a fraction of the cache [0.01]
  --pool N               distinct requests in the pool [200]
  --jobs N               number of jobs in the trace [10000]
  --bundle MIN:MAX       files per request, inclusive range [2:6]
  --popularity DIST      uniform | zipf | zipf:<theta> [zipf]
  --seed N               RNG seed [2004]
";

/// Parses a popularity spec (`uniform`, `zipf`, `zipf:0.8`).
pub fn parse_popularity(s: &str) -> Result<Popularity, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "uniform" | "random" => Ok(Popularity::Uniform),
        "zipf" => Ok(Popularity::zipf()),
        other => {
            if let Some(theta) = other.strip_prefix("zipf:") {
                let theta: f64 = theta
                    .parse()
                    .map_err(|_| ArgError(format!("bad zipf theta '{theta}'")))?;
                if !(theta.is_finite() && theta > 0.0) {
                    return Err(ArgError(format!(
                        "zipf theta must be positive, got {theta}"
                    )));
                }
                Ok(Popularity::Zipf { theta })
            } else {
                Err(ArgError(format!(
                    "unknown popularity '{s}' (uniform | zipf | zipf:<theta>)"
                )))
            }
        }
    }
}

/// Builds the workload config from parsed flags.
pub fn config_from_args(args: &Args) -> Result<WorkloadConfig, ArgError> {
    Ok(WorkloadConfig {
        cache_size: args.get_bytes_or("cache-size", 10 * GIB)?,
        num_files: args.get_or("files", 800usize)?,
        max_file_frac: args.get_or("max-file-frac", 0.01f64)?,
        pool_requests: args.get_or("pool", 200usize)?,
        jobs: args.get_or("jobs", 10_000usize)?,
        files_per_request: args.get_range_or("bundle", (2, 6))?,
        popularity: parse_popularity(args.get("popularity").unwrap_or("zipf"))?,
        seed: args.get_or("seed", 2004u64)?,
    })
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "output",
        "cache-size",
        "files",
        "max-file-frac",
        "pool",
        "jobs",
        "bundle",
        "popularity",
        "seed",
    ])?;
    let output = args.require("output")?.to_string();
    let config = config_from_args(args)?;
    let workload = Workload::generate(config);
    println!(
        "generated: {} files, {} distinct requests, {} jobs, mean request {}",
        workload.catalog.len(),
        workload.pool.len(),
        workload.jobs.len(),
        fbc_core::types::format_bytes(workload.mean_request_bytes() as u64),
    );
    println!(
        "cache of {} holds ~{:.1} average requests",
        fbc_core::types::format_bytes(config.cache_size),
        workload.requests_per_cache()
    );
    let trace = workload.into_trace();
    trace
        .save(&output)
        .map_err(|e| ArgError(format!("cannot write {output}: {e}")))?;
    println!("trace written to {output}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_specs() {
        assert_eq!(parse_popularity("uniform").unwrap(), Popularity::Uniform);
        assert_eq!(parse_popularity("zipf").unwrap(), Popularity::zipf());
        assert_eq!(
            parse_popularity("zipf:0.5").unwrap(),
            Popularity::Zipf { theta: 0.5 }
        );
        assert!(parse_popularity("zipf:-1").is_err());
        assert!(parse_popularity("pareto").is_err());
    }

    #[test]
    fn config_defaults_and_overrides() {
        let args = Args::parse(
            ["--jobs", "50", "--bundle", "1:3", "--popularity", "uniform"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let cfg = config_from_args(&args).unwrap();
        assert_eq!(cfg.jobs, 50);
        assert_eq!(cfg.files_per_request, (1, 3));
        assert_eq!(cfg.popularity, Popularity::Uniform);
        assert_eq!(cfg.cache_size, 10 * GIB); // default
    }

    #[test]
    fn end_to_end_generate_writes_trace() {
        let path = std::env::temp_dir().join("fbc_cli_generate_test.trace");
        let args = Args::parse(
            [
                "--output",
                path.to_str().unwrap(),
                "--jobs",
                "20",
                "--files",
                "30",
                "--pool",
                "10",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        let trace = fbc_workload::Trace::load(&path).unwrap();
        assert_eq!(trace.len(), 20);
        std::fs::remove_file(&path).ok();
    }
}

//! `fbcache grid` — replay a trace through the discrete-event data-grid
//! (SRM + MSS + WAN) and report response times and throughput.

use crate::args::{ArgError, Args};
use crate::obs::{emit, obs_from_args};
use crate::policies::{policy_by_name, policy_kind_by_name, POLICY_NAMES};
use fbc_core::policy::SendPolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::concurrent::{run_concurrent_grid_observed, ConcurrentConfig};
use fbc_grid::engine::{run_grid_observed, GridConfig};
use fbc_grid::faults::{FaultPlan, PRESET_NAMES};
use fbc_grid::mss::MssConfig;
use fbc_grid::network::LinkConfig;
use fbc_grid::shard::ShardBy;
use fbc_grid::srm::{RetryPolicy, SrmConfig};
use fbc_grid::time::SimDuration;
use fbc_workload::Trace;

/// Usage text for `grid`.
pub const USAGE: &str = "\
fbcache grid --trace <FILE> --cache <SIZE> [options]

Run a trace through the discrete-event data-grid simulation.

Options:
  --trace FILE          input trace (required)
  --cache SIZE          SRM disk-cache capacity (required)
  --policy NAME         replacement policy [optfilebundle]
  --rate R              Poisson arrival rate, jobs/second [2.0]
  --arrival-seed N      arrival-process seed [1]
  --concurrency N       jobs in service at once [4]
  --drives N            MSS tape drives [4]
  --mount-secs S        MSS mount latency in seconds [5]
  --drive-mbps M        per-drive bandwidth, MB/s [60]
  --link-ms MS          WAN latency in milliseconds [10]
  --link-mbps M         WAN bandwidth, MB/s [125]
  --faults SPEC         fault-injection plan: 'preset:NAME' (one of:
                        tape-outage, flaky-wan, blackout) or ';'-separated
                        clauses like 'drive=0,60,300;transient=0.01;seed=7'
  --max-retries N       fetch retries before a job fails [5]
  --fetch-timeout-secs S  abandon a fetch attempt after S seconds [none]
  --shards N            split the SRM into N decision shards [1]
  --workers M           worker threads executing shards [= shards]
  --shard-by MODE       shard routing: 'file' (lead file) or 'bundle' [file]
  --obs                 print the observability counter table after the run
  --obs-trace FILE      write the JSONL event trace to FILE (implies --obs)

With --shards 1 (the default) the run is the single-threaded engine,
byte-identical to previous releases; --shards N splits the cache and the
request stream over N independent shard engines (see DESIGN.md §12).
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "trace",
        "cache",
        "policy",
        "rate",
        "arrival-seed",
        "concurrency",
        "drives",
        "mount-secs",
        "drive-mbps",
        "link-ms",
        "link-mbps",
        "faults",
        "max-retries",
        "fetch-timeout-secs",
        "shards",
        "workers",
        "shard-by",
        "obs",
        "obs-trace",
    ])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let policy_name = args.get("policy").unwrap_or("optfilebundle");
    let mut policy = policy_by_name(policy_name).ok_or_else(|| {
        ArgError(format!(
            "unknown policy '{policy_name}' (one of: {})",
            POLICY_NAMES.join(", ")
        ))
    })?;

    let config = GridConfig {
        srm: SrmConfig {
            cache_size: cache,
            max_concurrent_jobs: args.get_or("concurrency", 4usize)?,
            ..SrmConfig::default()
        },
        mss: MssConfig {
            drives: args.get_or("drives", 4usize)?,
            mount_latency: SimDuration::from_secs_f64(args.get_or("mount-secs", 5.0f64)?),
            drive_bandwidth: args.get_or("drive-mbps", 60.0f64)? * 1e6,
        },
        link: LinkConfig {
            latency: SimDuration::from_secs_f64(args.get_or("link-ms", 10.0f64)? / 1e3),
            bandwidth: args.get_or("link-mbps", 125.0f64)? * 1e6,
        },
        retry: RetryPolicy {
            max_retries: args.get_or("max-retries", 5u32)?,
            fetch_timeout: match args.get("fetch-timeout-secs") {
                Some(s) => Some(SimDuration::from_secs_f64(s.parse().map_err(|_| {
                    ArgError(format!("bad --fetch-timeout-secs value '{s}'"))
                })?)),
                None => None,
            },
            ..RetryPolicy::default()
        },
        full_response_log: false,
    };
    let rate: f64 = args.get_or("rate", 2.0f64)?;
    let seed: u64 = args.get_or("arrival-seed", 1u64)?;
    let plan =
        match args.get("faults") {
            Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| {
                ArgError(format!("bad --faults spec: {e} (presets: {PRESET_NAMES})"))
            })?),
            None => None,
        };
    if let Some(plan) = &plan {
        plan.validate_for_drives(config.mss.drives)
            .map_err(|e| ArgError(format!("bad --faults spec: {e}")))?;
    }

    let shards: usize = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    let workers: usize = args.get_or("workers", shards)?;
    let shard_by = match args.get("shard-by") {
        Some(s) => ShardBy::parse(s).ok_or_else(|| {
            ArgError(format!("bad --shard-by value '{s}' (one of: file, bundle)"))
        })?,
        None => ShardBy::File,
    };
    // Any sharding flag routes through the concurrent front-end, so
    // `--shards 1` exercises (and demonstrates) its engine equivalence.
    let concurrent = args.get("shards").is_some()
        || args.get("workers").is_some()
        || args.get("shard-by").is_some();

    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    let arrivals = schedule_arrivals(&trace.requests, ArrivalProcess::Poisson { rate, seed });
    let obs = obs_from_args(args);
    let stats = if concurrent {
        let kind = policy_kind_by_name(policy_name)
            .expect("policy name was validated by policy_by_name above");
        let factory = move || -> SendPolicy { kind.build_send() };
        let cfg = ConcurrentConfig {
            grid: config,
            shards,
            workers,
            shard_by,
            ..ConcurrentConfig::default()
        };
        let cstats = run_concurrent_grid_observed(
            &factory,
            &trace.catalog,
            &arrivals,
            &cfg,
            plan.as_ref(),
            &obs,
        );
        let routed: Vec<String> = cstats.routed.iter().map(|n| n.to_string()).collect();
        println!(
            "shards:            {shards} ({} routing, {} workers)",
            shard_by.label(),
            workers.clamp(1, shards)
        );
        println!("routed:            [{}]", routed.join(", "));
        cstats.overall
    } else {
        run_grid_observed(
            policy.as_mut(),
            &trace.catalog,
            &arrivals,
            &config,
            plan.as_ref(),
            &obs,
        )
    };

    println!("policy:            {}", policy.name());
    println!("completed:         {}", stats.completed);
    println!("failed:            {}", stats.failed);
    println!("rejected:          {}", stats.rejected);
    println!("availability:      {:.4}", stats.availability());
    println!("byte miss ratio:   {:.4}", stats.cache.byte_miss_ratio());
    println!("fetch attempts:    {}", stats.fetch_attempts);
    println!("fetch retries:     {}", stats.fetch_retries);
    println!("fetch timeouts:    {}", stats.fetch_timeouts);
    println!("transient errors:  {}", stats.transient_fetch_errors);
    println!("mean response:     {}", stats.mean_response());
    println!("p50 response:      {}", stats.percentile_response(0.50));
    println!("p95 response:      {}", stats.percentile_response(0.95));
    println!("p99 response:      {}", stats.percentile_response(0.99));
    println!("makespan:          {}", stats.makespan);
    println!("throughput:        {:.3} jobs/s", stats.throughput());
    emit(&obs, args)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn grid_command_end_to_end() {
        let path = std::env::temp_dir().join("fbc_cli_grid_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 4]),
            vec![
                Bundle::from_raw([0, 1]),
                Bundle::from_raw([2, 3]),
                Bundle::from_raw([0, 1]),
            ],
        )
        .save(&path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "4MiB",
                "--rate",
                "10",
                "--mount-secs",
                "0.5",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grid_obs_trace_is_deterministic_under_faults() {
        let path = std::env::temp_dir().join("fbc_cli_grid_obs_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 4]),
            vec![
                Bundle::from_raw([0, 1]),
                Bundle::from_raw([2, 3]),
                Bundle::from_raw([0, 1]),
            ],
        )
        .save(&path)
        .unwrap();
        let out = std::env::temp_dir().join("fbc_cli_grid_obs_test.jsonl");
        let out_s = out.to_str().unwrap().to_string();
        let argv = [
            "--trace",
            path.to_str().unwrap(),
            "--cache",
            "4MiB",
            "--mount-secs",
            "0.5",
            "--faults",
            "transient=0.2;seed=9",
            "--obs-trace",
            &out_s,
        ];
        let args = Args::parse(argv.iter().map(|s| s.to_string())).unwrap();
        run(&args).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(first.contains("\"ev\":\"arrival\""));
        assert!(first.contains("\"ev\":\"fetch\""));
        run(&args).unwrap();
        assert_eq!(first, std::fs::read_to_string(&out).unwrap());
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grid_command_sharded_run_and_flag_validation() {
        let path = std::env::temp_dir().join("fbc_cli_grid_shards_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 8]),
            (0..20u32)
                .map(|i| Bundle::from_raw([i % 8, (i * 3 + 1) % 8]))
                .collect::<Vec<_>>(),
        )
        .save(&path)
        .unwrap();
        let base = [
            "--trace",
            path.to_str().unwrap(),
            "--cache",
            "16MiB",
            "--mount-secs",
            "0.5",
        ];
        let with =
            |extra: &[&str]| Args::parse(base.iter().chain(extra).map(|s| s.to_string())).unwrap();
        run(&with(&["--shards", "4", "--workers", "2"])).unwrap();
        run(&with(&["--shards", "2", "--shard-by", "bundle"])).unwrap();
        // shards=1 still goes through the concurrent front-end cleanly.
        run(&with(&["--shards", "1"])).unwrap();
        assert!(run(&with(&["--shards", "0"])).is_err());
        assert!(run(&with(&["--shards", "2", "--shard-by", "nope"])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grid_command_accepts_faults_flag() {
        let path = std::env::temp_dir().join("fbc_cli_grid_faults_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 2]),
            vec![Bundle::from_raw([0]), Bundle::from_raw([1])],
        )
        .save(&path)
        .unwrap();
        let base = [
            "--trace",
            path.to_str().unwrap(),
            "--cache",
            "4MiB",
            "--mount-secs",
            "0.5",
        ];
        let with =
            |extra: &[&str]| Args::parse(base.iter().chain(extra).map(|s| s.to_string())).unwrap();
        // A blackout with a tiny retry budget still terminates.
        run(&with(&[
            "--faults",
            "preset:blackout",
            "--max-retries",
            "1",
        ]))
        .unwrap();
        // Inline clause spec with a timeout.
        run(&with(&[
            "--faults",
            "drive=*,0,2;seed=3",
            "--fetch-timeout-secs",
            "1",
        ]))
        .unwrap();
        // Garbage specs are rejected with a helpful error.
        assert!(run(&with(&["--faults", "nonsense"])).is_err());
        assert!(run(&with(&["--faults", "preset:unknown"])).is_err());
        // An out-of-range drive index is a clean error, not a panic.
        let err = run(&with(&["--faults", "drive=9,0,10"])).unwrap_err();
        assert!(err.0.contains("drive 9"), "unhelpful error: {}", err.0);
        std::fs::remove_file(&path).ok();
    }
}

//! `fbcache grid` — replay a trace through the discrete-event data-grid
//! (SRM + MSS + WAN) and report response times and throughput.

use crate::args::{ArgError, Args};
use crate::policies::{policy_by_name, POLICY_NAMES};
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::engine::{run_grid, GridConfig};
use fbc_grid::mss::MssConfig;
use fbc_grid::network::LinkConfig;
use fbc_grid::srm::SrmConfig;
use fbc_grid::time::SimDuration;
use fbc_workload::Trace;

/// Usage text for `grid`.
pub const USAGE: &str = "\
fbcache grid --trace <FILE> --cache <SIZE> [options]

Run a trace through the discrete-event data-grid simulation.

Options:
  --trace FILE          input trace (required)
  --cache SIZE          SRM disk-cache capacity (required)
  --policy NAME         replacement policy [optfilebundle]
  --rate R              Poisson arrival rate, jobs/second [2.0]
  --arrival-seed N      arrival-process seed [1]
  --concurrency N       jobs in service at once [4]
  --drives N            MSS tape drives [4]
  --mount-secs S        MSS mount latency in seconds [5]
  --drive-mbps M        per-drive bandwidth, MB/s [60]
  --link-ms MS          WAN latency in milliseconds [10]
  --link-mbps M         WAN bandwidth, MB/s [125]
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "trace",
        "cache",
        "policy",
        "rate",
        "arrival-seed",
        "concurrency",
        "drives",
        "mount-secs",
        "drive-mbps",
        "link-ms",
        "link-mbps",
    ])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let policy_name = args.get("policy").unwrap_or("optfilebundle");
    let mut policy = policy_by_name(policy_name).ok_or_else(|| {
        ArgError(format!(
            "unknown policy '{policy_name}' (one of: {})",
            POLICY_NAMES.join(", ")
        ))
    })?;

    let config = GridConfig {
        srm: SrmConfig {
            cache_size: cache,
            max_concurrent_jobs: args.get_or("concurrency", 4usize)?,
            ..SrmConfig::default()
        },
        mss: MssConfig {
            drives: args.get_or("drives", 4usize)?,
            mount_latency: SimDuration::from_secs_f64(args.get_or("mount-secs", 5.0f64)?),
            drive_bandwidth: args.get_or("drive-mbps", 60.0f64)? * 1e6,
        },
        link: LinkConfig {
            latency: SimDuration::from_secs_f64(args.get_or("link-ms", 10.0f64)? / 1e3),
            bandwidth: args.get_or("link-mbps", 125.0f64)? * 1e6,
        },
    };
    let rate: f64 = args.get_or("rate", 2.0f64)?;
    let seed: u64 = args.get_or("arrival-seed", 1u64)?;

    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    let arrivals = schedule_arrivals(&trace.requests, ArrivalProcess::Poisson { rate, seed });
    let stats = run_grid(policy.as_mut(), &trace.catalog, &arrivals, &config);

    println!("policy:            {}", policy.name());
    println!("completed:         {}", stats.completed);
    println!("rejected:          {}", stats.rejected);
    println!("byte miss ratio:   {:.4}", stats.cache.byte_miss_ratio());
    println!("mean response:     {}", stats.mean_response());
    println!("p50 response:      {}", stats.percentile_response(0.50));
    println!("p95 response:      {}", stats.percentile_response(0.95));
    println!("p99 response:      {}", stats.percentile_response(0.99));
    println!("makespan:          {}", stats.makespan);
    println!("throughput:        {:.3} jobs/s", stats.throughput());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn grid_command_end_to_end() {
        let path = std::env::temp_dir().join("fbc_cli_grid_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 4]),
            vec![
                Bundle::from_raw([0, 1]),
                Bundle::from_raw([2, 3]),
                Bundle::from_raw([0, 1]),
            ],
        )
        .save(&path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "4MiB",
                "--rate",
                "10",
                "--mount-secs",
                "0.5",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }
}

//! `fbcache hybrid` — replay a trace under the hybrid execution model,
//! sweeping the one-file-at-a-time job fraction.

use crate::args::{ArgError, Args};
use crate::policies::{policy_by_name, POLICY_NAMES};
use fbc_sim::hybrid::run_hybrid;
use fbc_sim::report::{f2, f4, Table};
use fbc_sim::runner::RunConfig;
use fbc_workload::Trace;

/// Usage text for `hybrid`.
pub const USAGE: &str = "\
fbcache hybrid --trace <FILE> --cache <SIZE> [options]

Replay a trace with a mix of one-file-at-a-time and bundle-at-a-time jobs
(the paper's §6 hybrid execution model), sweeping the single-file fraction.

Options:
  --trace FILE    input trace (required)
  --cache SIZE    disk-cache capacity (required)
  --policy NAME   replacement policy [optfilebundle]
  --steps N       sweep points between 0 and 1 inclusive [5]
  --seed N        per-job model assignment seed [7]
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["trace", "cache", "policy", "steps", "seed"])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let policy_name = args.get("policy").unwrap_or("optfilebundle");
    let steps: usize = args.get_or("steps", 5usize)?;
    if steps < 2 {
        return Err(ArgError("--steps must be at least 2".into()));
    }
    let seed: u64 = args.get_or("seed", 7u64)?;

    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;

    let mut table = Table::new([
        "single-file fraction",
        "byte miss ratio",
        "job-hit ratio",
        "bundle jobs",
        "single jobs",
    ]);
    for i in 0..steps {
        let frac = i as f64 / (steps - 1) as f64;
        let mut policy = policy_by_name(policy_name).ok_or_else(|| {
            ArgError(format!(
                "unknown policy '{policy_name}' (one of: {})",
                POLICY_NAMES.join(", ")
            ))
        })?;
        let m = run_hybrid(policy.as_mut(), &trace, &RunConfig::new(cache), frac, seed);
        table.add_row([
            f2(frac),
            f4(m.overall.byte_miss_ratio()),
            f4(m.overall.request_hit_ratio()),
            m.bundle_jobs.jobs.to_string(),
            m.single_jobs.jobs.to_string(),
        ]);
    }
    print!("{}", table.to_ascii());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn hybrid_command_end_to_end() {
        let path = std::env::temp_dir().join("fbc_cli_hybrid_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![5; 8]),
            (0..30u32)
                .map(|i| Bundle::from_raw([i % 8, (i + 2) % 8]))
                .collect(),
        )
        .save(&path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "20B",
                "--steps",
                "3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn too_few_steps_rejected() {
        let args = Args::parse(
            ["--trace", "x", "--cache", "1MiB", "--steps", "1"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}

//! `fbcache info` — summarise a trace: size distributions, sharing degrees,
//! recurrence, reuse distances, and the Theorem 4.1 bound the workload
//! implies.

use crate::args::{ArgError, Args};
use fbc_workload::stats::analyze;
use fbc_workload::Trace;

/// Usage text for `info`.
pub const USAGE: &str = "\
fbcache info --trace <FILE>

Print summary statistics of a trace: file/request size distributions,
file-sharing degrees, request recurrence, reuse-distance histogram and the
approximation bound the maximum degree implies.
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["trace"])?;
    let trace_path = args.require("trace")?;
    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    let stats = analyze(&trace);

    let fb = fbc_core::types::format_bytes;
    println!("trace:                {trace_path}");
    println!("files in catalog:     {}", trace.catalog.len());
    println!("files referenced:     {}", stats.distinct_files);
    println!("trace footprint:      {}", fb(stats.footprint_bytes));
    println!(
        "mean file size:       {}",
        fb(trace.catalog.mean_size() as u64)
    );

    println!("jobs:                 {}", stats.jobs);
    println!("distinct requests:    {}", stats.distinct_requests);
    println!("mean recurrence:      {:.2}", stats.mean_recurrence);
    println!("cold requests:        {}", stats.cold_requests);
    println!("mean bundle size:     {:.2} files", stats.mean_bundle_files);
    println!(
        "mean bundle bytes:    {}",
        fb(stats.mean_bundle_bytes as u64)
    );
    println!("max bundle bytes:     {}", fb(stats.max_bundle_bytes));
    println!(
        "total requested:      {}",
        fb(trace.total_requested_bytes())
    );

    println!("max file degree d:    {}", stats.max_file_degree);
    println!("mean file degree:     {:.2}", stats.mean_file_degree);
    println!(
        "greedy guarantee:     {:.4}  (½(1−e^(−1/d)), Theorem 4.1)",
        fbc_core::bounds::greedy_bound(stats.max_file_degree)
    );
    println!(
        "enumerated guarantee: {:.4}  (1−e^(−1/d))",
        fbc_core::bounds::enumerated_bound(stats.max_file_degree)
    );

    println!("reuse-gap histogram (jobs between recurrences):");
    for &(bound, count) in &stats.reuse_distance_buckets {
        let label = if bound == usize::MAX {
            "   >256".to_string()
        } else {
            format!("{bound:>7}")
        };
        println!("  <= {label}: {count}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn info_command_runs() {
        let path = std::env::temp_dir().join("fbc_cli_info_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![10, 20]),
            vec![
                Bundle::from_raw([0, 1]),
                Bundle::from_raw([0]),
                Bundle::from_raw([0, 1]),
            ],
        )
        .save(&path)
        .unwrap();
        let args = Args::parse(
            ["--trace", path.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_flag_errors() {
        let args = Args::parse(std::iter::empty()).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn unreadable_trace_errors() {
        let args = Args::parse(
            ["--trace", "/definitely/not/here.trace"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}

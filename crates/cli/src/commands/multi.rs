//! `fbcache multi` — run a trace through a multi-SRM cluster and compare
//! dispatch strategies.

use crate::args::{ArgError, Args};
use crate::policies::{policy_by_name, POLICY_NAMES};
use fbc_core::policy::CachePolicy;
use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
use fbc_grid::multi::{run_multi_grid, Dispatch, MultiGridConfig};
use fbc_grid::srm::SrmConfig;
use fbc_sim::report::{f2, f4, Table};
use fbc_workload::Trace;

/// Usage text for `multi`.
pub const USAGE: &str = "\
fbcache multi --trace <FILE> --cache <SIZE> [options]

Run a trace through a cluster of SRM nodes sharing one mass storage system,
comparing all three dispatch strategies (round-robin, least-loaded,
bundle-affinity).

Options:
  --trace FILE      input trace (required)
  --cache SIZE      per-node disk-cache capacity (required)
  --nodes N         SRM nodes in the cluster [4]
  --policy NAME     replacement policy on every node [optfilebundle]
  --rate R          Poisson arrival rate, jobs/second [4.0]
  --arrival-seed N  arrival-process seed [1]
";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["trace", "cache", "nodes", "policy", "rate", "arrival-seed"])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let nodes: usize = args.get_or("nodes", 4usize)?;
    if nodes == 0 {
        return Err(ArgError("--nodes must be at least 1".into()));
    }
    let policy_name = args.get("policy").unwrap_or("optfilebundle");
    if policy_by_name(policy_name).is_none() {
        return Err(ArgError(format!(
            "unknown policy '{policy_name}' (one of: {})",
            POLICY_NAMES.join(", ")
        )));
    }
    let rate: f64 = args.get_or("rate", 4.0f64)?;
    let seed: u64 = args.get_or("arrival-seed", 1u64)?;

    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    let arrivals = schedule_arrivals(&trace.requests, ArrivalProcess::Poisson { rate, seed });

    let mut table = Table::new([
        "dispatch",
        "byte miss ratio",
        "hit ratio",
        "mean resp (s)",
        "throughput (jobs/s)",
        "imbalance",
    ]);
    for dispatch in [
        Dispatch::RoundRobin,
        Dispatch::LeastLoaded,
        Dispatch::BundleAffinity,
    ] {
        let config = MultiGridConfig {
            srm: SrmConfig {
                cache_size: cache,
                ..SrmConfig::default()
            },
            nodes,
            mss: Default::default(),
            link: Default::default(),
            dispatch,
        };
        let mut policies: Vec<Box<dyn CachePolicy>> = (0..nodes)
            .map(|_| policy_by_name(policy_name).expect("validated above"))
            .collect();
        let stats = run_multi_grid(&mut policies, &trace.catalog, &arrivals, &config);
        table.add_row([
            dispatch.label().to_string(),
            f4(stats.overall.cache.byte_miss_ratio()),
            f4(stats.overall.cache.request_hit_ratio()),
            f2(stats.overall.mean_response().as_secs_f64()),
            f2(stats.overall.throughput()),
            f2(stats.routing_imbalance()),
        ]);
    }
    print!("{}", table.to_ascii());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn multi_command_end_to_end() {
        let path = std::env::temp_dir().join("fbc_cli_multi_test.trace");
        Trace::new(
            FileCatalog::from_sizes(vec![1_000_000; 6]),
            (0..20u32)
                .map(|i| Bundle::from_raw([i % 6, (i + 1) % 6]))
                .collect(),
        )
        .save(&path)
        .unwrap();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "4MiB",
                "--nodes",
                "2",
                "--rate",
                "20",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_nodes_rejected() {
        let args = Args::parse(
            ["--trace", "x", "--cache", "1MiB", "--nodes", "0"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}

//! `fbcache run` — replay a trace through one policy and print metrics.

use crate::args::{ArgError, Args};
use crate::obs::{emit, obs_from_args};
use crate::policies::{policy_by_name, POLICY_NAMES};
use fbc_sim::queue::{Discipline, QueueConfig};
use fbc_sim::runner::RunConfig;
use fbc_workload::Trace;

/// Usage text for `run`.
pub const USAGE: &str = "\
fbcache run --trace <FILE> --cache <SIZE> [options]

Replay a trace through a replacement policy and report the paper's metrics.

Options:
  --trace FILE          input trace (required)
  --cache SIZE          disk-cache capacity, e.g. 2GiB (required)
  --policy NAME         replacement policy [optfilebundle]
  --queue N             admission-queue length (1 = FCFS) [1]
  --discipline D        fcfs | hrv | sjf (with --queue > 1) [hrv]
  --latency             time every replacement decision and report
                        p50/p99/mean decision latency
  --obs                 print the observability counter table after the run
  --obs-trace FILE      write the JSONL event trace to FILE (implies --obs)
";

/// Parses a queue discipline name.
pub fn parse_discipline(s: &str) -> Result<Discipline, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "fcfs" => Ok(Discipline::Fcfs),
        "hrv" => Ok(Discipline::HighestRelativeValue),
        "sjf" => Ok(Discipline::ShortestJobFirst),
        other => Err(ArgError(format!(
            "unknown discipline '{other}' (fcfs | hrv | sjf)"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "trace",
        "cache",
        "policy",
        "queue",
        "discipline",
        "latency",
        "obs",
        "obs-trace",
    ])?;
    let trace_path = args.require("trace")?;
    let cache = args.get_bytes_or("cache", 0)?;
    if cache == 0 {
        return Err(ArgError("missing required flag --cache".into()));
    }
    let policy_name = args.get("policy").unwrap_or("optfilebundle");
    let mut policy = policy_by_name(policy_name).ok_or_else(|| {
        ArgError(format!(
            "unknown policy '{policy_name}' (one of: {})",
            POLICY_NAMES.join(", ")
        ))
    })?;
    let queue_len: usize = args.get_or("queue", 1usize)?;
    let discipline = parse_discipline(args.get("discipline").unwrap_or("hrv"))?;

    let trace =
        Trace::load(trace_path).map_err(|e| ArgError(format!("cannot read {trace_path}: {e}")))?;
    let run_cfg = RunConfig {
        record_latency: args.has("latency"),
        ..RunConfig::new(cache)
    };
    let obs = obs_from_args(args);
    let metrics = if queue_len > 1 {
        fbc_sim::queue::run_queued_observed(
            policy.as_mut(),
            &trace,
            &run_cfg,
            &QueueConfig {
                queue_len,
                discipline,
            },
            &obs,
        )
    } else {
        fbc_sim::runner::run_trace_observed(policy.as_mut(), &trace, &run_cfg, &obs)
    };

    println!("policy:              {}", policy.name());
    println!("jobs:                {}", metrics.jobs);
    println!("serviced:            {}", metrics.serviced);
    println!("request hits:        {}", metrics.hits);
    println!("request-hit ratio:   {:.4}", metrics.request_hit_ratio());
    println!("byte miss ratio:     {:.4}", metrics.byte_miss_ratio());
    println!("byte hit ratio:      {:.4}", metrics.byte_hit_ratio());
    println!(
        "bytes requested:     {}",
        fbc_core::types::format_bytes(metrics.requested_bytes)
    );
    println!(
        "bytes fetched:       {}",
        fbc_core::types::format_bytes(metrics.fetched_bytes)
    );
    println!(
        "bytes evicted:       {}",
        fbc_core::types::format_bytes(metrics.evicted_bytes)
    );
    println!(
        "volume per request:  {}",
        fbc_core::types::format_bytes(metrics.bytes_moved_per_request() as u64)
    );
    if !metrics.decision_latency.is_empty() {
        let l = &metrics.decision_latency;
        println!(
            "decision latency:    p50 {:.1}µs  p99 {:.1}µs  mean {:.1}µs  ({} samples)",
            l.p50() as f64 / 1e3,
            l.p99() as f64 / 1e3,
            l.mean() / 1e3,
            l.len()
        );
    }
    emit(&obs, args)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::bundle::Bundle;
    use fbc_core::catalog::FileCatalog;

    fn write_test_trace() -> std::path::PathBuf {
        let path = std::env::temp_dir().join("fbc_cli_run_test.trace");
        let trace = Trace::new(
            FileCatalog::from_sizes(vec![10, 20, 30]),
            vec![
                Bundle::from_raw([0, 1]),
                Bundle::from_raw([2]),
                Bundle::from_raw([0, 1]),
            ],
        );
        trace.save(&path).unwrap();
        path
    }

    #[test]
    fn discipline_parsing() {
        assert_eq!(parse_discipline("FCFS").unwrap(), Discipline::Fcfs);
        assert_eq!(
            parse_discipline("hrv").unwrap(),
            Discipline::HighestRelativeValue
        );
        assert!(parse_discipline("lifo").is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        let path = write_test_trace();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "60B",
                "--policy",
                "lru",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn latency_flag_is_accepted() {
        let path = write_test_trace();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "60B",
                "--latency",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn obs_trace_flag_writes_deterministic_jsonl() {
        let path = write_test_trace();
        let out = std::env::temp_dir().join("fbc_cli_run_obs_test.jsonl");
        let out_s = out.to_str().unwrap().to_string();
        let argv = [
            "--trace",
            path.to_str().unwrap(),
            "--cache",
            "60B",
            "--policy",
            "lru",
            "--obs-trace",
            &out_s,
        ];
        let args = Args::parse(argv.iter().map(|s| s.to_string())).unwrap();
        run(&args).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(first.lines().count() >= 3, "one event per job at least");
        assert!(first.contains("\"ev\":\"job\""));
        // Same invocation, byte-identical trace.
        run(&args).unwrap();
        assert_eq!(first, std::fs::read_to_string(&out).unwrap());
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_cache_is_an_error() {
        let path = write_test_trace();
        let args = Args::parse(
            ["--trace", path.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let path = write_test_trace();
        let args = Args::parse(
            [
                "--trace",
                path.to_str().unwrap(),
                "--cache",
                "60B",
                "--policy",
                "nope",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
        std::fs::remove_file(&path).ok();
    }
}

//! `fbcache scenario` — generate a domain-scenario trace (HENP, climate,
//! bitmap-index or the federated mix) instead of the §5.1 synthetic model.

use crate::args::{ArgError, Args};
use fbc_core::bundle::Bundle;
use fbc_core::catalog::FileCatalog;
use fbc_workload::scenarios::{
    BitmapConfig, BitmapScenario, ClimateConfig, ClimateScenario, FederatedConfig,
    FederatedScenario, HenpConfig, HenpScenario,
};
use fbc_workload::{PopularitySampler, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Usage text for `scenario`.
pub const USAGE: &str = "\
fbcache scenario --kind <KIND> --output <FILE> [options]

Generate a domain-flavoured workload trace (paper §1.1's motivating
applications) instead of the synthetic §5.1 model.

Options:
  --kind KIND        henp | climate | bitmap | federated (required)
  --output FILE      output trace path (required)
  --jobs N           number of jobs drawn from the scenario pool [5000]
  --popularity DIST  uniform | zipf | zipf:<theta> [zipf]
  --seed N           RNG seed for the job draw [11]
";

/// Builds the catalog and request pool for a scenario kind.
pub fn build_pool(kind: &str) -> Result<(FileCatalog, Vec<Bundle>), ArgError> {
    match kind.to_ascii_lowercase().as_str() {
        "henp" => {
            let s = HenpScenario::generate(HenpConfig::default());
            Ok((s.catalog, s.pool))
        }
        "climate" => {
            let s = ClimateScenario::generate(ClimateConfig::default());
            Ok((s.catalog, s.pool))
        }
        "bitmap" => {
            let s = BitmapScenario::generate(BitmapConfig::default());
            Ok((s.catalog, s.pool))
        }
        "federated" => {
            let s = FederatedScenario::generate(FederatedConfig::default());
            let pool = s.pool.into_iter().map(|(_, b)| b).collect();
            Ok((s.catalog, pool))
        }
        other => Err(ArgError(format!(
            "unknown scenario '{other}' (henp | climate | bitmap | federated)"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["kind", "output", "jobs", "popularity", "seed"])?;
    let kind = args.require("kind")?;
    let output = args.require("output")?.to_string();
    let jobs: usize = args.get_or("jobs", 5_000usize)?;
    let popularity =
        crate::commands::generate::parse_popularity(args.get("popularity").unwrap_or("zipf"))?;
    let seed: u64 = args.get_or("seed", 11u64)?;

    let (catalog, pool) = build_pool(kind)?;
    if pool.is_empty() {
        return Err(ArgError("scenario produced an empty pool".into()));
    }
    let sampler = PopularitySampler::new(popularity, pool.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let requests: Vec<Bundle> = (0..jobs)
        .map(|_| pool[sampler.sample(&mut rng)].clone())
        .collect();
    println!(
        "{kind} scenario: {} files ({}), {} distinct requests, {jobs} jobs ({})",
        catalog.len(),
        fbc_core::types::format_bytes(catalog.total_bytes()),
        pool.len(),
        popularity.label(),
    );
    let trace = Trace::new(catalog, requests);
    trace
        .save(&output)
        .map_err(|e| ArgError(format!("cannot write {output}: {e}")))?;
    println!("trace written to {output}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_a_pool() {
        for kind in ["henp", "climate", "bitmap", "federated"] {
            let (catalog, pool) = build_pool(kind).unwrap();
            assert!(!catalog.is_empty(), "{kind}");
            assert!(!pool.is_empty(), "{kind}");
            for b in &pool {
                assert!(b.iter().all(|f| catalog.contains(f)), "{kind}");
            }
        }
        assert!(build_pool("weather").is_err());
    }

    #[test]
    fn scenario_command_writes_a_loadable_trace() {
        let path = std::env::temp_dir().join("fbc_cli_scenario_test.trace");
        let args = Args::parse(
            [
                "--kind",
                "bitmap",
                "--output",
                path.to_str().unwrap(),
                "--jobs",
                "40",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        let trace = Trace::load(&path).unwrap();
        assert_eq!(trace.len(), 40);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_required_flags_error() {
        let args = Args::parse(["--kind", "henp"].iter().map(|s| s.to_string())).unwrap();
        assert!(run(&args).is_err());
        let args = Args::parse(std::iter::empty()).unwrap();
        assert!(run(&args).is_err());
    }
}

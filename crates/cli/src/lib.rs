//! # fbc-cli — the `fbcache` command-line tool
//!
//! A front end over the whole workspace: generate synthetic file-bundle
//! workloads, replay traces through any replacement policy (optionally with
//! a queued admission scheduler), compare policies side by side, run the
//! discrete-event grid, and inspect traces.
//!
//! ```text
//! fbcache generate --output wl.trace --jobs 10000 --popularity zipf
//! fbcache info     --trace wl.trace
//! fbcache run      --trace wl.trace --cache 2GiB --policy optfilebundle
//! fbcache compare  --trace wl.trace --cache 2GiB --csv compare.csv
//! fbcache grid     --trace wl.trace --cache 2GiB --rate 2.0
//! ```

#![warn(missing_docs)]

pub mod args;
/// Subcommand implementations, one module per `fbcache <COMMAND>`.
pub mod commands {
    pub mod compare;
    pub mod generate;
    pub mod grid;
    pub mod hybrid;
    pub mod info;
    pub mod multi;
    pub mod run;
    pub mod scenario;
}
pub mod obs;
pub mod policies;

use args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
fbcache — file-bundle caching toolbox (Otoo, Rotem & Romosan, SC 2004)

Usage: fbcache <COMMAND> [flags]

Commands:
  generate   generate a synthetic workload and write its trace
  scenario   generate a domain-scenario trace (henp/climate/bitmap/federated)
  run        replay a trace through one replacement policy
  compare    run several policies over one trace, tabulated
  grid       run a trace through the discrete-event data-grid
  multi      run a trace through a multi-SRM cluster (dispatch comparison)
  hybrid     sweep the one-file-at-a-time job fraction
  info       summarise a trace
  help       show this message (or 'fbcache help <COMMAND>')
";

/// Dispatches a full argument vector (without the program name).
/// Returns an exit code.
pub fn dispatch(argv: &[String]) -> i32 {
    let Some(command) = argv.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    let rest = argv[1..].to_vec();
    let result: Result<(), ArgError> = match command.as_str() {
        "generate" => parse_and(&rest, commands::generate::run),
        "scenario" => parse_and(&rest, commands::scenario::run),
        "run" => parse_and(&rest, commands::run::run),
        "compare" => parse_and(&rest, commands::compare::run),
        "grid" => parse_and(&rest, commands::grid::run),
        "multi" => parse_and(&rest, commands::multi::run),
        "hybrid" => parse_and(&rest, commands::hybrid::run),
        "info" => parse_and(&rest, commands::info::run),
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("generate") => print!("{}", commands::generate::USAGE),
                Some("scenario") => print!("{}", commands::scenario::USAGE),
                Some("run") => print!("{}", commands::run::USAGE),
                Some("compare") => print!("{}", commands::compare::USAGE),
                Some("grid") => print!("{}", commands::grid::USAGE),
                Some("multi") => print!("{}", commands::multi::USAGE),
                Some("hybrid") => print!("{}", commands::hybrid::USAGE),
                Some("info") => print!("{}", commands::info::USAGE),
                _ => print!("{USAGE}"),
            }
            return 0;
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            eprint!("{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn parse_and(rest: &[String], f: fn(&Args) -> Result<(), ArgError>) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned())?;
    if args.has("help") {
        // Let the caller print command usage via `help <cmd>` instead;
        // here we simply succeed after printing nothing surprising.
        return Err(ArgError("use 'fbcache help <COMMAND>' for usage".into()));
    }
    f(&args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_command_prints_usage_and_fails() {
        assert_eq!(dispatch(&[]), 2);
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(dispatch(&argv(&["frobnicate"])), 2);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(dispatch(&argv(&["help"])), 0);
        assert_eq!(dispatch(&argv(&["help", "generate"])), 0);
        assert_eq!(dispatch(&argv(&["--help"])), 0);
    }

    #[test]
    fn command_errors_are_exit_code_one() {
        // `run` without --trace.
        assert_eq!(dispatch(&argv(&["run", "--cache", "1GiB"])), 1);
    }

    #[test]
    fn full_generate_run_pipeline() {
        let dir = std::env::temp_dir();
        let trace = dir.join("fbc_cli_pipeline.trace");
        let trace_s = trace.to_str().unwrap();
        assert_eq!(
            dispatch(&argv(&[
                "generate",
                "--output",
                trace_s,
                "--jobs",
                "30",
                "--files",
                "40",
                "--pool",
                "15",
                "--cache-size",
                "1GiB",
            ])),
            0
        );
        assert_eq!(dispatch(&argv(&["info", "--trace", trace_s])), 0);
        assert_eq!(
            dispatch(&argv(&[
                "run", "--trace", trace_s, "--cache", "200MiB", "--policy", "ofb", "--queue", "5",
            ])),
            0
        );
        assert_eq!(
            dispatch(&argv(&[
                "compare",
                "--trace",
                trace_s,
                "--cache",
                "200MiB",
                "--policies",
                "lru,landlord",
            ])),
            0
        );
        std::fs::remove_file(&trace).ok();
    }
}

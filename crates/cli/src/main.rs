//! The `fbcache` binary: thin wrapper around [`fbc_cli::dispatch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(fbc_cli::dispatch(&argv));
}

//! Shared `--obs` / `--obs-trace` plumbing for the observable
//! subcommands (`run`, `grid`).
//!
//! Either flag enables an [`Obs`] sink for the run: `--obs` prints the
//! deterministic counter table after the normal report, `--obs-trace
//! FILE` additionally writes the JSONL event trace to `FILE`. With a
//! fixed seed the table and the trace are byte-identical across runs —
//! see the determinism contract in `fbc-obs`.

use crate::args::{ArgError, Args};
use fbc_obs::Obs;

/// Builds the run's sink: enabled iff `--obs` or `--obs-trace` was given.
pub fn obs_from_args(args: &Args) -> Obs {
    if args.has("obs") || args.has("obs-trace") {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// Writes the trace file and prints the counter table as the flags ask.
/// A disabled handle is a no-op, so callers invoke this unconditionally.
pub fn emit(obs: &Obs, args: &Args) -> Result<(), ArgError> {
    if !obs.is_enabled() {
        return Ok(());
    }
    if let Some(path) = args.get("obs-trace") {
        std::fs::write(path, obs.jsonl())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!(
            "trace:             {path} ({} events, {} dropped)",
            obs.events_recorded(),
            obs.events_dropped()
        );
    }
    println!();
    print!("{}", obs.render_table());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn no_flags_means_disabled() {
        let obs = obs_from_args(&parse(&[]));
        assert!(!obs.is_enabled());
        emit(&obs, &parse(&[])).unwrap();
    }

    #[test]
    fn either_flag_enables() {
        assert!(obs_from_args(&parse(&["--obs"])).is_enabled());
        assert!(obs_from_args(&parse(&["--obs-trace", "/tmp/x.jsonl"])).is_enabled());
    }

    #[test]
    fn emit_writes_the_trace_file() {
        let path = std::env::temp_dir().join("fbc_cli_obs_emit_test.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let args = parse(&["--obs-trace", &path_s]);
        let obs = obs_from_args(&args);
        obs.set_now(1);
        obs.event("e", &[]);
        emit(&obs, &args).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, "{\"t\":1,\"ev\":\"e\"}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unwritable_trace_path_is_a_clean_error() {
        let args = parse(&["--obs-trace", "/nonexistent-dir/x.jsonl"]);
        let obs = obs_from_args(&args);
        assert!(emit(&obs, &args).is_err());
    }
}

//! Policy construction by name for the CLI.

use fbc_baselines::PolicyKind;
use fbc_core::policy::CachePolicy;

/// All accepted policy names (canonical spellings).
pub const POLICY_NAMES: [&str; 15] = [
    "optfilebundle",
    "landlord",
    "landlord-size",
    "lru",
    "lru2",
    "arc",
    "lfu",
    "gdsf",
    "fifo",
    "random",
    "size",
    "slru",
    "marking",
    "marking-rand",
    "belady",
];

/// Resolves a (case-insensitive) name or alias to its [`PolicyKind`];
/// returns `None` for unknown names. `PolicyKind` is `Copy`, so drivers
/// that need fresh per-shard instances can keep the kind and call
/// [`PolicyKind::build_send`] per worker.
pub fn policy_kind_by_name(name: &str) -> Option<PolicyKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "optfilebundle" | "ofb" | "opt" => PolicyKind::OptFileBundle,
        "landlord" | "ll" => PolicyKind::Landlord,
        "landlord-size" => PolicyKind::LandlordSizeAware,
        "lru" => PolicyKind::Lru,
        "lru2" | "lru-2" | "lruk" => PolicyKind::Lru2,
        "arc" => PolicyKind::Arc,
        "lfu" => PolicyKind::Lfu,
        "gdsf" => PolicyKind::Gdsf,
        "fifo" => PolicyKind::Fifo,
        "random" | "rand" => PolicyKind::Random,
        "size" | "largest" => PolicyKind::LargestFirst,
        "slru" => PolicyKind::Slru,
        "marking" | "bundle-marking" | "qe" => PolicyKind::BundleMarking,
        "marking-rand" | "bundle-marking-rand" | "qe-rand" => PolicyKind::BundleMarkingRand,
        "belady" | "min" | "opt-offline" => PolicyKind::BeladyMin,
        _ => return None,
    })
}

/// Builds a policy from a (case-insensitive) name; returns `None` for
/// unknown names.
pub fn policy_by_name(name: &str) -> Option<Box<dyn CachePolicy>> {
    policy_kind_by_name(name).map(PolicyKind::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_resolves() {
        for name in POLICY_NAMES {
            assert!(policy_by_name(name).is_some(), "{name} did not resolve");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(policy_by_name("OFB").unwrap().name(), "OptFileBundle");
        assert_eq!(policy_by_name("LRU-2").unwrap().name(), "LRU-2");
        assert_eq!(policy_by_name("min").unwrap().name(), "Belady-MIN");
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(policy_by_name("definitely-not-a-policy").is_none());
        assert!(policy_by_name("").is_none());
    }
}

//! Word-packed bitsets over dense file-id universes.
//!
//! `FileId`s are catalog-assigned dense indices (see [`crate::catalog`]),
//! so residency — "is this file in the cache?" — is a membership test
//! over a bounded integer universe. A word-packed bitset answers it with
//! one shift and one mask instead of a hash probe; [`DenseBitSet`] is that
//! kernel, shared by [`crate::cache::CacheState`] (the cache's residency
//! bits) and [`crate::index::SupportIndex`] (the decision path's mirror of
//! the resident set), so both layers maintain the *same* representation.
//!
//! Ids at or above [`SPARSE_ID_FLOOR`] are treated as *sparse*: they come
//! from sparse catalog registration (trace replay with external,
//! non-contiguous ids) and would blow the bitset up to gigabytes.
//! [`ResidencySet`] is the hybrid: dense bits below the floor, a hash set
//! above it — the fallback costs a hash probe but only for ids that were
//! never dense to begin with.

use crate::types::FileId;
use rustc_hash::FxHashSet;

/// First id treated as *sparse* (not backed by dense slabs/bitsets).
///
/// Everything below is dense: a catalog this large would already spend
/// `8 B × SPARSE_ID_FLOOR` on its size table, so per-id slabs and bitsets
/// are proportional, not wasteful. Ids at or above the floor can only be
/// minted through [`crate::catalog::FileCatalog::add_file_at`] and take
/// the interned/hashed fallback paths.
pub const SPARSE_ID_FLOOR: u32 = 1 << 26;

/// A growable, word-packed bitset over `u32` indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    ones: usize,
}

impl DenseBitSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized to hold indices `< nbits` without growing.
    pub fn with_capacity(nbits: usize) -> Self {
        Self {
            words: vec![0; nbits.div_ceil(64)],
            ones: 0,
        }
    }

    /// Ensures indices `< nbits` are in range (newly covered bits are 0).
    pub fn grow_to(&mut self, nbits: usize) {
        let words = nbits.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Whether `idx` is in the set. Out-of-range indices are absent, not
    /// an error — the set semantically extends with zeros.
    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        self.words
            .get((idx >> 6) as usize)
            .is_some_and(|w| w >> (idx & 63) & 1 != 0)
    }

    /// Inserts `idx`, growing if needed; returns whether it was absent.
    #[inline]
    pub fn insert(&mut self, idx: u32) -> bool {
        let word = (idx >> 6) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (idx & 63);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.ones += newly as usize;
        newly
    }

    /// Removes `idx`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, idx: u32) -> bool {
        let Some(w) = self.words.get_mut((idx >> 6) as usize) else {
            return false;
        };
        let mask = 1u64 << (idx & 63);
        let was = *w & mask != 0;
        *w &= !mask;
        self.ones -= was as usize;
        was
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Iterates the set indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some((wi as u32) << 6 | bit)
            })
        })
    }
}

/// Hybrid membership set over [`FileId`]s: word-packed bits for dense ids
/// (below [`SPARSE_ID_FLOOR`]), a hash set for sparse ids.
///
/// This is the shared resident-set representation: `CacheState` keeps the
/// authoritative copy and `SupportIndex` mirrors it, both through this
/// type, so a hit check is the same one-load bit test on either layer.
#[derive(Debug, Clone, Default)]
pub struct ResidencySet {
    dense: DenseBitSet,
    sparse: FxHashSet<u32>,
}

impl ResidencySet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized for dense ids `< nbits`.
    pub fn with_dense_capacity(nbits: usize) -> Self {
        Self {
            dense: DenseBitSet::with_capacity(nbits.min(SPARSE_ID_FLOOR as usize)),
            sparse: FxHashSet::default(),
        }
    }

    /// Whether `file` is in the set.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        if file.0 < SPARSE_ID_FLOOR {
            self.dense.contains(file.0)
        } else {
            self.sparse.contains(&file.0)
        }
    }

    /// Inserts `file`; returns whether it was absent.
    #[inline]
    pub fn insert(&mut self, file: FileId) -> bool {
        if file.0 < SPARSE_ID_FLOOR {
            self.dense.insert(file.0)
        } else {
            self.sparse.insert(file.0)
        }
    }

    /// Removes `file`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, file: FileId) -> bool {
        if file.0 < SPARSE_ID_FLOOR {
            self.dense.remove(file.0)
        } else {
            self.sparse.remove(&file.0)
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense.len() + self.sparse.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the set, keeping allocations.
    pub fn clear(&mut self) {
        self.dense.clear();
        self.sparse.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = DenseBitSet::new();
        assert!(!s.contains(100));
        assert!(s.insert(100));
        assert!(!s.insert(100), "double insert reports already-present");
        assert!(s.contains(100));
        assert_eq!(s.len(), 1);
        assert!(s.remove(100));
        assert!(!s.remove(100), "double remove reports already-absent");
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_range_queries_are_absent() {
        let s = DenseBitSet::with_capacity(64);
        assert!(!s.contains(1_000_000));
        let mut s = DenseBitSet::new();
        assert!(!s.remove(9999));
        assert!(!s.contains(0));
    }

    #[test]
    fn word_boundaries() {
        let mut s = DenseBitSet::new();
        for idx in [0u32, 63, 64, 127, 128, 4095] {
            assert!(s.insert(idx));
        }
        assert_eq!(s.len(), 6);
        let ones: Vec<u32> = s.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 127, 128, 4095]);
    }

    #[test]
    fn iter_ones_is_ascending_and_complete() {
        let mut s = DenseBitSet::new();
        let mut expect = Vec::new();
        let mut state = 0x1234_5678u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let idx = (state % 10_000) as u32;
            if s.insert(idx) {
                expect.push(idx);
            }
        }
        expect.sort_unstable();
        let got: Vec<u32> = s.iter_ones().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn clear_keeps_capacity_semantics() {
        let mut s = DenseBitSet::with_capacity(256);
        s.insert(200);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(200));
        assert!(s.insert(200));
    }

    #[test]
    fn residency_set_routes_dense_and_sparse() {
        let mut r = ResidencySet::new();
        let dense = FileId(42);
        let sparse = FileId(SPARSE_ID_FLOOR + 17);
        assert!(r.insert(dense));
        assert!(r.insert(sparse));
        assert!(!r.insert(sparse), "sparse double insert detected");
        assert!(r.contains(dense) && r.contains(sparse));
        assert_eq!(r.len(), 2);
        assert!(r.remove(sparse));
        assert!(!r.contains(sparse));
        r.clear();
        assert!(r.is_empty() && !r.contains(dense));
    }

    #[test]
    fn residency_set_handles_max_id() {
        let mut r = ResidencySet::new();
        assert!(r.insert(FileId(u32::MAX)));
        assert!(r.contains(FileId(u32::MAX)));
        assert!(r.remove(FileId(u32::MAX)));
    }
}

//! Approximation-bound formulas of Theorem 4.1 and Appendix A.
//!
//! `OptCacheSelect` guarantees a solution of value at least
//! `½(1 − e^{−1/d}) · v(OPT)`, where `d` is the maximum number of requests
//! sharing a single file; partial enumeration removes the `½`. These helpers
//! compute the factors and verify solutions against them — the property
//! tests and the `bound_check` bench drive them over thousands of random
//! instances.

use crate::instance::FbcInstance;

/// The greedy guarantee `½(1 − e^{−1/d})` of Theorem 4.1.
///
/// ```
/// use fbc_core::bounds::greedy_bound;
/// // d = 1 is the plain knapsack-like case: ½(1 − e^{−1}) ≈ 0.316.
/// assert!((greedy_bound(1) - 0.5 * (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
pub fn greedy_bound(d: u32) -> f64 {
    0.5 * enumerated_bound(d)
}

/// The partial-enumeration guarantee `1 − e^{−1/d}` (paper §4, improvement
/// "by a factor of 2 … at higher computational cost").
pub fn enumerated_bound(d: u32) -> f64 {
    let d = d.max(1) as f64;
    1.0 - (-1.0 / d).exp()
}

/// Report of a solution value checked against the guarantee for an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundCheck {
    /// Maximum file degree `d` of the instance.
    pub d: u32,
    /// The guaranteed fraction of optimal for the algorithm checked.
    pub guarantee: f64,
    /// Achieved value / optimal value (1.0 when optimal is 0).
    pub achieved_ratio: f64,
    /// Whether the guarantee holds (with a small numeric tolerance).
    pub holds: bool,
}

/// Checks a greedy solution value against the Theorem 4.1 guarantee given
/// the exact optimum value.
pub fn check_greedy_bound(inst: &FbcInstance, greedy_value: f64, optimal_value: f64) -> BoundCheck {
    check_against(
        inst,
        greedy_value,
        optimal_value,
        greedy_bound(inst.max_degree()),
    )
}

/// Checks a partial-enumeration solution value against the `1 − e^{−1/d}`
/// guarantee.
pub fn check_enumerated_bound(inst: &FbcInstance, value: f64, optimal_value: f64) -> BoundCheck {
    check_against(
        inst,
        value,
        optimal_value,
        enumerated_bound(inst.max_degree()),
    )
}

fn check_against(inst: &FbcInstance, value: f64, optimal: f64, guarantee: f64) -> BoundCheck {
    let achieved_ratio = if optimal <= 0.0 { 1.0 } else { value / optimal };
    BoundCheck {
        d: inst.max_degree(),
        guarantee,
        achieved_ratio,
        holds: achieved_ratio + 1e-9 >= guarantee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::select::{opt_cache_select, SelectOptions};

    #[test]
    fn bounds_decrease_with_degree() {
        // Larger d -> weaker guarantee.
        let mut prev = f64::INFINITY;
        for d in 1..20 {
            let g = greedy_bound(d);
            assert!(g < prev);
            assert!(g > 0.0 && g < 0.5);
            prev = g;
        }
    }

    #[test]
    fn enumerated_is_twice_greedy() {
        for d in 1..10 {
            assert!((enumerated_bound(d) - 2.0 * greedy_bound(d)).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_zero_clamps_to_one() {
        assert_eq!(enumerated_bound(0), enumerated_bound(1));
    }

    #[test]
    fn greedy_respects_theorem_4_1_on_random_instances() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut worst: f64 = 1.0;
        for round in 0..200 {
            let m = (next() % 10 + 2) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 20 + 1).collect();
            let n = (next() % 10 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 3 + 1) as usize;
                    (
                        (0..k).map(|_| (next() % m as u64) as u32).collect(),
                        (next() % 50 + 1) as f64,
                    )
                })
                .collect();
            let inst = FbcInstance::new(next() % 80, sizes, reqs).unwrap();
            let greedy = opt_cache_select(&inst, &SelectOptions::default());
            let exact = solve_exact(&inst);
            let check = check_greedy_bound(&inst, greedy.value, exact.value);
            assert!(
                check.holds,
                "round {round}: ratio {} < guarantee {} (d={})",
                check.achieved_ratio, check.guarantee, check.d
            );
            worst = worst.min(check.achieved_ratio);
        }
        // In practice the greedy is far better than the worst-case bound.
        assert!(
            worst > 0.3,
            "empirical worst ratio suspiciously low: {worst}"
        );
    }

    #[test]
    fn zero_optimum_counts_as_satisfied() {
        let inst = FbcInstance::new(0, vec![5], vec![(vec![0], 3.0)]).unwrap();
        let check = check_greedy_bound(&inst, 0.0, 0.0);
        assert!(check.holds);
        assert_eq!(check.achieved_ratio, 1.0);
    }
}

//! File-bundles: the unit of request in bundle-aware caching.
//!
//! A *file-bundle* is the set of files a job needs resident in the cache
//! simultaneously (paper §2, "One File-Bundle at a Time"). Two requests are
//! identical iff their bundles are identical, so the bundle doubles as the
//! hash key of the request history. Bundles are canonicalised (sorted,
//! deduplicated) at construction and stored in a shared `Arc<[FileId]>`, so
//! cloning a bundle — which happens on every history update — is a refcount
//! bump, not an allocation.

use crate::catalog::FileCatalog;
use crate::types::{Bytes, FileId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A canonical, immutable set of files requested together.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bundle {
    files: Arc<[FileId]>,
}

impl Bundle {
    /// Builds a bundle from any collection of file ids, canonicalising by
    /// sorting and removing duplicates.
    ///
    /// ```
    /// use fbc_core::bundle::Bundle;
    /// use fbc_core::types::FileId;
    ///
    /// let b = Bundle::new([FileId(3), FileId(1), FileId(3), FileId(2)]);
    /// assert_eq!(b.len(), 3);
    /// assert_eq!(b.files(), &[FileId(1), FileId(2), FileId(3)]);
    /// ```
    pub fn new<I: IntoIterator<Item = FileId>>(files: I) -> Self {
        let mut v: Vec<FileId> = files.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Self { files: v.into() }
    }

    /// Builds a bundle from raw `u32` ids (test/bench convenience).
    pub fn from_raw<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::new(ids.into_iter().map(FileId))
    }

    /// The canonical (sorted, unique) file list.
    #[inline]
    pub fn files(&self) -> &[FileId] {
        &self.files
    }

    /// Number of files in the bundle.
    #[inline]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the bundle is empty. Empty bundles are legal (a job with no
    /// file needs is trivially a hit) but never produced by the generators.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Whether `file` belongs to the bundle (binary search on the canonical
    /// order).
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        self.files.binary_search(&file).is_ok()
    }

    /// Total size of the bundle's files according to `catalog`.
    pub fn total_size(&self, catalog: &FileCatalog) -> Bytes {
        self.files.iter().map(|&f| catalog.size(f)).sum()
    }

    /// Iterates over the files of the bundle.
    pub fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.iter().copied()
    }

    /// Whether every file of `self` is contained in the set described by
    /// `contains` (typically a closure over a cache state).
    pub fn is_subset_of<F: Fn(FileId) -> bool>(&self, contains: F) -> bool {
        self.files.iter().all(|&f| contains(f))
    }

    /// Whether `self` and `other` share at least one file. Runs in
    /// `O(|self| + |other|)` via a merge scan over the canonical orders.
    pub fn intersects(&self, other: &Bundle) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.files.len() && j < other.files.len() {
            match self.files[i].cmp(&other.files[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, file) in self.files.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{file}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<FileId> for Bundle {
    fn from_iter<I: IntoIterator<Item = FileId>>(iter: I) -> Self {
        Bundle::new(iter)
    }
}

impl Serialize for Bundle {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        self.files.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Bundle {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let v = Vec::<FileId>::deserialize(deserializer)?;
        Ok(Bundle::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation_sorts_and_dedups() {
        let a = Bundle::from_raw([5, 1, 3, 1, 5]);
        let b = Bundle::from_raw([1, 3, 5]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn identical_bundles_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |b: &Bundle| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Bundle::from_raw([2, 1])), h(&Bundle::from_raw([1, 2])));
    }

    #[test]
    fn contains_uses_canonical_order() {
        let b = Bundle::from_raw([10, 2, 7]);
        assert!(b.contains(FileId(7)));
        assert!(!b.contains(FileId(3)));
    }

    #[test]
    fn total_size_sums_catalog_sizes() {
        let catalog = FileCatalog::from_sizes(vec![10, 20, 30]);
        let b = Bundle::from_raw([0, 2]);
        assert_eq!(b.total_size(&catalog), 40);
    }

    #[test]
    fn subset_and_intersection() {
        let b = Bundle::from_raw([1, 2, 3]);
        assert!(b.is_subset_of(|f| f.0 <= 3));
        assert!(!b.is_subset_of(|f| f.0 <= 2));
        assert!(b.intersects(&Bundle::from_raw([3, 9])));
        assert!(!b.intersects(&Bundle::from_raw([4, 9])));
        assert!(!b.intersects(&Bundle::new([])));
    }

    #[test]
    fn empty_bundle_is_subset_of_everything() {
        let e = Bundle::new([]);
        assert!(e.is_empty());
        assert!(e.is_subset_of(|_| false));
    }

    #[test]
    fn display_formats_as_set() {
        let b = Bundle::from_raw([2, 1]);
        assert_eq!(b.to_string(), "{f1,f2}");
    }

    #[test]
    fn clone_is_cheap_shared_storage() {
        let a = Bundle::from_raw([1, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.files().as_ptr(), b.files().as_ptr()));
    }
}

//! Disk-cache state: the set of resident files, with capacity and pinning
//! invariants enforced at every mutation.
//!
//! `CacheState` is policy-agnostic — every replacement policy (OptFileBundle,
//! Landlord, LRU, …) mutates the same structure, so the capacity invariant
//! `used ≤ capacity` is checked in exactly one place. Pinning models the SRM
//! behaviour of holding a job's files while the job is in service (paper §2
//! and the grid substrate); a pinned file cannot be evicted.

use crate::bundle::Bundle;
use crate::catalog::FileCatalog;
use crate::error::{FbcError, Result};
use crate::types::{Bytes, FileId};
use std::collections::{BTreeSet, HashMap};

/// The set of files currently resident in the disk cache.
#[derive(Debug, Clone)]
pub struct CacheState {
    capacity: Bytes,
    used: Bytes,
    /// Resident files mapped to `(size, pin_count)`.
    files: HashMap<FileId, Resident>,
    /// Files with `pins > 0`, kept sorted so policies can enumerate the
    /// pinned set in O(pinned) instead of scanning every resident.
    pinned: BTreeSet<FileId>,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    size: Bytes,
    pins: u32,
}

impl CacheState {
    /// Creates an empty cache of the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self {
            capacity,
            used: 0,
            files: HashMap::new(),
            pinned: BTreeSet::new(),
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes still free.
    #[inline]
    pub fn free(&self) -> Bytes {
        self.capacity - self.used
    }

    /// Number of resident files.
    #[inline]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no file is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Whether `file` is resident.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Whether every file of `bundle` is resident — i.e. whether the bundle
    /// is a *request-hit* (paper §3).
    pub fn supports(&self, bundle: &Bundle) -> bool {
        bundle.is_subset_of(|f| self.contains(f))
    }

    /// The files of `bundle` that are *not* resident.
    pub fn missing_of(&self, bundle: &Bundle) -> Vec<FileId> {
        bundle.iter().filter(|&f| !self.contains(f)).collect()
    }

    /// Total bytes of `bundle`'s files that are not resident.
    pub fn missing_bytes(&self, bundle: &Bundle, catalog: &FileCatalog) -> Bytes {
        bundle
            .iter()
            .filter(|&f| !self.contains(f))
            .map(|f| catalog.size(f))
            .sum()
    }

    /// Inserts `file` (size taken from `catalog`).
    ///
    /// Fails with [`FbcError::CapacityExceeded`] if the file does not fit and
    /// with [`FbcError::DuplicateFile`] if it is already resident — policies
    /// are expected to check both conditions, so violations indicate bugs.
    pub fn insert(&mut self, file: FileId, catalog: &FileCatalog) -> Result<()> {
        let size = catalog.try_size(file)?;
        if self.files.contains_key(&file) {
            return Err(FbcError::DuplicateFile(file));
        }
        if self.used + size > self.capacity {
            return Err(FbcError::CapacityExceeded {
                capacity: self.capacity,
                used: self.used,
                requested: size,
            });
        }
        self.files.insert(file, Resident { size, pins: 0 });
        self.used += size;
        Ok(())
    }

    /// Evicts `file`, returning its size.
    ///
    /// Fails if the file is not resident or is pinned.
    pub fn evict(&mut self, file: FileId) -> Result<Bytes> {
        match self.files.get(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) if r.pins > 0 => Err(FbcError::Pinned(file)),
            Some(r) => {
                let size = r.size;
                self.files.remove(&file);
                self.used -= size;
                Ok(size)
            }
        }
    }

    /// Pins `file` for the duration of a job's service; pinned files cannot
    /// be evicted. Pins are counted, so overlapping jobs sharing a file each
    /// hold their own pin.
    pub fn pin(&mut self, file: FileId) -> Result<()> {
        match self.files.get_mut(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) => {
                r.pins += 1;
                if r.pins == 1 {
                    self.pinned.insert(file);
                }
                Ok(())
            }
        }
    }

    /// Releases one pin on `file`.
    pub fn unpin(&mut self, file: FileId) -> Result<()> {
        match self.files.get_mut(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) => {
                r.pins = r.pins.saturating_sub(1);
                if r.pins == 0 {
                    self.pinned.remove(&file);
                }
                Ok(())
            }
        }
    }

    /// Whether `file` is currently pinned.
    pub fn is_pinned(&self, file: FileId) -> bool {
        self.files.get(&file).is_some_and(|r| r.pins > 0)
    }

    /// Number of currently pinned files.
    #[inline]
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Iterates over the pinned files in ascending id order.
    pub fn pinned_files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.pinned.iter().copied()
    }

    /// Iterates over resident `(FileId, size)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.files.iter().map(|(&f, r)| (f, r.size))
    }

    /// All resident file ids (unspecified order).
    pub fn resident_files(&self) -> Vec<FileId> {
        self.files.keys().copied().collect()
    }

    /// Resident file ids sorted ascending — useful for deterministic output.
    pub fn resident_files_sorted(&self) -> Vec<FileId> {
        let mut v = self.resident_files();
        v.sort_unstable();
        v
    }

    /// Debug invariant: recomputes `used` from scratch and compares.
    /// Intended for tests and `debug_assert!`s in the simulators.
    pub fn check_invariants(&self) -> bool {
        let sum: Bytes = self.files.values().map(|r| r.size).sum();
        let pins_tracked = self
            .pinned
            .iter()
            .all(|f| self.files.get(f).is_some_and(|r| r.pins > 0))
            && self.files.values().filter(|r| r.pins > 0).count() == self.pinned.len();
        sum == self.used && self.used <= self.capacity && pins_tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FileCatalog {
        FileCatalog::from_sizes(vec![10, 20, 30, 40])
    }

    #[test]
    fn insert_and_evict_track_usage() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.insert(FileId(2), &c).unwrap();
        assert_eq!(cache.used(), 40);
        assert_eq!(cache.free(), 60);
        assert_eq!(cache.evict(FileId(0)).unwrap(), 10);
        assert_eq!(cache.used(), 30);
        assert!(cache.check_invariants());
    }

    #[test]
    fn capacity_is_enforced() {
        let c = catalog();
        let mut cache = CacheState::new(25);
        cache.insert(FileId(1), &c).unwrap(); // 20
        let err = cache.insert(FileId(0), &c).unwrap_err(); // 10 > 5 free
        assert!(matches!(err, FbcError::CapacityExceeded { .. }));
        assert_eq!(cache.used(), 20);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        assert_eq!(
            cache.insert(FileId(0), &c),
            Err(FbcError::DuplicateFile(FileId(0)))
        );
    }

    #[test]
    fn evict_nonresident_rejected() {
        let mut cache = CacheState::new(100);
        assert_eq!(
            cache.evict(FileId(0)),
            Err(FbcError::NotResident(FileId(0)))
        );
    }

    #[test]
    fn pinned_files_cannot_be_evicted() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(1), &c).unwrap();
        cache.pin(FileId(1)).unwrap();
        assert_eq!(cache.evict(FileId(1)), Err(FbcError::Pinned(FileId(1))));
        cache.unpin(FileId(1)).unwrap();
        assert!(cache.evict(FileId(1)).is_ok());
    }

    #[test]
    fn pins_are_counted() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.pin(FileId(0)).unwrap();
        cache.pin(FileId(0)).unwrap();
        cache.unpin(FileId(0)).unwrap();
        assert!(cache.is_pinned(FileId(0)));
        cache.unpin(FileId(0)).unwrap();
        assert!(!cache.is_pinned(FileId(0)));
    }

    #[test]
    fn supports_and_missing() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.insert(FileId(1), &c).unwrap();
        let bundle = Bundle::from_raw([0, 1, 2]);
        assert!(!cache.supports(&bundle));
        assert_eq!(cache.missing_of(&bundle), vec![FileId(2)]);
        assert_eq!(cache.missing_bytes(&bundle, &c), 30);
        cache.insert(FileId(2), &c).unwrap();
        assert!(cache.supports(&bundle));
        assert_eq!(cache.missing_bytes(&bundle, &c), 0);
    }

    #[test]
    fn unknown_file_insert_fails_cleanly() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        assert_eq!(
            cache.insert(FileId(99), &c),
            Err(FbcError::UnknownFile(FileId(99)))
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn resident_files_sorted_is_deterministic() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        for i in [2u32, 0, 3] {
            cache.insert(FileId(i), &c).unwrap();
        }
        assert_eq!(
            cache.resident_files_sorted(),
            vec![FileId(0), FileId(2), FileId(3)]
        );
    }
}

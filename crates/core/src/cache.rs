//! Disk-cache state: the set of resident files, with capacity and pinning
//! invariants enforced at every mutation.
//!
//! `CacheState` is policy-agnostic — every replacement policy (OptFileBundle,
//! Landlord, LRU, …) mutates the same structure, so the capacity invariant
//! `used ≤ capacity` is checked in exactly one place. Pinning models the SRM
//! behaviour of holding a job's files while the job is in service (paper §2
//! and the grid substrate); a pinned file cannot be evicted.
//!
//! # Representation (DESIGN.md §15)
//!
//! Residency is *dense and hash-free*: file ids are catalog-assigned dense
//! indices, so membership is a word-packed [`DenseBitSet`] bit test and the
//! per-file record (size, pin count) lives in a slab indexed directly by the
//! raw id. Every hot probe — `contains`, `contains_all`, `missing_bytes`,
//! `insert`, `evict`, `pin` — is O(1) arithmetic with no hashing and no
//! per-operation allocation. Ids at or above
//! [`crate::bitset::SPARSE_ID_FLOOR`] (minted only by
//! sparse catalog registration, e.g. trace replay with external ids) take a
//! compact interning fallback: a hash map assigns them slots in a side
//! table, so huge non-contiguous ids cost a hash probe instead of a
//! gigabyte slab. Pinned files are kept as a sorted `Vec` (for O(pinned)
//! enumeration in ascending order) plus a bitset (for the O(1) pin test on
//! the eviction path) instead of the previous `BTreeSet`.
//!
//! The previous `HashMap`+`BTreeSet` implementation is retained verbatim as
//! [`CacheStateReference`] behind the `reference-kernels` feature and pinned
//! bit-for-bit by the model-based proptest suite
//! (`crates/core/tests/cache_model.rs`) and the workspace differential
//! suites: same results, same errors, same sorted enumerations.
//!
//! Determinism contract: [`CacheState::iter`] and
//! [`CacheState::resident_files`] remain *unspecified order* in the API, but
//! the implementation is deterministic (ascending dense ids, then interned
//! sparse ids in slot order) — strictly more reproducible than the
//! SipHash-randomized order of the reference twin, which is why no committed
//! output could ever have depended on it.

use crate::bitset::{DenseBitSet, SPARSE_ID_FLOOR};
use crate::bundle::Bundle;
use crate::catalog::FileCatalog;
use crate::error::{FbcError, Result};
use crate::types::{Bytes, FileId};
use rustc_hash::FxHashMap;

/// The set of files currently resident in the disk cache.
#[derive(Debug, Clone, Default)]
pub struct CacheState {
    capacity: Bytes,
    used: Bytes,
    /// Dense slab indexed by raw file id; an entry is meaningful iff the
    /// corresponding `resident` bit is set.
    slots: Vec<Resident>,
    /// Word-packed membership bits over dense ids.
    resident: DenseBitSet,
    /// Word-packed `pins > 0` bits over dense ids.
    pinned_bits: DenseBitSet,
    /// Interning fallback for sparse ids (`>= SPARSE_ID_FLOOR`).
    sparse: SparseTable,
    /// All pinned files (dense and sparse), sorted ascending.
    pinned: Vec<FileId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Resident {
    size: Bytes,
    pins: u32,
}

/// Interning table for sparse file ids: a hash map assigns each id a slot
/// in a compact side slab, with freed slots reused. Iteration order is slot
/// order — deterministic for a given operation sequence.
#[derive(Debug, Clone, Default)]
struct SparseTable {
    index: FxHashMap<u32, u32>,
    /// Slot → raw id; meaningful only while `occupied[slot]`.
    ids: Vec<u32>,
    slots: Vec<Resident>,
    occupied: Vec<bool>,
    free: Vec<u32>,
}

impl SparseTable {
    fn len(&self) -> usize {
        self.index.len()
    }

    #[inline]
    fn contains(&self, raw: u32) -> bool {
        self.index.contains_key(&raw)
    }

    #[inline]
    fn get(&self, raw: u32) -> Option<&Resident> {
        self.index.get(&raw).map(|&s| &self.slots[s as usize])
    }

    #[inline]
    fn get_mut(&mut self, raw: u32) -> Option<&mut Resident> {
        self.index.get(&raw).map(|&s| &mut self.slots[s as usize])
    }

    fn insert(&mut self, raw: u32, r: Resident) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.ids[s as usize] = raw;
                self.slots[s as usize] = r;
                self.occupied[s as usize] = true;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.ids.push(raw);
                self.slots.push(r);
                self.occupied.push(true);
                s
            }
        };
        self.index.insert(raw, slot);
    }

    fn remove(&mut self, raw: u32) -> Option<Resident> {
        let slot = self.index.remove(&raw)?;
        let r = self.slots[slot as usize];
        self.occupied[slot as usize] = false;
        self.free.push(slot);
        Some(r)
    }

    fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.ids
            .iter()
            .zip(&self.slots)
            .zip(&self.occupied)
            .filter(|&(_, &occ)| occ)
            .map(|((&id, r), _)| (FileId(id), r.size))
    }

    fn clear(&mut self) {
        self.index.clear();
        self.ids.clear();
        self.slots.clear();
        self.occupied.clear();
        self.free.clear();
    }
}

impl CacheState {
    /// Creates an empty cache of the given capacity. The dense slab grows
    /// lazily with the largest inserted id; use
    /// [`with_catalog`](Self::with_catalog) to pre-size it and keep the
    /// first fill allocation-free.
    pub fn new(capacity: Bytes) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Creates an empty cache pre-sized for `catalog`'s dense id universe.
    /// Behaviorally identical to [`new`](Self::new) — sizing only.
    pub fn with_catalog(capacity: Bytes, catalog: &FileCatalog) -> Self {
        let n = catalog.dense_len().min(SPARSE_ID_FLOOR as usize);
        Self {
            capacity,
            slots: vec![Resident::default(); n],
            resident: DenseBitSet::with_capacity(n),
            pinned_bits: DenseBitSet::with_capacity(n),
            ..Self::default()
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes still free.
    #[inline]
    pub fn free(&self) -> Bytes {
        self.capacity - self.used
    }

    /// Number of resident files.
    #[inline]
    pub fn len(&self) -> usize {
        self.resident.len() + self.sparse.len()
    }

    /// Whether no file is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `file` is resident: one bit test for dense ids, a hash
    /// probe only for sparse ones.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        if file.0 < SPARSE_ID_FLOOR {
            self.resident.contains(file.0)
        } else {
            self.sparse.contains(file.0)
        }
    }

    /// Whether every file of `bundle` is resident, tested against the
    /// residency bitset in one pass — the batched hit-check kernel the
    /// engines call per arrival.
    #[inline]
    pub fn contains_all(&self, bundle: &Bundle) -> bool {
        bundle.iter().all(|f| self.contains(f))
    }

    /// Whether every file of `bundle` is resident — i.e. whether the bundle
    /// is a *request-hit* (paper §3). Alias of
    /// [`contains_all`](Self::contains_all).
    #[inline]
    pub fn supports(&self, bundle: &Bundle) -> bool {
        self.contains_all(bundle)
    }

    /// The files of `bundle` that are *not* resident.
    pub fn missing_of(&self, bundle: &Bundle) -> Vec<FileId> {
        bundle.iter().filter(|&f| !self.contains(f)).collect()
    }

    /// Total bytes of `bundle`'s files that are not resident, computed in
    /// one pass over the bundle with no intermediate allocation.
    pub fn missing_bytes(&self, bundle: &Bundle, catalog: &FileCatalog) -> Bytes {
        bundle
            .iter()
            .filter(|&f| !self.contains(f))
            .map(|f| catalog.size(f))
            .sum()
    }

    /// Inserts `file` (size taken from `catalog`).
    ///
    /// Fails with [`FbcError::CapacityExceeded`] if the file does not fit and
    /// with [`FbcError::DuplicateFile`] if it is already resident — policies
    /// are expected to check both conditions, so violations indicate bugs.
    pub fn insert(&mut self, file: FileId, catalog: &FileCatalog) -> Result<()> {
        let size = catalog.try_size(file)?;
        if self.contains(file) {
            return Err(FbcError::DuplicateFile(file));
        }
        if self.used + size > self.capacity {
            return Err(FbcError::CapacityExceeded {
                capacity: self.capacity,
                used: self.used,
                requested: size,
            });
        }
        if file.0 < SPARSE_ID_FLOOR {
            let idx = file.index();
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, Resident::default());
            }
            self.slots[idx] = Resident { size, pins: 0 };
            self.resident.insert(file.0);
        } else {
            self.sparse.insert(file.0, Resident { size, pins: 0 });
        }
        self.used += size;
        Ok(())
    }

    /// Evicts `file`, returning its size.
    ///
    /// Fails if the file is not resident or is pinned.
    pub fn evict(&mut self, file: FileId) -> Result<Bytes> {
        if file.0 < SPARSE_ID_FLOOR {
            if !self.resident.contains(file.0) {
                return Err(FbcError::NotResident(file));
            }
            if self.pinned_bits.contains(file.0) {
                return Err(FbcError::Pinned(file));
            }
            let size = self.slots[file.index()].size;
            self.resident.remove(file.0);
            self.used -= size;
            Ok(size)
        } else {
            match self.sparse.get(file.0) {
                None => Err(FbcError::NotResident(file)),
                Some(r) if r.pins > 0 => Err(FbcError::Pinned(file)),
                Some(_) => {
                    let size = self.sparse.remove(file.0).expect("present").size;
                    self.used -= size;
                    Ok(size)
                }
            }
        }
    }

    /// Pins `file` for the duration of a job's service; pinned files cannot
    /// be evicted. Pins are counted, so overlapping jobs sharing a file each
    /// hold their own pin.
    pub fn pin(&mut self, file: FileId) -> Result<()> {
        let r = if file.0 < SPARSE_ID_FLOOR {
            if !self.resident.contains(file.0) {
                return Err(FbcError::NotResident(file));
            }
            &mut self.slots[file.index()]
        } else {
            match self.sparse.get_mut(file.0) {
                None => return Err(FbcError::NotResident(file)),
                Some(r) => r,
            }
        };
        r.pins += 1;
        if r.pins == 1 {
            if file.0 < SPARSE_ID_FLOOR {
                self.pinned_bits.insert(file.0);
            }
            if let Err(i) = self.pinned.binary_search(&file) {
                self.pinned.insert(i, file);
            }
        }
        Ok(())
    }

    /// Releases one pin on `file`.
    pub fn unpin(&mut self, file: FileId) -> Result<()> {
        let r = if file.0 < SPARSE_ID_FLOOR {
            if !self.resident.contains(file.0) {
                return Err(FbcError::NotResident(file));
            }
            &mut self.slots[file.index()]
        } else {
            match self.sparse.get_mut(file.0) {
                None => return Err(FbcError::NotResident(file)),
                Some(r) => r,
            }
        };
        r.pins = r.pins.saturating_sub(1);
        if r.pins == 0 {
            if file.0 < SPARSE_ID_FLOOR {
                self.pinned_bits.remove(file.0);
            }
            if let Ok(i) = self.pinned.binary_search(&file) {
                self.pinned.remove(i);
            }
        }
        Ok(())
    }

    /// Whether `file` is currently pinned: one bit test for dense ids.
    #[inline]
    pub fn is_pinned(&self, file: FileId) -> bool {
        if file.0 < SPARSE_ID_FLOOR {
            self.pinned_bits.contains(file.0)
        } else {
            self.sparse.get(file.0).is_some_and(|r| r.pins > 0)
        }
    }

    /// Number of currently pinned files.
    #[inline]
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Iterates over the pinned files in ascending id order.
    pub fn pinned_files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.pinned.iter().copied()
    }

    /// Iterates over resident `(FileId, size)` pairs in unspecified order.
    /// (The implementation yields ascending dense ids followed by interned
    /// sparse ids in slot order — deterministic, unlike the hash-ordered
    /// reference twin; callers must not rely on either.)
    pub fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.resident
            .iter_ones()
            .map(|i| (FileId(i), self.slots[i as usize].size))
            .chain(self.sparse.iter())
    }

    /// All resident file ids (unspecified order).
    pub fn resident_files(&self) -> Vec<FileId> {
        self.iter().map(|(f, _)| f).collect()
    }

    /// Resident file ids sorted ascending — useful for deterministic output.
    pub fn resident_files_sorted(&self) -> Vec<FileId> {
        let mut v = self.resident_files();
        v.sort_unstable();
        v
    }

    /// Empties the cache (files, pins, usage), keeping the capacity and the
    /// slab/bitset allocations warm for reuse.
    pub fn clear(&mut self) {
        self.used = 0;
        self.resident.clear();
        self.pinned_bits.clear();
        self.sparse.clear();
        self.pinned.clear();
    }

    /// Debug invariant: recomputes `used` from scratch and compares.
    /// Intended for tests and `debug_assert!`s in the simulators.
    pub fn check_invariants(&self) -> bool {
        let sum: Bytes = self.iter().map(|(_, s)| s).sum();
        let pins_tracked = self.pinned.iter().all(|&f| {
            self.contains(f)
                && if f.0 < SPARSE_ID_FLOOR {
                    self.slots[f.index()].pins > 0 && self.pinned_bits.contains(f.0)
                } else {
                    self.sparse.get(f.0).is_some_and(|r| r.pins > 0)
                }
        }) && self.iter().filter(|&(f, _)| self.is_pinned(f)).count()
            == self.pinned.len()
            && self.pinned.windows(2).all(|w| w[0] < w[1])
            && self.pinned_bits.len() <= self.pinned.len();
        sum == self.used && self.used <= self.capacity && pins_tracked
    }
}

/// The previous `HashMap`+`BTreeSet` implementation of [`CacheState`],
/// retained verbatim as the reference twin (house pattern): the dense
/// implementation must match it bit-for-bit on every observable — results,
/// errors, sorted enumerations — which the model-based proptest suite
/// (`crates/core/tests/cache_model.rs`) drives with random operation
/// sequences including the sparse-id adversary.
#[cfg(any(test, feature = "reference-kernels"))]
pub struct CacheStateReference {
    capacity: Bytes,
    used: Bytes,
    /// Resident files mapped to `(size, pin_count)`.
    files: std::collections::HashMap<FileId, RefResident>,
    /// Files with `pins > 0`, kept sorted so policies can enumerate the
    /// pinned set in O(pinned) instead of scanning every resident.
    pinned: std::collections::BTreeSet<FileId>,
}

#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Copy)]
struct RefResident {
    size: Bytes,
    pins: u32,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl CacheStateReference {
    /// Creates an empty cache of the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self {
            capacity,
            used: 0,
            files: std::collections::HashMap::new(),
            pinned: std::collections::BTreeSet::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> Bytes {
        self.capacity - self.used
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no file is resident.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Whether `file` is resident.
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Whether every file of `bundle` is resident.
    pub fn supports(&self, bundle: &Bundle) -> bool {
        bundle.is_subset_of(|f| self.contains(f))
    }

    /// The files of `bundle` that are *not* resident.
    pub fn missing_of(&self, bundle: &Bundle) -> Vec<FileId> {
        bundle.iter().filter(|&f| !self.contains(f)).collect()
    }

    /// Total bytes of `bundle`'s files that are not resident.
    pub fn missing_bytes(&self, bundle: &Bundle, catalog: &FileCatalog) -> Bytes {
        bundle
            .iter()
            .filter(|&f| !self.contains(f))
            .map(|f| catalog.size(f))
            .sum()
    }

    /// Inserts `file` (size taken from `catalog`).
    pub fn insert(&mut self, file: FileId, catalog: &FileCatalog) -> Result<()> {
        let size = catalog.try_size(file)?;
        if self.files.contains_key(&file) {
            return Err(FbcError::DuplicateFile(file));
        }
        if self.used + size > self.capacity {
            return Err(FbcError::CapacityExceeded {
                capacity: self.capacity,
                used: self.used,
                requested: size,
            });
        }
        self.files.insert(file, RefResident { size, pins: 0 });
        self.used += size;
        Ok(())
    }

    /// Evicts `file`, returning its size.
    pub fn evict(&mut self, file: FileId) -> Result<Bytes> {
        match self.files.get(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) if r.pins > 0 => Err(FbcError::Pinned(file)),
            Some(r) => {
                let size = r.size;
                self.files.remove(&file);
                self.used -= size;
                Ok(size)
            }
        }
    }

    /// Pins `file`; pins are counted.
    pub fn pin(&mut self, file: FileId) -> Result<()> {
        match self.files.get_mut(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) => {
                r.pins += 1;
                if r.pins == 1 {
                    self.pinned.insert(file);
                }
                Ok(())
            }
        }
    }

    /// Releases one pin on `file`.
    pub fn unpin(&mut self, file: FileId) -> Result<()> {
        match self.files.get_mut(&file) {
            None => Err(FbcError::NotResident(file)),
            Some(r) => {
                r.pins = r.pins.saturating_sub(1);
                if r.pins == 0 {
                    self.pinned.remove(&file);
                }
                Ok(())
            }
        }
    }

    /// Whether `file` is currently pinned.
    pub fn is_pinned(&self, file: FileId) -> bool {
        self.files.get(&file).is_some_and(|r| r.pins > 0)
    }

    /// Number of currently pinned files.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Iterates over the pinned files in ascending id order.
    pub fn pinned_files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.pinned.iter().copied()
    }

    /// Iterates over resident `(FileId, size)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.files.iter().map(|(&f, r)| (f, r.size))
    }

    /// All resident file ids (unspecified order).
    pub fn resident_files(&self) -> Vec<FileId> {
        self.files.keys().copied().collect()
    }

    /// Resident file ids sorted ascending.
    pub fn resident_files_sorted(&self) -> Vec<FileId> {
        let mut v = self.resident_files();
        v.sort_unstable();
        v
    }

    /// Empties the cache, keeping the capacity.
    pub fn clear(&mut self) {
        self.used = 0;
        self.files.clear();
        self.pinned.clear();
    }

    /// Debug invariant: recomputes `used` from scratch and compares.
    pub fn check_invariants(&self) -> bool {
        let sum: Bytes = self.files.values().map(|r| r.size).sum();
        let pins_tracked = self
            .pinned
            .iter()
            .all(|f| self.files.get(f).is_some_and(|r| r.pins > 0))
            && self.files.values().filter(|r| r.pins > 0).count() == self.pinned.len();
        sum == self.used && self.used <= self.capacity && pins_tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FileCatalog {
        FileCatalog::from_sizes(vec![10, 20, 30, 40])
    }

    #[test]
    fn insert_and_evict_track_usage() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.insert(FileId(2), &c).unwrap();
        assert_eq!(cache.used(), 40);
        assert_eq!(cache.free(), 60);
        assert_eq!(cache.evict(FileId(0)).unwrap(), 10);
        assert_eq!(cache.used(), 30);
        assert!(cache.check_invariants());
    }

    #[test]
    fn capacity_is_enforced() {
        let c = catalog();
        let mut cache = CacheState::new(25);
        cache.insert(FileId(1), &c).unwrap(); // 20
        let err = cache.insert(FileId(0), &c).unwrap_err(); // 10 > 5 free
        assert!(matches!(err, FbcError::CapacityExceeded { .. }));
        assert_eq!(cache.used(), 20);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        assert_eq!(
            cache.insert(FileId(0), &c),
            Err(FbcError::DuplicateFile(FileId(0)))
        );
    }

    #[test]
    fn evict_nonresident_rejected() {
        let mut cache = CacheState::new(100);
        assert_eq!(
            cache.evict(FileId(0)),
            Err(FbcError::NotResident(FileId(0)))
        );
    }

    #[test]
    fn pinned_files_cannot_be_evicted() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(1), &c).unwrap();
        cache.pin(FileId(1)).unwrap();
        assert_eq!(cache.evict(FileId(1)), Err(FbcError::Pinned(FileId(1))));
        cache.unpin(FileId(1)).unwrap();
        assert!(cache.evict(FileId(1)).is_ok());
    }

    #[test]
    fn pins_are_counted() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.pin(FileId(0)).unwrap();
        cache.pin(FileId(0)).unwrap();
        cache.unpin(FileId(0)).unwrap();
        assert!(cache.is_pinned(FileId(0)));
        cache.unpin(FileId(0)).unwrap();
        assert!(!cache.is_pinned(FileId(0)));
    }

    #[test]
    fn supports_and_missing() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.insert(FileId(1), &c).unwrap();
        let bundle = Bundle::from_raw([0, 1, 2]);
        assert!(!cache.supports(&bundle));
        assert!(!cache.contains_all(&bundle));
        assert_eq!(cache.missing_of(&bundle), vec![FileId(2)]);
        assert_eq!(cache.missing_bytes(&bundle, &c), 30);
        cache.insert(FileId(2), &c).unwrap();
        assert!(cache.supports(&bundle));
        assert!(cache.contains_all(&bundle));
        assert_eq!(cache.missing_bytes(&bundle, &c), 0);
    }

    #[test]
    fn unknown_file_insert_fails_cleanly() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        assert_eq!(
            cache.insert(FileId(99), &c),
            Err(FbcError::UnknownFile(FileId(99)))
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn resident_files_sorted_is_deterministic() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        for i in [2u32, 0, 3] {
            cache.insert(FileId(i), &c).unwrap();
        }
        assert_eq!(
            cache.resident_files_sorted(),
            vec![FileId(0), FileId(2), FileId(3)]
        );
    }

    #[test]
    fn with_catalog_is_behaviorally_identical() {
        let c = catalog();
        let mut a = CacheState::new(100);
        let mut b = CacheState::with_catalog(100, &c);
        for i in [2u32, 0, 3] {
            a.insert(FileId(i), &c).unwrap();
            b.insert(FileId(i), &c).unwrap();
        }
        assert_eq!(a.resident_files_sorted(), b.resident_files_sorted());
        assert_eq!(a.used(), b.used());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        cache.insert(FileId(0), &c).unwrap();
        cache.pin(FileId(0)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used(), 0);
        assert_eq!(cache.pinned_len(), 0);
        assert!(!cache.is_pinned(FileId(0)));
        assert_eq!(cache.capacity(), 100);
        cache.insert(FileId(0), &c).unwrap();
        assert!(!cache.is_pinned(FileId(0)), "pins do not survive clear");
        assert!(cache.check_invariants());
    }

    #[test]
    fn sparse_ids_take_the_interning_fallback() {
        let mut c = catalog();
        let huge = FileId(SPARSE_ID_FLOOR + 1_000_000);
        let max = FileId(u32::MAX);
        c.add_file_at(huge, 7).unwrap();
        c.add_file_at(max, 9).unwrap();
        let mut cache = CacheState::new(100);
        cache.insert(huge, &c).unwrap();
        cache.insert(max, &c).unwrap();
        cache.insert(FileId(0), &c).unwrap();
        assert!(cache.contains(huge) && cache.contains(max));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.used(), 26);
        cache.pin(huge).unwrap();
        assert!(cache.is_pinned(huge));
        assert_eq!(cache.evict(huge), Err(FbcError::Pinned(huge)));
        assert_eq!(
            cache.pinned_files().collect::<Vec<_>>(),
            vec![huge],
            "sparse pins enumerate in ascending order"
        );
        cache.unpin(huge).unwrap();
        assert_eq!(cache.evict(huge).unwrap(), 7);
        assert_eq!(
            cache.resident_files_sorted(),
            vec![FileId(0), max],
            "sorted enumeration spans dense and sparse ids"
        );
        assert!(cache.check_invariants());
    }

    #[test]
    fn iter_is_ascending_over_dense_ids() {
        let c = catalog();
        let mut cache = CacheState::new(100);
        for i in [3u32, 1, 0] {
            cache.insert(FileId(i), &c).unwrap();
        }
        let got: Vec<FileId> = cache.iter().map(|(f, _)| f).collect();
        assert_eq!(got, vec![FileId(0), FileId(1), FileId(3)]);
    }
}

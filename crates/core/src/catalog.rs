//! The file catalog: the authoritative registry of file sizes.
//!
//! In a data-grid the catalog corresponds to the metadata service that knows,
//! for every logical file name, how large the file is. Both the caching
//! algorithms (which reason about sizes) and the simulators (which account
//! for transfer volumes) consult it.

use crate::bitset::SPARSE_ID_FLOOR;
use crate::error::{FbcError, Result};
use crate::types::{Bytes, FileId};
use serde::{Deserialize, Serialize};

/// Registry mapping [`FileId`]s to file sizes.
///
/// Ids are dense, assigned in registration order, so lookups are plain
/// vector indexing. For trace replay with external, non-contiguous ids,
/// [`FileCatalog::add_file_at`] additionally registers *sparse* files at
/// explicit ids `>= SPARSE_ID_FLOOR`; those are kept in a sorted overflow
/// list and looked up by binary search, leaving the dense fast path
/// untouched.
///
/// ```
/// use fbc_core::catalog::FileCatalog;
/// use fbc_core::types::MIB;
///
/// let mut catalog = FileCatalog::new();
/// let a = catalog.add_file(4 * MIB);
/// let b = catalog.add_file(16 * MIB);
/// assert_eq!(catalog.size(a), 4 * MIB);
/// assert_eq!(catalog.size(b), 16 * MIB);
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileCatalog {
    sizes: Vec<Bytes>,
    /// Sparse overflow: `(raw id, size)` sorted by id, ids `>= SPARSE_ID_FLOOR`.
    sparse: Vec<(u32, Bytes)>,
}

impl FileCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog with pre-allocated capacity for `n` files.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            sizes: Vec::with_capacity(n),
            sparse: Vec::new(),
        }
    }

    /// Builds a catalog directly from a list of sizes; `sizes[i]` becomes the
    /// size of `FileId(i)`.
    pub fn from_sizes(sizes: Vec<Bytes>) -> Self {
        Self {
            sizes,
            sparse: Vec::new(),
        }
    }

    /// Registers a new file of the given size and returns its id.
    pub fn add_file(&mut self, size: Bytes) -> FileId {
        let id = FileId(self.sizes.len() as u32);
        self.sizes.push(size);
        id
    }

    /// Registers a file at an explicit, caller-chosen id — the trace-replay
    /// entry point for external id spaces.
    ///
    /// The id must either extend the dense prefix (`id == dense_len()`,
    /// equivalent to [`add_file`](Self::add_file)) or be *sparse*
    /// (`id >= SPARSE_ID_FLOOR`, kept in the sorted overflow list). Ids
    /// that would leave a gap in the dense prefix are rejected with
    /// [`FbcError::InvalidConfig`]; re-registering a known id fails with
    /// [`FbcError::DuplicateFile`].
    pub fn add_file_at(&mut self, file: FileId, size: Bytes) -> Result<()> {
        if self.contains(file) {
            return Err(FbcError::DuplicateFile(file));
        }
        if file.index() == self.sizes.len() && file.0 < SPARSE_ID_FLOOR {
            self.sizes.push(size);
            return Ok(());
        }
        if file.0 < SPARSE_ID_FLOOR {
            return Err(FbcError::InvalidConfig(format!(
                "sparse registration of {file} would leave a dense gap \
                 (dense prefix is {}, sparse ids start at {SPARSE_ID_FLOOR})",
                self.sizes.len()
            )));
        }
        let i = self
            .sparse
            .binary_search_by_key(&file.0, |&(id, _)| id)
            .unwrap_err();
        self.sparse.insert(i, (file.0, size));
        Ok(())
    }

    /// Size of `file` in bytes.
    ///
    /// # Panics
    /// Panics if the file is unknown; use [`FileCatalog::try_size`] for a
    /// fallible lookup.
    #[inline]
    pub fn size(&self, file: FileId) -> Bytes {
        match self.try_size(file) {
            Ok(s) => s,
            Err(_) => panic!("unknown file {file}"),
        }
    }

    /// Fallible size lookup: dense indexing for the dense prefix, binary
    /// search over the sparse overflow otherwise.
    #[inline]
    pub fn try_size(&self, file: FileId) -> Result<Bytes> {
        if let Some(&s) = self.sizes.get(file.index()) {
            return Ok(s);
        }
        self.sparse
            .binary_search_by_key(&file.0, |&(id, _)| id)
            .map(|i| self.sparse[i].1)
            .map_err(|_| FbcError::UnknownFile(file))
    }

    /// Whether `file` is registered.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        file.index() < self.sizes.len()
            || self
                .sparse
                .binary_search_by_key(&file.0, |&(id, _)| id)
                .is_ok()
    }

    /// Number of registered files (dense and sparse).
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len() + self.sparse.len()
    }

    /// Number of files in the dense id prefix (`FileId(0)..FileId(dense_len)`).
    /// Dense per-file tables (residency slabs, bitsets) are sized by this.
    #[inline]
    pub fn dense_len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the catalog is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty() && self.sparse.is_empty()
    }

    /// Total size of all registered files.
    pub fn total_bytes(&self) -> Bytes {
        self.sizes.iter().sum::<Bytes>() + self.sparse.iter().map(|&(_, s)| s).sum::<Bytes>()
    }

    /// Sum of sizes over an iterator of file ids.
    pub fn total_size_of<I: IntoIterator<Item = FileId>>(&self, files: I) -> Bytes {
        files.into_iter().map(|f| self.size(f)).sum()
    }

    /// Iterates over `(FileId, size)` pairs in ascending id order (dense
    /// prefix first, then the sparse overflow — which is sorted and starts
    /// above the dense prefix).
    pub fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (FileId(i as u32), s))
            .chain(self.sparse.iter().map(|&(id, s)| (FileId(id), s)))
    }

    /// All file ids in the catalog, ascending.
    pub fn ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.iter().map(|(f, _)| f)
    }

    /// Mean file size, or 0 for an empty catalog.
    pub fn mean_size(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MIB;

    #[test]
    fn ids_are_dense_and_sequential() {
        let mut c = FileCatalog::new();
        for i in 0..10 {
            let id = c.add_file((i + 1) * MIB);
            assert_eq!(id, FileId(i as u32));
        }
        assert_eq!(c.len(), 10);
        let collected: Vec<FileId> = c.ids().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[9], FileId(9));
    }

    #[test]
    fn size_lookup() {
        let c = FileCatalog::from_sizes(vec![5, 10, 15]);
        assert_eq!(c.size(FileId(0)), 5);
        assert_eq!(c.size(FileId(2)), 15);
        assert_eq!(c.try_size(FileId(1)), Ok(10));
        assert_eq!(c.try_size(FileId(3)), Err(FbcError::UnknownFile(FileId(3))));
    }

    #[test]
    #[should_panic]
    fn size_panics_on_unknown() {
        let c = FileCatalog::new();
        let _ = c.size(FileId(0));
    }

    #[test]
    fn totals_and_means() {
        let c = FileCatalog::from_sizes(vec![2, 4, 6]);
        assert_eq!(c.total_bytes(), 12);
        assert!((c.mean_size() - 4.0).abs() < f64::EPSILON);
        assert_eq!(c.total_size_of([FileId(0), FileId(2)]), 8);
    }

    #[test]
    fn empty_catalog() {
        let c = FileCatalog::new();
        assert!(c.is_empty());
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.mean_size(), 0.0);
        assert!(!c.contains(FileId(0)));
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let c = FileCatalog::from_sizes(vec![1, 2]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(FileId(0), 1), (FileId(1), 2)]);
    }

    #[test]
    fn sparse_registration_roundtrip() {
        let mut c = FileCatalog::from_sizes(vec![5, 10]);
        let hi = FileId(u32::MAX);
        let lo = FileId(SPARSE_ID_FLOOR);
        c.add_file_at(hi, 99).unwrap();
        c.add_file_at(lo, 42).unwrap();
        assert!(c.contains(hi) && c.contains(lo));
        assert_eq!(c.try_size(hi), Ok(99));
        assert_eq!(c.size(lo), 42);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dense_len(), 2);
        assert_eq!(c.total_bytes(), 156);
        let ids: Vec<FileId> = c.ids().collect();
        assert_eq!(ids, vec![FileId(0), FileId(1), lo, hi], "ascending order");
        // Unregistered ids on either side of the floor stay unknown.
        assert!(!c.contains(FileId(2)));
        assert!(!c.contains(FileId(SPARSE_ID_FLOOR + 1)));
    }

    #[test]
    fn sparse_registration_rejects_gaps_and_duplicates() {
        let mut c = FileCatalog::from_sizes(vec![5]);
        // Dense-extension via the explicit-id entry point is allowed...
        c.add_file_at(FileId(1), 7).unwrap();
        assert_eq!(c.size(FileId(1)), 7);
        // ...but a dense gap is not.
        assert!(matches!(
            c.add_file_at(FileId(5), 1),
            Err(FbcError::InvalidConfig(_))
        ));
        // Duplicates are rejected in both regions.
        assert_eq!(
            c.add_file_at(FileId(0), 1),
            Err(FbcError::DuplicateFile(FileId(0)))
        );
        c.add_file_at(FileId(SPARSE_ID_FLOOR + 9), 1).unwrap();
        assert_eq!(
            c.add_file_at(FileId(SPARSE_ID_FLOOR + 9), 2),
            Err(FbcError::DuplicateFile(FileId(SPARSE_ID_FLOOR + 9)))
        );
    }
}

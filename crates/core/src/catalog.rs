//! The file catalog: the authoritative registry of file sizes.
//!
//! In a data-grid the catalog corresponds to the metadata service that knows,
//! for every logical file name, how large the file is. Both the caching
//! algorithms (which reason about sizes) and the simulators (which account
//! for transfer volumes) consult it.

use crate::error::{FbcError, Result};
use crate::types::{Bytes, FileId};
use serde::{Deserialize, Serialize};

/// Registry mapping [`FileId`]s to file sizes.
///
/// Ids are dense, assigned in registration order, so lookups are plain
/// vector indexing.
///
/// ```
/// use fbc_core::catalog::FileCatalog;
/// use fbc_core::types::MIB;
///
/// let mut catalog = FileCatalog::new();
/// let a = catalog.add_file(4 * MIB);
/// let b = catalog.add_file(16 * MIB);
/// assert_eq!(catalog.size(a), 4 * MIB);
/// assert_eq!(catalog.size(b), 16 * MIB);
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileCatalog {
    sizes: Vec<Bytes>,
}

impl FileCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog with pre-allocated capacity for `n` files.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            sizes: Vec::with_capacity(n),
        }
    }

    /// Builds a catalog directly from a list of sizes; `sizes[i]` becomes the
    /// size of `FileId(i)`.
    pub fn from_sizes(sizes: Vec<Bytes>) -> Self {
        Self { sizes }
    }

    /// Registers a new file of the given size and returns its id.
    pub fn add_file(&mut self, size: Bytes) -> FileId {
        let id = FileId(self.sizes.len() as u32);
        self.sizes.push(size);
        id
    }

    /// Size of `file` in bytes.
    ///
    /// # Panics
    /// Panics if the file is unknown; use [`FileCatalog::try_size`] for a
    /// fallible lookup.
    #[inline]
    pub fn size(&self, file: FileId) -> Bytes {
        self.sizes[file.index()]
    }

    /// Fallible size lookup.
    pub fn try_size(&self, file: FileId) -> Result<Bytes> {
        self.sizes
            .get(file.index())
            .copied()
            .ok_or(FbcError::UnknownFile(file))
    }

    /// Whether `file` is registered.
    #[inline]
    pub fn contains(&self, file: FileId) -> bool {
        file.index() < self.sizes.len()
    }

    /// Number of registered files.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the catalog is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Total size of all registered files.
    pub fn total_bytes(&self) -> Bytes {
        self.sizes.iter().sum()
    }

    /// Sum of sizes over an iterator of file ids.
    pub fn total_size_of<I: IntoIterator<Item = FileId>>(&self, files: I) -> Bytes {
        files.into_iter().map(|f| self.size(f)).sum()
    }

    /// Iterates over `(FileId, size)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, Bytes)> + '_ {
        self.sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (FileId(i as u32), s))
    }

    /// All file ids in the catalog.
    pub fn ids(&self) -> impl Iterator<Item = FileId> + 'static {
        (0..self.sizes.len() as u32).map(FileId)
    }

    /// Mean file size, or 0 for an empty catalog.
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.sizes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MIB;

    #[test]
    fn ids_are_dense_and_sequential() {
        let mut c = FileCatalog::new();
        for i in 0..10 {
            let id = c.add_file((i + 1) * MIB);
            assert_eq!(id, FileId(i as u32));
        }
        assert_eq!(c.len(), 10);
        let collected: Vec<FileId> = c.ids().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[9], FileId(9));
    }

    #[test]
    fn size_lookup() {
        let c = FileCatalog::from_sizes(vec![5, 10, 15]);
        assert_eq!(c.size(FileId(0)), 5);
        assert_eq!(c.size(FileId(2)), 15);
        assert_eq!(c.try_size(FileId(1)), Ok(10));
        assert_eq!(c.try_size(FileId(3)), Err(FbcError::UnknownFile(FileId(3))));
    }

    #[test]
    #[should_panic]
    fn size_panics_on_unknown() {
        let c = FileCatalog::new();
        let _ = c.size(FileId(0));
    }

    #[test]
    fn totals_and_means() {
        let c = FileCatalog::from_sizes(vec![2, 4, 6]);
        assert_eq!(c.total_bytes(), 12);
        assert!((c.mean_size() - 4.0).abs() < f64::EPSILON);
        assert_eq!(c.total_size_of([FileId(0), FileId(2)]), 8);
    }

    #[test]
    fn empty_catalog() {
        let c = FileCatalog::new();
        assert!(c.is_empty());
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.mean_size(), 0.0);
        assert!(!c.contains(FileId(0)));
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let c = FileCatalog::from_sizes(vec![1, 2]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(FileId(0), 1), (FileId(1), 2)]);
    }
}

//! The Dense-k-Subgraph ↔ FBC reduction of paper §4.
//!
//! The paper proves FBC NP-hard by reducing DKS to it: each vertex becomes a
//! unit-size file, each edge `(x, y)` a unit-value request for files
//! `{f(x), f(y)}`, and a cache of size `k` holds exactly the `k` vertices of
//! the chosen subgraph; the supported requests are the induced edges. This
//! module materialises the reduction, both as evidence of the complexity
//! argument and as a generator of *adversarial* FBC instances (dense-graph
//! instances are the hard cases for the greedy).

use crate::error::{FbcError, Result};
use crate::instance::{FbcInstance, Selection};

/// A simple undirected graph given by an edge list over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges; each pair is stored with `u < v` after validation.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph, normalising and validating the edge list
    /// (self-loops and duplicate edges are rejected).
    pub fn new(n: usize, edges: Vec<(u32, u32)>) -> Result<Self> {
        let mut normalised = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            if a as usize >= n || b as usize >= n {
                return Err(FbcError::InvalidConfig(format!(
                    "edge ({a},{b}) references a vertex >= n={n}"
                )));
            }
            if a == b {
                return Err(FbcError::InvalidConfig(format!("self-loop at vertex {a}")));
            }
            normalised.push((a.min(b), a.max(b)));
        }
        normalised.sort_unstable();
        let before = normalised.len();
        normalised.dedup();
        if normalised.len() != before {
            return Err(FbcError::InvalidConfig("duplicate edge".into()));
        }
        Ok(Self {
            n,
            edges: normalised,
        })
    }

    /// Complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Self { n, edges }
    }

    /// Number of edges induced by a vertex subset.
    pub fn induced_edges(&self, vertices: &[u32]) -> usize {
        let set: std::collections::HashSet<u32> = vertices.iter().copied().collect();
        self.edges
            .iter()
            .filter(|(a, b)| set.contains(a) && set.contains(b))
            .count()
    }
}

/// Reduces a DKS instance `(graph, k)` to an FBC instance: unit-size files
/// for vertices, unit-value two-file requests for edges, capacity `k`.
///
/// ```
/// use fbc_core::dks::{dks_to_fbc, fbc_to_dks_solution, Graph};
/// use fbc_core::exact::solve_exact;
///
/// let triangle = Graph::new(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
/// let inst = dks_to_fbc(&triangle, 3).unwrap();
/// let (vertices, edges) = fbc_to_dks_solution(&triangle, &solve_exact(&inst));
/// assert_eq!(vertices, vec![0, 1, 2]);
/// assert_eq!(edges, 3);
/// ```
pub fn dks_to_fbc(graph: &Graph, k: usize) -> Result<FbcInstance> {
    if k > graph.n {
        return Err(FbcError::InvalidConfig(format!(
            "k={k} exceeds vertex count n={}",
            graph.n
        )));
    }
    let requests = graph
        .edges
        .iter()
        .map(|&(a, b)| (vec![a, b], 1.0))
        .collect();
    FbcInstance::new(k as u64, vec![1; graph.n], requests)
}

/// Interprets an FBC selection back as a DKS solution: the files loaded are
/// the chosen vertices; the selection value is the number of induced edges
/// covered. Returns `(vertices, induced_edge_count)`.
pub fn fbc_to_dks_solution(graph: &Graph, sel: &Selection) -> (Vec<u32>, usize) {
    let vertices = sel.files.clone();
    let count = graph.induced_edges(&vertices);
    (vertices, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::select::{opt_cache_select, SelectOptions};

    #[test]
    fn triangle_is_recovered_exactly() {
        // A triangle plus a pendant vertex; best 3-subgraph is the triangle.
        let g = Graph::new(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let inst = dks_to_fbc(&g, 3).unwrap();
        let sel = solve_exact(&inst);
        let (vertices, edges) = fbc_to_dks_solution(&g, &sel);
        assert_eq!(edges, 3);
        assert_eq!(vertices, vec![0, 1, 2]);
    }

    #[test]
    fn complete_graph_value_is_k_choose_2() {
        let g = Graph::complete(6);
        let inst = dks_to_fbc(&g, 4).unwrap();
        let sel = solve_exact(&inst);
        assert_eq!(sel.value as usize, 4 * 3 / 2);
    }

    #[test]
    fn greedy_solution_is_a_valid_subgraph() {
        // Two triangles joined by a bridge (0,3): dense-graph instances are
        // adversarial for the greedy — the bridge has the highest adjusted
        // relative value and lures it away from either triangle.
        let g = Graph::new(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)],
        )
        .unwrap();
        let inst = dks_to_fbc(&g, 3).unwrap();
        let sel = opt_cache_select(&inst, &SelectOptions::default());
        let (vertices, edges) = fbc_to_dks_solution(&g, &sel);
        assert!(vertices.len() <= 3);
        // The selection's value counts supported edge-requests, which all
        // lie inside the chosen vertex set.
        assert_eq!(edges, sel.value as usize);
        // Plain greedy takes the bridge and gets only 2 induced edges;
        // partial enumeration (k = 1 seed) recovers a full triangle.
        assert_eq!(edges, 2);
        let seeded = crate::enumerate::opt_cache_select_enumerated(&inst, 1);
        let (_, seeded_edges) = fbc_to_dks_solution(&g, &seeded);
        assert_eq!(seeded_edges, 3);
    }

    #[test]
    fn validation_rejects_bad_graphs() {
        assert!(Graph::new(2, vec![(0, 2)]).is_err()); // out of range
        assert!(Graph::new(2, vec![(1, 1)]).is_err()); // self loop
        assert!(Graph::new(3, vec![(0, 1), (1, 0)]).is_err()); // duplicate
        let g = Graph::complete(3);
        assert!(dks_to_fbc(&g, 4).is_err()); // k > n
    }

    #[test]
    fn induced_edges_counts_correctly() {
        let g = Graph::new(5, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(g.induced_edges(&[0, 1, 2]), 2);
        assert_eq!(g.induced_edges(&[0, 3]), 0);
        assert_eq!(g.induced_edges(&[3, 4]), 1);
    }
}

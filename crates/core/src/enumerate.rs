//! Partial-enumeration improvement of `OptCacheSelect` (paper §4).
//!
//! The paper observes that seeding the greedy with every possible choice of
//! `k` requests (for some small fixed `k`; `k = 2` suffices) and keeping the
//! best completed solution improves the approximation factor from
//! `½(1 − e^{−1/d})` to `(1 − e^{−1/d})`, following the budgeted-maximum-
//! coverage technique of Khuller, Moss and Naor. The price is an `O(n^k)`
//! blow-up in running time, so this variant is offered as an offline /
//! analysis tool rather than the default online policy.

use crate::instance::{FbcInstance, Selection};
use crate::select::{best_single, greedy_shared_credit};

/// Runs the partial-enumeration algorithm with seeds of size up to `k`.
///
/// ```
/// use fbc_core::enumerate::opt_cache_select_enumerated;
/// use fbc_core::instance::FbcInstance;
///
/// // A decoy with the best value/size ratio blocks two complementary
/// // requests; seeding recovers the optimum the greedy misses.
/// let inst = FbcInstance::new(
///     10,
///     vec![6, 5, 5],
///     vec![(vec![0], 7.0), (vec![1], 5.0), (vec![2], 5.0)],
/// ).unwrap();
/// assert_eq!(opt_cache_select_enumerated(&inst, 1).value, 10.0);
/// ```
///
/// For every subset `S` of at most `k` requests whose file union fits in the
/// cache, the shared-credit greedy completes the solution on the remaining
/// capacity; the best candidate over all seeds (including the empty seed,
/// i.e. the plain greedy, and the best single request) is returned.
///
/// `k = 0` degenerates to plain `OptCacheSelect` with the shared-credit
/// refinement.
pub fn opt_cache_select_enumerated(inst: &FbcInstance, k: usize) -> Selection {
    let n = inst.num_requests();
    let mut best = greedy_shared_credit(inst, &[], inst.capacity());
    let single = best_single(inst);
    if single.value > best.value {
        best = single;
    }

    if k >= 1 {
        for i in 0..n {
            if let Some(cand) = complete_from_seed(inst, &[i]) {
                if cand.value > best.value {
                    best = cand;
                }
            }
        }
    }
    if k >= 2 {
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(cand) = complete_from_seed(inst, &[i, j]) {
                    if cand.value > best.value {
                        best = cand;
                    }
                }
            }
        }
    }
    debug_assert!(k <= 2, "seeds larger than 2 are not implemented (k={k})");
    best
}

/// Seeds the greedy with `seed`; returns `None` if the seed alone does not
/// fit in the cache.
fn complete_from_seed(inst: &FbcInstance, seed: &[usize]) -> Option<Selection> {
    let seed_bytes = inst.union_size(seed);
    if seed_bytes > inst.capacity() {
        return None;
    }
    Some(greedy_shared_credit(
        inst,
        seed,
        inst.capacity() - seed_bytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::select::{opt_cache_select, SelectOptions};

    #[test]
    fn enumeration_never_hurts() {
        let mut state = 0xC0FFEE123456789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let m = (next() % 8 + 2) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 20 + 1).collect();
            let n = (next() % 9 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 3 + 1) as usize;
                    (
                        (0..k).map(|_| (next() % m as u64) as u32).collect(),
                        (next() % 50 + 1) as f64,
                    )
                })
                .collect();
            let inst = FbcInstance::new(next() % 60, sizes, reqs).unwrap();
            let plain = opt_cache_select(&inst, &SelectOptions::default());
            let e1 = opt_cache_select_enumerated(&inst, 1);
            let e2 = opt_cache_select_enumerated(&inst, 2);
            let exact = solve_exact(&inst);
            assert!(e1.value + 1e-9 >= plain.value);
            assert!(e2.value + 1e-9 >= e1.value);
            assert!(exact.value + 1e-9 >= e2.value);
            assert!(inst.is_feasible(&e2.chosen));
        }
    }

    #[test]
    fn seeding_recovers_solution_greedy_misses() {
        // Greedy (by relative value) prefers the "decoy" request whose
        // presence blocks the two complementary requests; a seed of either
        // complementary request recovers the optimum.
        //
        // files: f0 (size 6), f1 (size 5), f2 (size 5); capacity 10.
        // decoy r0 = {f0} v=7         v' = 7/6  ≈ 1.17
        // r1 = {f1} v=5               v' = 1.0
        // r2 = {f2} v=5               v' = 1.0
        // Greedy takes r0 (6), then neither r1 nor r2 fits (5 > 4): value 7.
        // Optimum: {r1, r2} = 10 bytes, value 10.
        let inst = FbcInstance::new(
            10,
            vec![6, 5, 5],
            vec![(vec![0], 7.0), (vec![1], 5.0), (vec![2], 5.0)],
        )
        .unwrap();
        let plain = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(plain.value, 7.0);
        let seeded = opt_cache_select_enumerated(&inst, 1);
        assert_eq!(seeded.value, 10.0);
        assert_eq!(seeded.bytes, 10);
    }

    #[test]
    fn k2_matches_exact_on_paper_example() {
        let inst = FbcInstance::new(
            3,
            vec![1; 7],
            vec![
                (vec![0, 2, 4], 1.0),
                (vec![1, 5, 6], 1.0),
                (vec![0, 4], 1.0),
                (vec![3, 5, 6], 1.0),
                (vec![2, 4], 1.0),
                (vec![4, 5, 6], 1.0),
            ],
        )
        .unwrap();
        let sel = opt_cache_select_enumerated(&inst, 2);
        let exact = solve_exact(&inst);
        assert_eq!(sel.value, exact.value);
    }

    #[test]
    fn infeasible_seed_is_skipped() {
        let inst = FbcInstance::new(4, vec![10, 1], vec![(vec![0], 9.0), (vec![1], 1.0)]).unwrap();
        let sel = opt_cache_select_enumerated(&inst, 2);
        assert_eq!(sel.chosen, vec![1]);
    }

    #[test]
    fn k0_equals_plain_shared_credit_with_fallback() {
        let inst = FbcInstance::new(
            100,
            vec![1, 1, 100],
            vec![(vec![0], 1.0), (vec![1], 1.0), (vec![2], 50.0)],
        )
        .unwrap();
        let sel = opt_cache_select_enumerated(&inst, 0);
        let plain = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(sel.value, plain.value);
    }
}

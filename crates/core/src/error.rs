//! Error types for the core crate.

use crate::types::{Bytes, FileId};
use std::fmt;

/// Errors produced by core data structures and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbcError {
    /// Inserting a file would exceed the cache capacity.
    CapacityExceeded {
        /// Capacity of the cache in bytes.
        capacity: Bytes,
        /// Bytes currently resident.
        used: Bytes,
        /// Size of the file whose insertion was attempted.
        requested: Bytes,
    },
    /// A file id was used that the catalog does not know about.
    UnknownFile(FileId),
    /// A file was inserted into a cache it already resides in.
    DuplicateFile(FileId),
    /// A file was evicted that is not resident.
    NotResident(FileId),
    /// A pinned file was evicted.
    Pinned(FileId),
    /// A configuration value is invalid (e.g. zero capacity, `k > n`).
    InvalidConfig(String),
}

impl fmt::Display for FbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbcError::CapacityExceeded {
                capacity,
                used,
                requested,
            } => write!(
                f,
                "cache capacity exceeded: capacity={capacity} used={used} requested={requested}"
            ),
            FbcError::UnknownFile(id) => write!(f, "unknown file {id}"),
            FbcError::DuplicateFile(id) => write!(f, "file {id} already resident"),
            FbcError::NotResident(id) => write!(f, "file {id} is not resident"),
            FbcError::Pinned(id) => write!(f, "file {id} is pinned and cannot be evicted"),
            FbcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for FbcError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, FbcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FbcError::CapacityExceeded {
            capacity: 100,
            used: 90,
            requested: 20,
        };
        let msg = e.to_string();
        assert!(msg.contains("capacity=100"));
        assert!(msg.contains("used=90"));
        assert!(msg.contains("requested=20"));

        assert!(FbcError::UnknownFile(FileId(7)).to_string().contains("f7"));
        assert!(FbcError::Pinned(FileId(3)).to_string().contains("pinned"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&FbcError::UnknownFile(FileId(0)));
    }
}

//! Exact solver for small FBC instances, by branch and bound.
//!
//! The FBC problem is NP-hard (paper §4, reduction from Dense-k-Subgraph),
//! so this solver is exponential in the worst case — it exists to *validate*
//! the greedy heuristic: the test suite and the `bound_check` bench compare
//! `OptCacheSelect`'s value against the true optimum on thousands of random
//! small instances and check Theorem 4.1's `½(1 − e^{−1/d})` guarantee.
//!
//! Two prunings keep it fast for `n ≲ 24` requests:
//!
//! 1. *Remaining-value bound* — if the current value plus the sum of all
//!    values still undecided cannot beat the incumbent, cut.
//! 2. *Adjusted-size fractional bound* — by the argument of Lemma A.1, any
//!    feasible completion's total *marginal adjusted size* is at most the
//!    remaining capacity, so a fractional knapsack over
//!    `(v(r), marginal adjusted size)` upper-bounds the completion value.

use crate::instance::{FbcInstance, Selection};

/// Hard limit on instance size; beyond this the solver refuses rather than
/// silently running for hours.
pub const MAX_EXACT_REQUESTS: usize = 28;

/// Solves `inst` exactly. Returns the optimal selection.
///
/// ```
/// use fbc_core::exact::solve_exact;
/// use fbc_core::instance::FbcInstance;
///
/// // Two requests share file 1: the union {0,1,2} fits where the sum of
/// // bundle sizes would not.
/// let inst = FbcInstance::new(
///     30,
///     vec![10, 10, 10],
///     vec![(vec![0, 1], 1.0), (vec![1, 2], 1.0)],
/// ).unwrap();
/// let best = solve_exact(&inst);
/// assert_eq!(best.value, 2.0);
/// assert_eq!(best.bytes, 30);
/// ```
///
/// # Panics
/// Panics if the instance has more than [`MAX_EXACT_REQUESTS`] requests.
pub fn solve_exact(inst: &FbcInstance) -> Selection {
    assert!(
        inst.num_requests() <= MAX_EXACT_REQUESTS,
        "exact solver limited to {MAX_EXACT_REQUESTS} requests, got {}",
        inst.num_requests()
    );

    // Explore requests in decreasing value order so good incumbents are
    // found early and the remaining-value bound bites.
    let mut order: Vec<usize> = (0..inst.num_requests()).collect();
    order.sort_by(|&a, &b| {
        inst.requests()[b]
            .value
            .partial_cmp(&inst.requests()[a].value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Suffix sums of values in exploration order, for pruning.
    let mut suffix = vec![0.0; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] + inst.requests()[order[i]].value;
    }

    let mut search = Search {
        inst,
        order: &order,
        suffix: &suffix,
        loaded: vec![false; inst.num_files()],
        chosen: Vec::new(),
        best_value: -1.0,
        best_chosen: Vec::new(),
    };
    search.dfs(0, inst.capacity(), 0.0);

    let mut best_chosen = search.best_chosen;
    best_chosen.sort_unstable();
    Selection::from_chosen(inst, best_chosen)
}

/// Mutable state of the branch-and-bound search.
struct Search<'a> {
    inst: &'a FbcInstance,
    /// Request indices in exploration (decreasing-value) order.
    order: &'a [usize],
    /// `suffix[d]` = total value of requests at depth ≥ `d`.
    suffix: &'a [f64],
    loaded: Vec<bool>,
    chosen: Vec<usize>,
    best_value: f64,
    best_chosen: Vec<usize>,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, remaining: u64, value: f64) {
        if value > self.best_value {
            self.best_value = value;
            self.best_chosen = self.chosen.clone();
        }
        if depth == self.order.len() {
            return;
        }
        // Prune: even taking every remaining request cannot win.
        if value + self.suffix[depth] <= self.best_value {
            return;
        }

        let i = self.order[depth];
        let req = &self.inst.requests()[i];
        let marginal: u64 = req
            .files()
            .iter()
            .filter(|&&f| !self.loaded[f as usize])
            .map(|&f| self.inst.file_size(f))
            .sum();

        // Branch 1: take request i (if it fits).
        if marginal <= remaining {
            let newly: Vec<u32> = req
                .files()
                .iter()
                .copied()
                .filter(|&f| !self.loaded[f as usize])
                .collect();
            for &f in &newly {
                self.loaded[f as usize] = true;
            }
            self.chosen.push(i);
            let req_value = self.inst.requests()[i].value;
            self.dfs(depth + 1, remaining - marginal, value + req_value);
            self.chosen.pop();
            for &f in &newly {
                self.loaded[f as usize] = false;
            }
        }

        // Branch 2: skip request i.
        self.dfs(depth + 1, remaining, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{opt_cache_select, SelectOptions};

    #[test]
    fn knapsack_special_case() {
        // Each file used by exactly one request -> plain knapsack.
        // items: (w=3,v=4) (w=4,v=5) (w=5,v=6), capacity 7 -> take 3+4 = 9.
        let inst = FbcInstance::new(
            7,
            vec![3, 4, 5],
            vec![(vec![0], 4.0), (vec![1], 5.0), (vec![2], 6.0)],
        )
        .unwrap();
        let sel = solve_exact(&inst);
        assert_eq!(sel.value, 9.0);
        assert_eq!(sel.chosen, vec![0, 1]);
    }

    #[test]
    fn shared_files_make_union_cheaper_than_sum() {
        // r0={0,1}, r1={1,2}; individually 20 bytes each, union 30 < 40.
        let inst = FbcInstance::new(
            30,
            vec![10, 10, 10],
            vec![(vec![0, 1], 1.0), (vec![1, 2], 1.0)],
        )
        .unwrap();
        let sel = solve_exact(&inst);
        assert_eq!(sel.value, 2.0);
        assert_eq!(sel.bytes, 30);
    }

    #[test]
    fn paper_example_optimum_is_three() {
        let inst = FbcInstance::new(
            3,
            vec![1; 7],
            vec![
                (vec![0, 2, 4], 1.0),
                (vec![1, 5, 6], 1.0),
                (vec![0, 4], 1.0),
                (vec![3, 5, 6], 1.0),
                (vec![2, 4], 1.0),
                (vec![4, 5, 6], 1.0),
            ],
        )
        .unwrap();
        let sel = solve_exact(&inst);
        assert_eq!(sel.value, 3.0);
        assert_eq!(sel.files, vec![0, 2, 4]); // {f1,f3,f5}
    }

    #[test]
    fn empty_instance() {
        let inst = FbcInstance::new(5, vec![], vec![]).unwrap();
        let sel = solve_exact(&inst);
        assert_eq!(sel.value, 0.0);
        assert!(sel.chosen.is_empty());
    }

    #[test]
    fn exact_dominates_greedy_on_random_instances() {
        // xorshift-based deterministic random instances.
        let mut state = 0xDEADBEEFCAFEF00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..100 {
            let m = (next() % 8 + 2) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 20 + 1).collect();
            let n = (next() % 10 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 3 + 1) as usize;
                    (
                        (0..k).map(|_| (next() % m as u64) as u32).collect(),
                        (next() % 50 + 1) as f64,
                    )
                })
                .collect();
            let cap = next() % 60;
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            let exact = solve_exact(&inst);
            let greedy = opt_cache_select(&inst, &SelectOptions::default());
            assert!(
                exact.value + 1e-9 >= greedy.value,
                "round {round}: exact {} < greedy {}",
                exact.value,
                greedy.value
            );
            assert!(inst.is_feasible(&exact.chosen));
        }
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn refuses_oversized_instances() {
        let reqs: Vec<(Vec<u32>, f64)> = (0..MAX_EXACT_REQUESTS + 1)
            .map(|_| (vec![0u32], 1.0))
            .collect();
        let inst = FbcInstance::new(1, vec![1], reqs).unwrap();
        let _ = solve_exact(&inst);
    }
}

//! The request-history structure `L(R)` of the paper (§3).
//!
//! For every request (identified by its canonical [`Bundle`]) that the system
//! has served, the history stores a value `v(r)` — by default a hit counter,
//! optionally an exponentially-decayed counter or an externally supplied
//! priority — and the set of files it needs. From this it derives the three
//! quantities `OptCacheSelect` ranks by:
//!
//! * degree `d(f)` — the number of *distinct* requests that use file `f`;
//! * adjusted size `s'(f) = s(f) / d(f)`;
//! * adjusted relative value `v'(r) = v(r) / Σ_{f ∈ F(r)} s'(f)`.
//!
//! The paper's `L(R)` is "basically a hash-table with pointers to other
//! structures"; this is that hash table.

use crate::bundle::Bundle;
use crate::catalog::FileCatalog;
use crate::types::FileId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// How the value `v(r)` of a request evolves as the request recurs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ValueFn {
    /// `v(r)` = number of times the request has been seen (the paper's
    /// "counter incremented by 1 each time this request appeared").
    #[default]
    Count,
    /// Exponentially decayed counter: each occurrence contributes 1, and a
    /// contribution from `Δ` requests ago is worth `0.5^(Δ / half_life)`.
    /// Ages out stale popularity in non-stationary workloads (an extension
    /// the paper's `v(r)` hook explicitly allows).
    Decay {
        /// Number of subsequent requests after which a contribution halves.
        half_life: f64,
    },
}

/// Per-request record stored in the history.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The canonical file-bundle identifying the request.
    pub bundle: Bundle,
    /// Number of occurrences observed.
    pub count: u64,
    /// Decayed value accumulator (equals `count` under [`ValueFn::Count`]).
    value_acc: f64,
    /// Tick at which `value_acc` was last brought current.
    value_tick: u64,
    /// Tick (1-based request ordinal) of the most recent occurrence.
    pub last_seen: u64,
    /// Tick of the first occurrence.
    pub first_seen: u64,
    /// Optional externally assigned priority multiplier (paper: the value
    /// "can also reflect request priority or some other measure of
    /// importance"). Defaults to 1.
    pub priority: f64,
}

impl HistoryEntry {
    /// The raw decayed-value accumulator state `(value_acc, value_tick)`,
    /// for mirrors that must reproduce [`HistoryEntry::value_at`] bit for
    /// bit from dense storage (see [`crate::resident`]).
    pub(crate) fn value_state(&self) -> (f64, u64) {
        (self.value_acc, self.value_tick)
    }

    /// The request's value `v(r)` as of `now`, under `value_fn`.
    pub fn value_at(&self, now: u64, value_fn: ValueFn) -> f64 {
        let base = match value_fn {
            ValueFn::Count => self.count as f64,
            ValueFn::Decay { half_life } => {
                let dt = now.saturating_sub(self.value_tick) as f64;
                self.value_acc * 0.5_f64.powf(dt / half_life)
            }
        };
        base * self.priority
    }
}

/// The request history `L(R)`.
#[derive(Debug, Clone, Default)]
pub struct RequestHistory {
    /// FxHash on both maps: `degree()` sits on the decision hot path, and
    /// no iteration order ever escapes (consumers sort by the unique
    /// `last_seen`/`first_seen` ticks, or take order-free integer sums).
    entries: FxHashMap<Bundle, HistoryEntry>,
    /// `d(f)`: number of distinct requests using each file.
    degrees: FxHashMap<FileId, u32>,
    /// Total requests recorded (including repeats).
    tick: u64,
    value_fn: ValueFn,
}

impl RequestHistory {
    /// Creates an empty history with counting values.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty history with the given value function.
    pub fn with_value_fn(value_fn: ValueFn) -> Self {
        Self {
            value_fn,
            ..Self::default()
        }
    }

    /// The configured value function.
    pub fn value_fn(&self) -> ValueFn {
        self.value_fn
    }

    /// Records one occurrence of `bundle` (the paper's Step 4: "update the
    /// data structure `L(R)` with all relevant information about `r_new`"),
    /// returning the updated entry so mirrors can sync from it in O(1).
    pub fn record(&mut self, bundle: &Bundle) -> &HistoryEntry {
        self.tick += 1;
        let tick = self.tick;
        let value_fn = self.value_fn;
        if !self.entries.contains_key(bundle) {
            for f in bundle.iter() {
                *self.degrees.entry(f).or_insert(0) += 1;
            }
            // A zeroed seed entry: the shared update below brings it to the
            // exact state a fresh entry had before (count 1, value_acc 1.0).
            self.entries.insert(
                bundle.clone(),
                HistoryEntry {
                    bundle: bundle.clone(),
                    count: 0,
                    value_acc: 0.0,
                    value_tick: tick,
                    last_seen: tick,
                    first_seen: tick,
                    priority: 1.0,
                },
            );
        }
        let e = self
            .entries
            .get_mut(bundle)
            .expect("present or just inserted");
        // Bring the decayed accumulator current before adding 1.
        e.value_acc = match value_fn {
            ValueFn::Count => (e.count + 1) as f64,
            ValueFn::Decay { half_life } => {
                let dt = tick.saturating_sub(e.value_tick) as f64;
                e.value_acc * 0.5_f64.powf(dt / half_life) + 1.0
            }
        };
        e.value_tick = tick;
        e.count += 1;
        e.last_seen = tick;
        e
    }

    /// Sets the priority multiplier of a known request.
    pub fn set_priority(&mut self, bundle: &Bundle, priority: f64) -> bool {
        match self.entries.get_mut(bundle) {
            Some(e) => {
                e.priority = priority;
                true
            }
            None => false,
        }
    }

    /// Removes a request from the history (used by windowed truncation),
    /// decrementing the degrees of its files.
    pub fn forget(&mut self, bundle: &Bundle) -> bool {
        if self.entries.remove(bundle).is_some() {
            for f in bundle.iter() {
                if let Some(d) = self.degrees.get_mut(&f) {
                    *d -= 1;
                    if *d == 0 {
                        self.degrees.remove(&f);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Number of *distinct* requests recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no request has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total occurrences recorded (including repeats).
    pub fn total_requests(&self) -> u64 {
        self.tick
    }

    /// Degree `d(f)`: distinct requests using `f`. Zero for unseen files.
    #[inline]
    pub fn degree(&self, file: FileId) -> u32 {
        self.degrees.get(&file).copied().unwrap_or(0)
    }

    /// Maximum degree `d` over all files — the `d` of Theorem 4.1.
    pub fn max_degree(&self) -> u32 {
        self.degrees.values().copied().max().unwrap_or(0)
    }

    /// Adjusted size `s'(f) = s(f) / d(f)`. Files never seen get their full
    /// size (degree clamped to 1), matching the intuition that an unshared
    /// file yields no discount.
    pub fn adjusted_size(&self, file: FileId, catalog: &FileCatalog) -> f64 {
        catalog.size(file) as f64 / self.degree(file).max(1) as f64
    }

    /// The value `v(r)` of a known request as of now.
    pub fn value_of(&self, bundle: &Bundle) -> Option<f64> {
        self.entries
            .get(bundle)
            .map(|e| e.value_at(self.tick, self.value_fn))
    }

    /// Adjusted relative value `v'(r) = v(r) / Σ s'(f)` of a bundle.
    ///
    /// For bundles not (yet) in the history the value defaults to 1 (a first
    /// occurrence), which is what the queue scheduler needs when ranking
    /// brand-new arrivals.
    pub fn relative_value(&self, bundle: &Bundle, catalog: &FileCatalog) -> f64 {
        let v = self.value_of(bundle).unwrap_or(1.0);
        let denom: f64 = bundle.iter().map(|f| self.adjusted_size(f, catalog)).sum();
        if denom <= 0.0 {
            // An empty bundle consumes no cache resources; rank it first.
            f64::INFINITY
        } else {
            v / denom
        }
    }

    /// Looks up the entry for `bundle`.
    pub fn get(&self, bundle: &Bundle) -> Option<&HistoryEntry> {
        self.entries.get(bundle)
    }

    /// Iterates over all entries in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.values()
    }

    /// The `n` most recently seen distinct requests, most recent first
    /// (windowed-history truncation, paper §5.2).
    ///
    /// Partial-selects the top `n` before sorting, so the cost is
    /// `O(|R| + n log n)` instead of `O(|R| log |R|)` — under
    /// `HistoryMode::Window(n)` this runs on every decision, and `n` is
    /// typically far smaller than the full history. `last_seen` ticks are
    /// unique per distinct request, so selection + sort reproduces the full
    /// sort's order exactly.
    pub fn most_recent(&self, n: usize) -> Vec<&HistoryEntry> {
        if n == 0 {
            return Vec::new();
        }
        let mut v: Vec<&HistoryEntry> = self.entries.values().collect();
        if n < v.len() {
            v.select_nth_unstable_by_key(n - 1, |e| std::cmp::Reverse(e.last_seen));
            v.truncate(n);
        }
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.last_seen));
        v
    }

    /// Probability that a random request (drawn from the empirical
    /// distribution of recorded occurrences) uses `file` — the rows of the
    /// paper's Table 1.
    pub fn file_request_probability(&self, file: FileId) -> f64 {
        if self.tick == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .entries
            .values()
            .filter(|e| e.bundle.contains(file))
            .map(|e| e.count)
            .sum();
        hits as f64 / self.tick as f64
    }

    /// Probability that a random request finds *all* its files in the set
    /// described by `contains` — the *request-hit probability* of the
    /// paper's Table 2.
    pub fn request_hit_probability<F: Fn(FileId) -> bool>(&self, contains: F) -> f64 {
        if self.tick == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .entries
            .values()
            .filter(|e| e.bundle.is_subset_of(&contains))
            .map(|e| e.count)
            .sum();
        hits as f64 / self.tick as f64
    }
}

impl RequestHistory {
    /// Serialises the history in a dependency-free line format, so an SRM
    /// can persist its learned request popularity across restarts:
    ///
    /// ```text
    /// # fbc-history v1
    /// value_fn count
    /// tick 42
    /// entries 2
    /// 3 3 40 40 7 1 0 2 5
    /// 1 1 42 42 42 1 4
    /// ```
    ///
    /// Entry fields: `count value_acc value_tick last_seen first_seen
    /// priority file...` (floats printed exactly via their bit patterns
    /// would be overkill; the accumulator round-trips through decimal with
    /// enough digits for the ranking to be preserved).
    pub fn write_to<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "# fbc-history v1")?;
        match self.value_fn {
            ValueFn::Count => writeln!(w, "value_fn count")?,
            ValueFn::Decay { half_life } => writeln!(w, "value_fn decay {half_life}")?,
        }
        writeln!(w, "tick {}", self.tick)?;
        // Deterministic order: by first_seen.
        let mut entries: Vec<&HistoryEntry> = self.entries.values().collect();
        entries.sort_unstable_by_key(|e| e.first_seen);
        writeln!(w, "entries {}", entries.len())?;
        for e in entries {
            write!(
                w,
                "{} {} {} {} {} {}",
                e.count, e.value_acc, e.value_tick, e.last_seen, e.first_seen, e.priority
            )?;
            for f in e.bundle.iter() {
                write!(w, " {}", f.0)?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Reads a history previously written by [`RequestHistory::write_to`].
    pub fn read_from<R: std::io::Read>(r: R) -> std::io::Result<Self> {
        use std::io::BufRead as _;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut lines = std::io::BufReader::new(r).lines();
        let mut next_line = move || -> std::io::Result<String> {
            loop {
                match lines.next() {
                    None => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "truncated history",
                        ))
                    }
                    Some(line) => {
                        let line = line?;
                        let t = line.trim();
                        if !t.is_empty() && !t.starts_with('#') {
                            return Ok(t.to_string());
                        }
                    }
                }
            }
        };

        let vf_line = next_line()?;
        let value_fn = if vf_line == "value_fn count" {
            ValueFn::Count
        } else if let Some(hl) = vf_line.strip_prefix("value_fn decay ") {
            ValueFn::Decay {
                half_life: hl.parse().map_err(|_| bad("bad half_life"))?,
            }
        } else {
            return Err(bad("expected 'value_fn ...'"));
        };
        let tick: u64 = next_line()?
            .strip_prefix("tick ")
            .ok_or_else(|| bad("expected 'tick <n>'"))?
            .parse()
            .map_err(|_| bad("bad tick"))?;
        let n: usize = next_line()?
            .strip_prefix("entries ")
            .ok_or_else(|| bad("expected 'entries <n>'"))?
            .parse()
            .map_err(|_| bad("bad entry count"))?;

        let mut history = RequestHistory::with_value_fn(value_fn);
        history.tick = tick;
        for _ in 0..n {
            let line = next_line()?;
            let mut tok = line.split_whitespace();
            let mut take = |name: &str| tok.next().ok_or_else(|| bad(&format!("missing {name}")));
            let count: u64 = take("count")?.parse().map_err(|_| bad("bad count"))?;
            let value_acc: f64 = take("value_acc")?.parse().map_err(|_| bad("bad value"))?;
            let value_tick: u64 = take("value_tick")?
                .parse()
                .map_err(|_| bad("bad value_tick"))?;
            let last_seen: u64 = take("last_seen")?
                .parse()
                .map_err(|_| bad("bad last_seen"))?;
            let first_seen: u64 = take("first_seen")?
                .parse()
                .map_err(|_| bad("bad first_seen"))?;
            let priority: f64 = take("priority")?.parse().map_err(|_| bad("bad priority"))?;
            let files: Vec<FileId> = tok
                .map(|t| t.parse::<u32>().map(FileId).map_err(|_| bad("bad file id")))
                .collect::<std::io::Result<_>>()?;
            if files.is_empty() {
                return Err(bad("entry without files"));
            }
            let bundle = Bundle::new(files);
            if history.entries.contains_key(&bundle) {
                return Err(bad("duplicate bundle entry"));
            }
            for f in bundle.iter() {
                *history.degrees.entry(f).or_insert(0) += 1;
            }
            history.entries.insert(
                bundle.clone(),
                HistoryEntry {
                    bundle,
                    count,
                    value_acc,
                    value_tick,
                    last_seen,
                    first_seen,
                    priority,
                },
            );
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn record_counts_and_degrees() {
        let mut h = RequestHistory::new();
        h.record(&b(&[1, 2]));
        h.record(&b(&[2, 3]));
        h.record(&b(&[1, 2])); // repeat: degrees unchanged
        assert_eq!(h.len(), 2);
        assert_eq!(h.total_requests(), 3);
        assert_eq!(h.degree(FileId(1)), 1);
        assert_eq!(h.degree(FileId(2)), 2);
        assert_eq!(h.degree(FileId(3)), 1);
        assert_eq!(h.degree(FileId(9)), 0);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.value_of(&b(&[1, 2])), Some(2.0));
    }

    #[test]
    fn forget_decrements_degrees() {
        let mut h = RequestHistory::new();
        h.record(&b(&[1, 2]));
        h.record(&b(&[2, 3]));
        assert!(h.forget(&b(&[1, 2])));
        assert_eq!(h.degree(FileId(1)), 0);
        assert_eq!(h.degree(FileId(2)), 1);
        assert!(!h.forget(&b(&[1, 2])));
    }

    #[test]
    fn adjusted_size_divides_by_degree() {
        let catalog = FileCatalog::from_sizes(vec![0, 100, 60]);
        let mut h = RequestHistory::new();
        h.record(&b(&[1, 2]));
        h.record(&b(&[1]));
        // d(f1)=2 -> s' = 50; d(f2)=1 -> s' = 60.
        assert!((h.adjusted_size(FileId(1), &catalog) - 50.0).abs() < 1e-12);
        assert!((h.adjusted_size(FileId(2), &catalog) - 60.0).abs() < 1e-12);
        // Unseen file keeps its full size.
        assert!((h.adjusted_size(FileId(0), &catalog) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn relative_value_matches_definition() {
        let catalog = FileCatalog::from_sizes(vec![100, 100]);
        let mut h = RequestHistory::new();
        let r = b(&[0, 1]);
        h.record(&r);
        h.record(&r);
        // v = 2, s'(f0)=s'(f1)=100 (degree 1 each) -> v' = 2/200.
        assert!((h.relative_value(&r, &catalog) - 0.01).abs() < 1e-12);
        // Unseen bundle defaults to value 1.
        let unseen = b(&[0]);
        assert!((h.relative_value(&unseen, &catalog) - 1.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn decayed_values_shrink_with_time() {
        let mut h = RequestHistory::with_value_fn(ValueFn::Decay { half_life: 2.0 });
        let hot = b(&[1]);
        h.record(&hot);
        // Four unrelated requests age the first one by 4 ticks = 2 half-lives.
        for i in 10..14 {
            h.record(&b(&[i]));
        }
        let v = h.value_of(&hot).unwrap();
        assert!((v - 0.25).abs() < 1e-9, "expected 0.25, got {v}");
        // Re-recording brings it back above 1.
        h.record(&hot);
        assert!(h.value_of(&hot).unwrap() > 1.0);
    }

    #[test]
    fn count_values_ignore_time() {
        let mut h = RequestHistory::new();
        let r = b(&[1]);
        h.record(&r);
        for i in 10..20 {
            h.record(&b(&[i]));
        }
        assert_eq!(h.value_of(&r), Some(1.0));
    }

    #[test]
    fn priority_scales_value() {
        let mut h = RequestHistory::new();
        let r = b(&[1]);
        h.record(&r);
        assert!(h.set_priority(&r, 5.0));
        assert_eq!(h.value_of(&r), Some(5.0));
        assert!(!h.set_priority(&b(&[99]), 2.0));
    }

    #[test]
    fn most_recent_orders_by_last_seen() {
        let mut h = RequestHistory::new();
        h.record(&b(&[1]));
        h.record(&b(&[2]));
        h.record(&b(&[3]));
        h.record(&b(&[1])); // refresh
        let recent: Vec<_> = h
            .most_recent(2)
            .into_iter()
            .map(|e| e.bundle.clone())
            .collect();
        assert_eq!(recent, vec![b(&[1]), b(&[3])]);
    }

    #[test]
    fn most_recent_matches_full_sort_for_every_n() {
        // Regression for the partial-selection rewrite: the returned order
        // must be unchanged vs collecting and fully sorting the history.
        let mut h = RequestHistory::new();
        let mut state = 0x9e37_79b9_u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) as u32 % 60;
            let bb = (state >> 17) as u32 % 60;
            h.record(&b(&[a, bb]));
        }
        let naive: Vec<Bundle> = {
            let mut v: Vec<&HistoryEntry> = h.entries().collect();
            v.sort_unstable_by_key(|e| std::cmp::Reverse(e.last_seen));
            v.into_iter().map(|e| e.bundle.clone()).collect()
        };
        for n in [
            0,
            1,
            2,
            7,
            naive.len().saturating_sub(1),
            naive.len(),
            naive.len() + 10,
        ] {
            let got: Vec<Bundle> = h
                .most_recent(n)
                .into_iter()
                .map(|e| e.bundle.clone())
                .collect();
            assert_eq!(got.len(), n.min(naive.len()), "n={n}");
            assert_eq!(got[..], naive[..n.min(naive.len())], "n={n}");
        }
    }

    /// The paper's worked example (§3, Fig. 3 / Table 1): six equally likely
    /// requests over seven files.
    fn paper_example() -> RequestHistory {
        let mut h = RequestHistory::new();
        // r1={f1,f3,f5}, r2={f2,f6,f7}, r3={f1,f5}, r4={f4,f6,f7},
        // r5={f3,f5}, r6={f5,f6,f7}.
        // This is the unique-style assignment consistent with BOTH paper
        // tables: Table 1's file-request counts (d(f1)=2, d(f2)=1, d(f3)=2,
        // d(f4)=1, d(f5)=4, d(f6)=3, d(f7)=3) and every row of Table 2,
        // including "{f1,f5,f6} supports r3".
        for r in [
            b(&[1, 3, 5]),
            b(&[2, 6, 7]),
            b(&[1, 5]),
            b(&[4, 6, 7]),
            b(&[3, 5]),
            b(&[5, 6, 7]),
        ] {
            h.record(&r);
        }
        h
    }

    #[test]
    fn table1_file_request_probabilities() {
        let h = paper_example();
        let p = |f: u32| h.file_request_probability(FileId(f));
        assert!((p(1) - 2.0 / 6.0).abs() < 1e-12);
        assert!((p(2) - 1.0 / 6.0).abs() < 1e-12);
        assert!((p(3) - 2.0 / 6.0).abs() < 1e-12);
        assert!((p(4) - 1.0 / 6.0).abs() < 1e-12);
        assert!((p(5) - 4.0 / 6.0).abs() < 1e-12);
        assert!((p(6) - 3.0 / 6.0).abs() < 1e-12);
        assert!((p(7) - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max_degree(), 4); // f5, as the paper notes
    }

    #[test]
    fn table2_request_hit_probabilities() {
        let h = paper_example();
        let hit = |cache: &[u32]| h.request_hit_probability(|f| cache.contains(&f.0));
        // Row 1: {f5,f6,f7} supports only r6 -> 1/6.
        assert!((hit(&[5, 6, 7]) - 1.0 / 6.0).abs() < 1e-12);
        // Row 2: {f1,f3,f5} supports r1, r3, r5 -> 1/2 (the paper's best).
        assert!((hit(&[1, 3, 5]) - 0.5).abs() < 1e-12);
        // Row 3: {f1,f5,f6} supports only r3 = {f1,f5}, as the paper lists.
        assert!((hit(&[1, 5, 6]) - 1.0 / 6.0).abs() < 1e-12);
        // Row 4: {f3,f5,f6} supports only r5 -> 1/6.
        assert!((hit(&[3, 5, 6]) - 1.0 / 6.0).abs() < 1e-12);
        // Row 5: {f1,f2,f3} supports nothing.
        assert_eq!(hit(&[1, 2, 3]), 0.0);
    }

    #[test]
    fn persistence_roundtrip_preserves_everything() {
        let mut h = RequestHistory::with_value_fn(ValueFn::Decay { half_life: 3.5 });
        for r in [b(&[1, 2]), b(&[2, 3]), b(&[1, 2]), b(&[4])] {
            h.record(&r);
        }
        h.set_priority(&b(&[4]), 2.5);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = RequestHistory::read_from(&buf[..]).unwrap();
        assert_eq!(back.len(), h.len());
        assert_eq!(back.total_requests(), h.total_requests());
        assert_eq!(back.value_fn(), h.value_fn());
        for f in 1..=4u32 {
            assert_eq!(back.degree(FileId(f)), h.degree(FileId(f)));
        }
        for r in [b(&[1, 2]), b(&[2, 3]), b(&[4])] {
            let (a, bb) = (h.value_of(&r).unwrap(), back.value_of(&r).unwrap());
            assert!((a - bb).abs() < 1e-9, "{a} vs {bb}");
            assert_eq!(
                h.get(&r).unwrap().last_seen,
                back.get(&r).unwrap().last_seen
            );
        }
        // A restarted SRM keeps ranking identically.
        let catalog = FileCatalog::from_sizes(vec![0, 10, 10, 10, 10]);
        assert!(
            (h.relative_value(&b(&[1, 2]), &catalog) - back.relative_value(&b(&[1, 2]), &catalog))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn persistence_rejects_malformed_input() {
        for text in [
            "value_fn sometimes
tick 0
entries 0
",
            "value_fn count
tick x
entries 0
",
            "value_fn count
tick 1
entries 1
1 1 1 1 1 1
", // no files
            "value_fn count
tick 1
entries 2
1 1 1 1 1 1 3
1 1 1 1 1 1 3
", // dup
            "value_fn count
tick 1
entries 1
", // truncated
        ] {
            assert!(
                RequestHistory::read_from(text.as_bytes()).is_err(),
                "{text:?}"
            );
        }
    }

    #[test]
    fn empty_history_probabilities_are_zero() {
        let h = RequestHistory::new();
        assert_eq!(h.file_request_probability(FileId(0)), 0.0);
        assert_eq!(h.request_hit_probability(|_| true), 0.0);
    }
}

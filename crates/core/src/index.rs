//! Inverted file→request index over a
//! [`RequestHistory`](crate::history::RequestHistory).
//!
//! `OptFileBundle` with cache-supported truncation must find, on every
//! replacement, the historical requests whose files are all in
//! `F(C) ∪ F(r_new)`. Scanning the whole history is `O(|R| · b)`; with an
//! inverted index the scan touches only requests that intersect the cache:
//! for each cached file, the index lists the bundles using it, and a bundle
//! is a candidate when its *resident-file counter* equals its size.
//!
//! The index is maintained incrementally alongside the history and the
//! cache (`on_record` / `on_insert` / `on_evict`); `candidates()` is then
//! `O(Σ_{f resident} |bundles(f)|)` amortised — in the common regime where
//! the cache holds a small fraction of all files this is far below a full
//! scan (see `benches/history.rs`).

use crate::bitset::ResidencySet;
use crate::bundle::Bundle;
use crate::types::FileId;
use rustc_hash::FxHashMap;

/// Incrementally maintained "which bundles are fully resident" index.
#[derive(Debug, Clone, Default)]
pub struct SupportIndex {
    /// file → indices of bundles containing it. FxHash throughout: keys
    /// are small fixed-width ids on the decision hot path, and no map's
    /// iteration order is ever observed (results follow `bundles`'
    /// registration order).
    by_file: FxHashMap<FileId, Vec<u32>>,
    /// All tracked bundles.
    bundles: Vec<Bundle>,
    /// Bundle → its index in `bundles`.
    ids: FxHashMap<Bundle, u32>,
    /// Per-bundle count of currently resident files.
    resident_count: Vec<u32>,
    /// Mirror of the cache's resident set, in the same word-packed
    /// representation [`crate::cache::CacheState`] uses — membership here
    /// is the same one-load bit test as the cache's own `contains`.
    resident: ResidencySet,
}

impl SupportIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether no bundle is tracked.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Registers a (possibly already known) bundle; call when the history
    /// records a request.
    pub fn on_record(&mut self, bundle: &Bundle) {
        if self.ids.contains_key(bundle) {
            return;
        }
        let id = self.bundles.len() as u32;
        self.ids.insert(bundle.clone(), id);
        self.bundles.push(bundle.clone());
        let mut count = 0;
        for f in bundle.iter() {
            self.by_file.entry(f).or_default().push(id);
            if self.resident.contains(f) {
                count += 1;
            }
        }
        self.resident_count.push(count);
    }

    /// Notifies the index that `file` became resident.
    pub fn on_insert(&mut self, file: FileId) {
        if self.resident.insert(file) {
            if let Some(bundles) = self.by_file.get(&file) {
                for &b in bundles {
                    self.resident_count[b as usize] += 1;
                }
            }
        }
    }

    /// Notifies the index that `file` was evicted.
    pub fn on_evict(&mut self, file: FileId) {
        if self.resident.remove(file) {
            if let Some(bundles) = self.by_file.get(&file) {
                for &b in bundles {
                    self.resident_count[b as usize] -= 1;
                }
            }
        }
    }

    /// Whether the index believes `file` is resident.
    pub fn is_resident(&self, file: FileId) -> bool {
        self.resident.contains(file)
    }

    /// The bundle registered under dense id `id` (as returned by
    /// [`SupportIndex::supported_with`]).
    #[inline]
    pub fn bundle(&self, id: u32) -> &Bundle {
        &self.bundles[id as usize]
    }

    /// Dense ids of the bundles that are fully supported by the resident
    /// set *plus* the files of `extra` (the arriving request, whose space
    /// is reserved). Results are in registration order; resolve ids with
    /// [`SupportIndex::bundle`]. Returning ids instead of `&Bundle`s lets
    /// callers key follow-up work off a `u32` rather than re-hashing whole
    /// bundles.
    pub fn supported_with(&self, extra: &Bundle) -> Vec<u32> {
        let mut out = Vec::new();
        // Count additional support each bundle gains from `extra`'s
        // non-resident files.
        let mut bonus: FxHashMap<u32, u32> = FxHashMap::default();
        for f in extra.iter() {
            if !self.resident.contains(f) {
                if let Some(bundles) = self.by_file.get(&f) {
                    for &b in bundles {
                        *bonus.entry(b).or_insert(0) += 1;
                    }
                }
            }
        }
        for (i, bundle) in self.bundles.iter().enumerate() {
            let have = self.resident_count[i] + bonus.get(&(i as u32)).copied().unwrap_or(0);
            if have as usize == bundle.len() {
                out.push(i as u32);
            }
        }
        out
    }

    /// Bundles fully supported by the resident set alone.
    pub fn supported(&self) -> Vec<&Bundle> {
        self.supported_with(&Bundle::new([]))
            .into_iter()
            .map(|id| self.bundle(id))
            .collect()
    }

    /// Exhaustive consistency check against a membership oracle (tests).
    pub fn check_consistency<F: Fn(FileId) -> bool>(&self, resident: F) -> bool {
        self.bundles.iter().enumerate().all(|(i, b)| {
            let expected = b.iter().filter(|&f| resident(f)).count() as u32;
            self.resident_count[i] == expected
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn tracks_residency_incrementally() {
        let mut idx = SupportIndex::new();
        idx.on_record(&b(&[0, 1]));
        idx.on_record(&b(&[1, 2]));
        assert!(idx.supported().is_empty());

        idx.on_insert(FileId(0));
        idx.on_insert(FileId(1));
        let s: Vec<_> = idx.supported().into_iter().cloned().collect();
        assert_eq!(s, vec![b(&[0, 1])]);

        idx.on_insert(FileId(2));
        assert_eq!(idx.supported().len(), 2);

        idx.on_evict(FileId(1));
        assert!(idx.supported().is_empty());
    }

    #[test]
    fn duplicate_records_and_events_are_idempotent() {
        let mut idx = SupportIndex::new();
        idx.on_record(&b(&[0]));
        idx.on_record(&b(&[0]));
        assert_eq!(idx.len(), 1);
        idx.on_insert(FileId(0));
        idx.on_insert(FileId(0)); // double insert: no double count
        assert_eq!(idx.supported().len(), 1);
        idx.on_evict(FileId(0));
        idx.on_evict(FileId(0)); // double evict: no underflow
        assert!(idx.supported().is_empty());
    }

    #[test]
    fn late_registration_counts_existing_residents() {
        let mut idx = SupportIndex::new();
        idx.on_insert(FileId(3));
        idx.on_insert(FileId(4));
        idx.on_record(&b(&[3, 4])); // registered after its files arrived
        assert_eq!(idx.supported().len(), 1);
    }

    #[test]
    fn supported_with_extends_by_incoming_bundle() {
        let mut idx = SupportIndex::new();
        idx.on_record(&b(&[0, 1]));
        idx.on_record(&b(&[1, 2]));
        idx.on_insert(FileId(1));
        // Neither bundle is supported by {1} alone...
        assert!(idx.supported().is_empty());
        // ...but with the arriving request {0} the first one is.
        let s = idx.supported_with(&b(&[0]));
        assert_eq!(s.len(), 1);
        assert_eq!(*idx.bundle(s[0]), b(&[0, 1]));
    }

    #[test]
    fn extra_files_already_resident_do_not_double_count() {
        let mut idx = SupportIndex::new();
        idx.on_record(&b(&[0, 1]));
        idx.on_insert(FileId(0));
        idx.on_insert(FileId(1));
        // `extra` overlapping the resident set must not over-count.
        let s = idx.supported_with(&b(&[0, 1]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn consistency_check_matches_oracle() {
        let mut idx = SupportIndex::new();
        let mut resident = std::collections::HashSet::new();
        let mut state = 0xFACEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            match next() % 3 {
                0 => {
                    let k = (next() % 3 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % 12) as u32).collect();
                    idx.on_record(&Bundle::from_raw(files));
                }
                1 => {
                    let f = FileId((next() % 12) as u32);
                    resident.insert(f);
                    idx.on_insert(f);
                }
                _ => {
                    let f = FileId((next() % 12) as u32);
                    resident.remove(&f);
                    idx.on_evict(f);
                }
            }
            assert!(idx.check_consistency(|f| resident.contains(&f)));
        }
    }
}

//! Standalone instances of the File-Bundle Caching (FBC) combinatorial
//! problem (paper §4).
//!
//! An instance decouples the *algorithms* (`OptCacheSelect`, the exact
//! branch-and-bound, partial enumeration) from the *online machinery*
//! (history, cache): given requests with values over files with sizes and a
//! capacity, find a subset of requests of maximum total value whose union of
//! files fits. The online `OptFileBundle` policy builds one instance per
//! replacement decision; tests and benches build them directly.
//!
//! Files inside an instance are dense local indices (`u32`), not global
//! [`FileId`](crate::types::FileId)s — the policy layer maintains the
//! mapping. A file may be given size 0 to mark it *pre-reserved* (e.g. the
//! files of the arriving request, whose space is already accounted for), so
//! selecting requests that reuse it costs nothing.

use crate::error::{FbcError, Result};
use crate::types::Bytes;

/// One request of an FBC instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceRequest {
    /// Sorted, deduplicated local file indices.
    files: Vec<u32>,
    /// The request's value `v(r)` (must be non-negative and finite).
    pub value: f64,
}

impl InstanceRequest {
    /// The request's files (sorted local indices).
    #[inline]
    pub fn files(&self) -> &[u32] {
        &self.files
    }

    /// Consumes the request, returning its file buffer (so callers that
    /// build instances in a hot loop can recycle the allocation).
    #[inline]
    pub fn into_files(self) -> Vec<u32> {
        self.files
    }
}

/// An immutable, validated FBC problem instance.
#[derive(Debug, Clone)]
pub struct FbcInstance {
    capacity: Bytes,
    file_sizes: Vec<Bytes>,
    requests: Vec<InstanceRequest>,
    /// `d(f)` per file. Defaults to the in-instance degree; may be
    /// overridden with global-history degrees (paper §5.2: popularity and
    /// file sharing are taken "from the global history").
    degrees: Vec<u32>,
    /// Memoised `Σ_{f ∈ F(r_i)} s(f)` per request. `best_single` and the
    /// literal greedy consult request sizes in a loop; precomputing them at
    /// construction turns those lookups into array reads for the same total
    /// cost as one pass.
    request_sizes: Vec<Bytes>,
    /// Memoised `Σ_{f ∈ F(r_i)} s'(f)` per request, summed in ascending
    /// local-index order — the exact order [`Self::request_adjusted_size`]
    /// used to sum on the fly, so the cached value is bit-identical. The
    /// greedy variants read this denominator once per candidate per sort
    /// (and the shared-credit kernel once per candidate at seed time);
    /// memoising it turns `O(b)` float loops into array reads. Depends on
    /// the degrees, so [`Self::recompute_degrees`] refreshes it.
    request_adjusted: Vec<f64>,
    /// Lazily built file→request adjacency in CSR form (`offsets` of length
    /// `m + 1`, request indices grouped by file). A pure function of the
    /// immutable request structure — independent of degrees and capacity —
    /// so it is computed at most once per instance, on first use by the
    /// shared-credit kernel, instead of once per selection.
    adjacency: std::sync::OnceLock<CsrAdjacency>,
    /// Lazily flattened request→file lists in CSR form (`offsets` of length
    /// `n + 1`, file indices concatenated in per-request ascending order).
    /// The per-request `Vec`s behind [`Self::requests`] cost the kernel's
    /// marginal recomputation a dependent pointer chase per visit; the flat
    /// copy turns that into two contiguous slice reads.
    flat_requests: std::sync::OnceLock<CsrAdjacency>,
    /// Memoised `(s(f), s'(f))` per file, fused so the kernel's marginal
    /// loop touches one table instead of gathering from `file_sizes` and
    /// recomputing the adjusted size. The `f64` component is computed by
    /// the exact expression [`Self::adjusted_size`] uses, so sums over it
    /// are bit-identical. Depends on the degrees, so
    /// [`Self::recompute_degrees`] refreshes it (via `memoise_adjusted`).
    file_size_adjusted: Vec<(Bytes, f64)>,
}

/// Memoised file→request CSR adjacency of an instance.
#[derive(Debug, Clone)]
struct CsrAdjacency {
    offsets: Vec<u32>,
    requests: Vec<u32>,
}

impl FbcInstance {
    /// Builds an instance, computing file degrees from the requests.
    ///
    /// Each request is given as `(file_indices, value)`. File indices must
    /// be `< file_sizes.len()`; duplicates within a request are removed.
    pub fn new(
        capacity: Bytes,
        file_sizes: Vec<Bytes>,
        requests: Vec<(Vec<u32>, f64)>,
    ) -> Result<Self> {
        let mut inst = Self::with_degrees(capacity, file_sizes, requests, None)?;
        inst.recompute_degrees();
        Ok(inst)
    }

    /// Builds an instance with explicit degree overrides (`None` entries in
    /// the public constructor path are filled by [`Self::recompute_degrees`]).
    pub fn with_degrees(
        capacity: Bytes,
        file_sizes: Vec<Bytes>,
        requests: Vec<(Vec<u32>, f64)>,
        degrees: Option<Vec<u32>>,
    ) -> Result<Self> {
        let m = file_sizes.len();
        let mut reqs = Vec::with_capacity(requests.len());
        let mut request_sizes = Vec::with_capacity(requests.len());
        for (mut files, value) in requests {
            files.sort_unstable();
            files.dedup();
            if let Some(&bad) = files.iter().find(|&&f| f as usize >= m) {
                return Err(FbcError::InvalidConfig(format!(
                    "request references file index {bad} but instance has only {m} files"
                )));
            }
            if !value.is_finite() || value < 0.0 {
                return Err(FbcError::InvalidConfig(format!(
                    "request value must be finite and non-negative, got {value}"
                )));
            }
            request_sizes.push(files.iter().map(|&f| file_sizes[f as usize]).sum());
            reqs.push(InstanceRequest { files, value });
        }
        let degrees = match degrees {
            Some(d) => {
                if d.len() != m {
                    return Err(FbcError::InvalidConfig(format!(
                        "degree override has {} entries for {m} files",
                        d.len()
                    )));
                }
                d
            }
            None => vec![0; m],
        };
        let mut inst = Self {
            capacity,
            file_sizes,
            requests: reqs,
            degrees,
            request_sizes,
            request_adjusted: Vec::new(),
            adjacency: std::sync::OnceLock::new(),
            flat_requests: std::sync::OnceLock::new(),
            file_size_adjusted: Vec::new(),
        };
        inst.memoise_adjusted();
        Ok(inst)
    }

    /// Recomputes `d(f)` as the number of instance requests containing `f`.
    pub fn recompute_degrees(&mut self) {
        self.degrees = vec![0; self.file_sizes.len()];
        for r in &self.requests {
            for &f in &r.files {
                self.degrees[f as usize] += 1;
            }
        }
        // The adjusted-size memo divides by the degrees; refresh it.
        self.memoise_adjusted();
    }

    /// Rebuilds the per-request adjusted-size memo from the current degrees,
    /// summing each request's `s'(f)` terms in file order (ascending local
    /// index) — the same order the on-the-fly computation used.
    fn memoise_adjusted(&mut self) {
        self.request_adjusted.clear();
        self.request_adjusted.reserve(self.requests.len());
        for r in &self.requests {
            let sum: f64 = r
                .files
                .iter()
                .map(|&f| {
                    self.file_sizes[f as usize] as f64 / self.degrees[f as usize].max(1) as f64
                })
                .sum();
            self.request_adjusted.push(sum);
        }
        self.file_size_adjusted.clear();
        self.file_size_adjusted.reserve(self.file_sizes.len());
        for f in 0..self.file_sizes.len() {
            self.file_size_adjusted.push((
                self.file_sizes[f],
                self.file_sizes[f] as f64 / self.degrees[f].max(1) as f64,
            ));
        }
    }

    /// Problem capacity `s(C)`.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Number of files `m`.
    #[inline]
    pub fn num_files(&self) -> usize {
        self.file_sizes.len()
    }

    /// Number of requests `n`.
    #[inline]
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// Size `s(f)` of local file `f`.
    #[inline]
    pub fn file_size(&self, f: u32) -> Bytes {
        self.file_sizes[f as usize]
    }

    /// Degree `d(f)` of local file `f`.
    #[inline]
    pub fn degree(&self, f: u32) -> u32 {
        self.degrees[f as usize]
    }

    /// Maximum degree `d` over all files (the `d` of Theorem 4.1).
    /// Returns 1 for an instance with no shared files or no requests, so the
    /// bound formulas never divide by zero.
    pub fn max_degree(&self) -> u32 {
        self.degrees.iter().copied().max().unwrap_or(0).max(1)
    }

    /// Adjusted size `s'(f) = s(f) / d(f)` (degree clamped to 1).
    #[inline]
    pub fn adjusted_size(&self, f: u32) -> f64 {
        self.file_sizes[f as usize] as f64 / self.degrees[f as usize].max(1) as f64
    }

    /// The requests of the instance.
    #[inline]
    pub fn requests(&self) -> &[InstanceRequest] {
        &self.requests
    }

    /// The memoised file→request adjacency as `(offsets, requests)`: the
    /// requests containing file `f` are `requests[offsets[f] as usize ..
    /// offsets[f + 1] as usize]`, in ascending request order. Built once per
    /// instance on first call (one counting pass and one fill pass over the
    /// requests), then free.
    pub fn file_request_adjacency(&self) -> (&[u32], &[u32]) {
        let adj = self.adjacency.get_or_init(|| {
            let m = self.file_sizes.len();
            let mut offsets = vec![0u32; m + 1];
            for r in &self.requests {
                for &f in &r.files {
                    offsets[f as usize + 1] += 1;
                }
            }
            for f in 0..m {
                offsets[f + 1] += offsets[f];
            }
            let mut cursor: Vec<u32> = offsets[..m].to_vec();
            let mut requests = vec![0u32; offsets[m] as usize];
            for (i, r) in self.requests.iter().enumerate() {
                for &f in &r.files {
                    let c = &mut cursor[f as usize];
                    requests[*c as usize] = i as u32;
                    *c += 1;
                }
            }
            CsrAdjacency { offsets, requests }
        });
        (&adj.offsets, &adj.requests)
    }

    /// The memoised flat request→file lists as `(offsets, files)`: the
    /// files of request `i` are `files[offsets[i] as usize .. offsets[i + 1]
    /// as usize]`, in the same ascending order as
    /// [`InstanceRequest::files`]. Built once per instance on first call.
    pub fn request_file_csr(&self) -> (&[u32], &[u32]) {
        let flat = self.flat_requests.get_or_init(|| {
            let mut offsets = Vec::with_capacity(self.requests.len() + 1);
            offsets.push(0u32);
            let total: usize = self.requests.iter().map(|r| r.files.len()).sum();
            let mut files = Vec::with_capacity(total);
            for r in &self.requests {
                files.extend_from_slice(&r.files);
                offsets.push(files.len() as u32);
            }
            CsrAdjacency {
                offsets,
                requests: files,
            }
        });
        (&flat.offsets, &flat.requests)
    }

    /// The memoised fused per-file `(s(f), s'(f))` table.
    #[inline]
    pub fn file_size_adjusted_table(&self) -> &[(Bytes, f64)] {
        &self.file_size_adjusted
    }

    /// Total (deduplicated) size of the files of request `i` (memoised at
    /// construction).
    #[inline]
    pub fn request_size(&self, i: usize) -> Bytes {
        self.request_sizes[i]
    }

    /// Decomposes the instance into its owned buffers
    /// `(file_sizes, degrees, requests)` so hot-loop callers (one instance
    /// per replacement decision) can recycle the allocations instead of
    /// dropping them.
    pub fn into_parts(self) -> (Vec<Bytes>, Vec<u32>, Vec<InstanceRequest>) {
        (self.file_sizes, self.degrees, self.requests)
    }

    /// Sum of adjusted sizes `Σ s'(f)` over request `i`'s files (memoised
    /// at construction / [`Self::recompute_degrees`], summed in the same
    /// ascending-index order the pre-memo implementation did, so the value
    /// is bit-identical).
    #[inline]
    pub fn request_adjusted_size(&self, i: usize) -> f64 {
        self.request_adjusted[i]
    }

    /// Adjusted relative value `v'(r_i) = v(r_i) / Σ s'(f)`.
    ///
    /// A request whose files are all pre-reserved (denominator 0) gets
    /// `+∞` — it consumes no cache resources and should always be taken.
    pub fn relative_value(&self, i: usize) -> f64 {
        let denom = self.request_adjusted_size(i);
        if denom <= 0.0 {
            if self.requests[i].value > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.requests[i].value / denom
        }
    }

    /// Union of files over a set of request indices (sorted, deduplicated).
    pub fn union_files(&self, chosen: &[usize]) -> Vec<u32> {
        let mut v: Vec<u32> = chosen
            .iter()
            .flat_map(|&i| self.requests[i].files.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total size of the union of files over `chosen`.
    pub fn union_size(&self, chosen: &[usize]) -> Bytes {
        self.union_files(chosen)
            .iter()
            .map(|&f| self.file_sizes[f as usize])
            .sum()
    }

    /// Total value over `chosen`.
    pub fn total_value(&self, chosen: &[usize]) -> f64 {
        chosen.iter().map(|&i| self.requests[i].value).sum()
    }

    /// Whether `chosen` is a feasible solution (union fits in capacity).
    pub fn is_feasible(&self, chosen: &[usize]) -> bool {
        self.union_size(chosen) <= self.capacity
    }
}

/// A solution to an FBC instance: which requests were selected, the file
/// union they pin in the cache, and its value/size.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices (into [`FbcInstance::requests`]) of the selected requests,
    /// in selection order.
    pub chosen: Vec<usize>,
    /// Union of the selected requests' files (sorted local indices).
    pub files: Vec<u32>,
    /// Total value `v(G)`.
    pub value: f64,
    /// Total size of the file union in bytes.
    pub bytes: Bytes,
}

impl Selection {
    /// The empty selection.
    pub fn empty() -> Self {
        Self {
            chosen: Vec::new(),
            files: Vec::new(),
            value: 0.0,
            bytes: 0,
        }
    }

    /// Builds a selection from chosen request indices, deriving the union.
    pub fn from_chosen(inst: &FbcInstance, chosen: Vec<usize>) -> Self {
        let files = inst.union_files(&chosen);
        let bytes = files.iter().map(|&f| inst.file_size(f)).sum();
        let value = inst.total_value(&chosen);
        Self {
            chosen,
            files,
            value,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FbcInstance {
        // files: sizes 10, 20, 30
        // r0 = {0,1} v=3 ; r1 = {1,2} v=4 ; r2 = {0} v=1
        FbcInstance::new(
            60,
            vec![10, 20, 30],
            vec![(vec![0, 1], 3.0), (vec![1, 2], 4.0), (vec![0], 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn degrees_computed_from_requests() {
        let inst = toy();
        assert_eq!(inst.degree(0), 2);
        assert_eq!(inst.degree(1), 2);
        assert_eq!(inst.degree(2), 1);
        assert_eq!(inst.max_degree(), 2);
    }

    #[test]
    fn adjusted_sizes_and_relative_values() {
        let inst = toy();
        assert!((inst.adjusted_size(0) - 5.0).abs() < 1e-12);
        assert!((inst.adjusted_size(1) - 10.0).abs() < 1e-12);
        assert!((inst.adjusted_size(2) - 30.0).abs() < 1e-12);
        // v'(r0) = 3 / (5+10) = 0.2 ; v'(r1) = 4/40 = 0.1 ; v'(r2) = 1/5.
        assert!((inst.relative_value(0) - 0.2).abs() < 1e-12);
        assert!((inst.relative_value(1) - 0.1).abs() < 1e-12);
        assert!((inst.relative_value(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn union_accounting_dedupes_shared_files() {
        let inst = toy();
        assert_eq!(inst.union_files(&[0, 1]), vec![0, 1, 2]);
        assert_eq!(inst.union_size(&[0, 1]), 60);
        assert!((inst.total_value(&[0, 1]) - 7.0).abs() < 1e-12);
        assert!(inst.is_feasible(&[0, 1]));
    }

    #[test]
    fn degree_override_is_respected() {
        let inst =
            FbcInstance::with_degrees(100, vec![100], vec![(vec![0], 1.0)], Some(vec![4])).unwrap();
        assert_eq!(inst.degree(0), 4);
        assert!((inst.adjusted_size(0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(FbcInstance::new(10, vec![5], vec![(vec![1], 1.0)]).is_err());
        assert!(FbcInstance::new(10, vec![5], vec![(vec![0], f64::NAN)]).is_err());
        assert!(FbcInstance::new(10, vec![5], vec![(vec![0], -1.0)]).is_err());
        assert!(FbcInstance::with_degrees(10, vec![5], vec![], Some(vec![1, 2])).is_err());
    }

    #[test]
    fn zero_size_files_give_infinite_relative_value() {
        let inst =
            FbcInstance::new(10, vec![0, 0], vec![(vec![0, 1], 2.0), (vec![0], 0.0)]).unwrap();
        assert_eq!(inst.relative_value(0), f64::INFINITY);
        assert_eq!(inst.relative_value(1), 0.0); // zero value, zero size
    }

    #[test]
    fn duplicate_files_within_request_are_removed() {
        let inst = FbcInstance::new(100, vec![10], vec![(vec![0, 0, 0], 1.0)]).unwrap();
        assert_eq!(inst.requests()[0].files(), &[0]);
        assert_eq!(inst.request_size(0), 10);
    }

    #[test]
    fn selection_from_chosen_derives_union() {
        let inst = toy();
        let sel = Selection::from_chosen(&inst, vec![0, 2]);
        assert_eq!(sel.files, vec![0, 1]);
        assert_eq!(sel.bytes, 30);
        assert!((sel.value - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_max_degree_is_one() {
        let inst = FbcInstance::new(10, vec![], vec![]).unwrap();
        assert_eq!(inst.max_degree(), 1);
    }
}

//! 0/1 knapsack — the special case of FBC where every file is needed by
//! exactly one request (paper §4: "in the special case that each file is
//! needed by exactly one request the FBC problem is equivalent to the
//! well-known knapsack problem").
//!
//! The dynamic program here is an independent reference implementation:
//! the test suite cross-checks [`solve_exact`](crate::exact::solve_exact)
//! against it on disjoint-file instances, validating both solvers.

use crate::error::{FbcError, Result};
use crate::instance::FbcInstance;

/// A knapsack item: weight and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Weight (bytes, in the FBC interpretation).
    pub weight: u64,
    /// Value.
    pub value: f64,
}

/// Solves 0/1 knapsack exactly by dynamic programming over capacity.
///
/// ```
/// use fbc_core::knapsack::{solve_knapsack, Item};
/// let items = [
///     Item { weight: 3, value: 4.0 },
///     Item { weight: 4, value: 5.0 },
///     Item { weight: 5, value: 6.0 },
/// ];
/// let (chosen, value) = solve_knapsack(&items, 7).unwrap();
/// assert_eq!((chosen, value), (vec![0, 1], 9.0));
/// ```
///
/// Runs in `O(n · capacity)` time and `O(capacity)` values + `O(n ·
/// capacity)` choice bits; `capacity` is clamped to 1 MiB of DP cells to
/// keep accidental huge inputs from exhausting memory.
///
/// Returns `(chosen item indices, total value)`.
pub fn solve_knapsack(items: &[Item], capacity: u64) -> Result<(Vec<usize>, f64)> {
    const MAX_CELLS: u64 = 1 << 20;
    if capacity >= MAX_CELLS {
        return Err(FbcError::InvalidConfig(format!(
            "knapsack DP capacity {capacity} exceeds the {MAX_CELLS}-cell safety limit"
        )));
    }
    let cap = capacity as usize;
    let n = items.len();
    // best[w] = best value using a prefix of items at weight w.
    let mut best = vec![0.0f64; cap + 1];
    // take[i][w] = whether item i is taken at weight w in the optimum.
    let mut take = vec![false; n * (cap + 1)];

    for (i, item) in items.iter().enumerate() {
        if item.weight > capacity {
            continue;
        }
        let w_item = item.weight as usize;
        // Iterate weights downward so each item is used at most once.
        for w in (w_item..=cap).rev() {
            let candidate = best[w - w_item] + item.value;
            if candidate > best[w] {
                best[w] = candidate;
                take[i * (cap + 1) + w] = true;
            }
        }
    }

    // Backtrack.
    let mut chosen = Vec::new();
    let mut w = cap;
    for i in (0..n).rev() {
        if take[i * (cap + 1) + w] {
            chosen.push(i);
            w -= items[i].weight as usize;
        }
    }
    chosen.reverse();
    let value = best[cap];
    Ok((chosen, value))
}

/// Interprets a *disjoint-file* FBC instance as knapsack items (one item
/// per request, weight = total bundle size). Errors if any file is shared
/// between requests — then the instance is genuinely harder than knapsack.
pub fn fbc_as_knapsack(inst: &FbcInstance) -> Result<Vec<Item>> {
    let mut owner = vec![None::<usize>; inst.num_files()];
    for (i, req) in inst.requests().iter().enumerate() {
        for &f in req.files() {
            match owner[f as usize] {
                None => owner[f as usize] = Some(i),
                Some(other) if other == i => {}
                Some(other) => {
                    return Err(FbcError::InvalidConfig(format!(
                        "file {f} is shared by requests {other} and {i}; not a knapsack instance"
                    )))
                }
            }
        }
    }
    Ok((0..inst.num_requests())
        .map(|i| Item {
            weight: inst.request_size(i),
            value: inst.requests()[i].value,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;

    #[test]
    fn textbook_instance() {
        // (w,v): (3,4) (4,5) (5,6), cap 7 -> 4+5 = 9.
        let items = [
            Item {
                weight: 3,
                value: 4.0,
            },
            Item {
                weight: 4,
                value: 5.0,
            },
            Item {
                weight: 5,
                value: 6.0,
            },
        ];
        let (chosen, value) = solve_knapsack(&items, 7).unwrap();
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(value, 9.0);
    }

    #[test]
    fn zero_capacity_and_oversized_items() {
        let items = [Item {
            weight: 5,
            value: 10.0,
        }];
        let (chosen, value) = solve_knapsack(&items, 0).unwrap();
        assert!(chosen.is_empty());
        assert_eq!(value, 0.0);
        let (chosen, _) = solve_knapsack(&items, 4).unwrap();
        assert!(chosen.is_empty());
    }

    #[test]
    fn dp_matches_branch_and_bound_on_disjoint_instances() {
        let mut state = 0x6A5Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            // Disjoint instance: request i owns files 2i and 2i+1.
            let n = (next() % 10 + 1) as usize;
            let sizes: Vec<u64> = (0..2 * n).map(|_| next() % 15 + 1).collect();
            let requests: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|i| {
                    (
                        vec![2 * i as u32, 2 * i as u32 + 1],
                        (next() % 40 + 1) as f64,
                    )
                })
                .collect();
            let cap = next() % 100;
            let inst = FbcInstance::new(cap, sizes, requests).unwrap();
            let items = fbc_as_knapsack(&inst).unwrap();
            let (_, dp_value) = solve_knapsack(&items, cap).unwrap();
            let bb = solve_exact(&inst);
            assert!(
                (dp_value - bb.value).abs() < 1e-9,
                "DP {dp_value} != B&B {}",
                bb.value
            );
        }
    }

    #[test]
    fn shared_file_instances_are_rejected() {
        let inst =
            FbcInstance::new(10, vec![1, 1], vec![(vec![0, 1], 1.0), (vec![0], 1.0)]).unwrap();
        assert!(fbc_as_knapsack(&inst).is_err());
    }

    #[test]
    fn huge_capacity_rejected() {
        let items = [Item {
            weight: 1,
            value: 1.0,
        }];
        assert!(solve_knapsack(&items, u64::MAX).is_err());
    }

    #[test]
    fn sharing_makes_fbc_beat_knapsack_weights() {
        // With sharing, the union is cheaper than the sum of weights — the
        // knapsack view (if it ignored sharing) would under-select. Verify
        // the exact FBC optimum exceeds the knapsack optimum computed on
        // naive full weights.
        let inst = FbcInstance::new(
            30,
            vec![10, 10, 10],
            vec![(vec![0, 1], 5.0), (vec![1, 2], 5.0)],
        )
        .unwrap();
        let naive_items: Vec<Item> = (0..2)
            .map(|i| Item {
                weight: inst.request_size(i),
                value: inst.requests()[i].value,
            })
            .collect();
        let (_, naive) = solve_knapsack(&naive_items, 30).unwrap();
        let fbc = solve_exact(&inst);
        assert_eq!(naive, 5.0); // 20+20 > 30: only one "item" fits
        assert_eq!(fbc.value, 10.0); // union {0,1,2} = 30 fits both
    }
}

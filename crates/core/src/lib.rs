//! # fbc-core — Optimal File-Bundle Caching Algorithms
//!
//! A from-scratch implementation of the caching algorithms of Otoo, Rotem &
//! Romosan, *Optimal File-Bundle Caching Algorithms for Data-Grids* (SC 2004).
//!
//! In a data-grid, a Storage Resource Manager services *jobs* that each need
//! a **file-bundle** — a set of files that must all be resident in the disk
//! cache simultaneously before the job can run. Classic popularity-based
//! replacement (LRU/LFU/Landlord) ignores the *inter-file dependencies* of
//! such workloads and can hold useless combinations of individually popular
//! files; this crate implements the paper's bundle-aware alternative:
//!
//! * [`history::RequestHistory`] — the `L(R)` structure tracking request
//!   popularity, file degrees `d(f)`, adjusted sizes `s'(f) = s(f)/d(f)` and
//!   adjusted relative values `v'(r)`;
//! * [`select::opt_cache_select`] — the `OptCacheSelect` greedy heuristic
//!   (Algorithm 1), a `½(1 − e^{−1/d})`-approximation to the NP-hard
//!   File-Bundle Caching problem;
//! * [`optfilebundle::OptFileBundle`] — the online replacement policy
//!   (Algorithm 2) built on top of it;
//! * [`exact::solve_exact`] and [`enumerate::opt_cache_select_enumerated`] —
//!   the exact branch-and-bound reference and the `(1 − e^{−1/d})`
//!   partial-enumeration variant used to validate Theorem 4.1;
//! * [`dks`] — the Dense-k-Subgraph reduction that proves FBC NP-hard.
//!
//! ## Quick start
//!
//! ```
//! use fbc_core::prelude::*;
//!
//! // Seven unit-size files, a cache that holds three of them.
//! let catalog = FileCatalog::from_sizes(vec![1; 7]);
//! let mut cache = CacheState::new(3);
//! let mut policy = OptFileBundle::new();
//!
//! // Jobs request *bundles* of files that must be co-resident.
//! let job = Bundle::from_raw([0, 2, 4]);
//! let outcome = policy.handle(&job, &mut cache, &catalog);
//! assert!(outcome.serviced);
//! assert_eq!(outcome.fetched_bytes, 3);
//!
//! // A repeat of the same bundle is a request-hit: no data moves.
//! let again = policy.handle(&job, &mut cache, &catalog);
//! assert!(again.hit);
//! assert_eq!(again.fetched_bytes, 0);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod bounds;
pub mod bundle;
pub mod cache;
pub mod catalog;
pub mod dks;
pub mod enumerate;
pub mod error;
pub mod exact;
pub mod history;
pub mod index;
pub mod instance;
pub mod knapsack;
pub mod offline;
pub mod optfilebundle;
pub mod policy;
pub mod resident;
pub mod select;
pub mod types;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bundle::Bundle;
    pub use crate::cache::CacheState;
    pub use crate::catalog::FileCatalog;
    pub use crate::error::{FbcError, Result};
    pub use crate::history::{RequestHistory, ValueFn};
    pub use crate::instance::{FbcInstance, Selection};
    pub use crate::optfilebundle::{DecisionExplanation, HistoryMode, OfbConfig, OptFileBundle};
    pub use crate::policy::{CachePolicy, PolicyFactory, RequestOutcome, SendPolicy};
    pub use crate::select::{opt_cache_select, GreedyVariant, SelectOptions};
    pub use crate::types::{Bytes, FileId, GIB, KIB, MIB, TIB};
}

//! Exact offline optimum for the *query-miss* (stall-count) cost model —
//! the yardstick of the online bundle-caching competitive analysis
//! (Qin–Etesami, arXiv 2011.03212; see `fbc_baselines::online_bundle`).
//!
//! # The cost model
//!
//! A query (bundle request) *misses* iff at least one of its files is not
//! resident; every miss costs 1, regardless of how many bytes move. On a
//! miss the offline algorithm may reorganize the whole cache (it is
//! prefetching and clairvoyant); between two consecutive misses the cache
//! is static. A schedule is therefore a partition of the trace into
//! maximal runs of hits opened by one miss each: every bundle inside one
//! run must be resident *simultaneously*, i.e. the run's file-union must
//! fit in the capacity. Minimizing misses = covering the trace with the
//! fewest such feasible segments.
//!
//! Segment feasibility is prefix-closed (shrinking a feasible segment
//! keeps it feasible), so the classic greedy argument applies: from any
//! start, extending the segment as far as it can reach dominates every
//! other choice. [`opt_query_misses`] implements that furthest-reach
//! greedy — provably optimal and linear-ish in total trace size — and the
//! memoized search [`opt_query_misses_reference`] re-derives the optimum
//! by trying *every* feasible segment end, pinning the greedy on small
//! instances.
//!
//! Bundles larger than the capacity can never be serviced by any
//! algorithm; each costs one miss of its own and never joins a segment.

use crate::bundle::Bundle;
use crate::catalog::FileCatalog;
use crate::types::Bytes;
use rustc_hash::FxHashSet;

/// Minimum number of missed queries any (clairvoyant, prefetching)
/// algorithm must pay to serve `trace` with a cache of `capacity` bytes,
/// starting cold.
///
/// This is the denominator of the competitive ratios measured by the
/// `perf_online` harness and asserted against
/// `fbc_baselines::online_bundle::marking_competitive_bound`.
pub fn opt_query_misses(trace: &[Bundle], catalog: &FileCatalog, capacity: Bytes) -> u64 {
    let mut misses = 0u64;
    let mut i = 0usize;
    let mut union: FxHashSet<crate::types::FileId> = FxHashSet::default();
    while i < trace.len() {
        if trace[i].total_size(catalog) > capacity {
            // Unserviceable by anyone: one stall, segment of its own.
            misses += 1;
            i += 1;
            continue;
        }
        // Open a segment at `i` and extend it as far as the union fits.
        misses += 1;
        union.clear();
        let mut bytes = 0u64;
        let mut j = i;
        while j < trace.len() {
            for f in trace[j].iter() {
                if union.insert(f) {
                    bytes += catalog.size(f);
                }
            }
            if bytes > capacity {
                // trace[j] broke the segment; no rollback needed — both
                // accumulators restart at the next segment.
                break;
            }
            j += 1;
        }
        i = j;
    }
    misses
}

/// Exhaustive-search twin of [`opt_query_misses`]: memoized minimization
/// over *every* feasible segment end, not just the furthest reach.
/// Exponentially safer but quadratic — for differential tests on tiny
/// instances only.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn opt_query_misses_reference(trace: &[Bundle], catalog: &FileCatalog, capacity: Bytes) -> u64 {
    fn solve(
        i: usize,
        trace: &[Bundle],
        catalog: &FileCatalog,
        capacity: Bytes,
        memo: &mut [Option<u64>],
    ) -> u64 {
        if i >= trace.len() {
            return 0;
        }
        if let Some(v) = memo[i] {
            return v;
        }
        let mut best = u64::MAX;
        let mut union: FxHashSet<crate::types::FileId> = FxHashSet::default();
        let mut bytes = 0u64;
        let mut j = i;
        while j < trace.len() {
            for f in trace[j].iter() {
                if union.insert(f) {
                    bytes += catalog.size(f);
                }
            }
            if bytes > capacity {
                break;
            }
            best = best.min(1 + solve(j + 1, trace, catalog, capacity, memo));
            j += 1;
        }
        if best == u64::MAX {
            // trace[i] alone is oversized: forced stand-alone stall.
            best = 1 + solve(i + 1, trace, catalog, capacity, memo);
        }
        memo[i] = Some(best);
        best
    }
    let mut memo = vec![None; trace.len()];
    solve(0, trace, catalog, capacity, &mut memo)
}

/// Competitive ratio `online / opt` with defined values on the zero
/// denominators the adversarial harness can produce:
///
/// * both costs zero → `1.0` (the algorithm matched the optimum);
/// * `opt == 0 < online` → `f64::INFINITY` (unboundedly worse — never
///   `NaN`);
/// * otherwise the plain quotient.
///
/// Works for query counts and byte counts alike.
pub fn competitive_ratio(online: f64, opt: f64) -> f64 {
    if opt <= 0.0 {
        if online <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        online / opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileId;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        assert_eq!(opt_query_misses(&[], &catalog, 2), 0);
    }

    #[test]
    fn single_segment_when_everything_fits() {
        let catalog = FileCatalog::from_sizes(vec![1; 4]);
        let trace = vec![b(&[0, 1]), b(&[2]), b(&[0, 3]), b(&[1, 2])];
        assert_eq!(opt_query_misses(&trace, &catalog, 4), 1);
    }

    #[test]
    fn sliding_window_costs_one_per_k_minus_l_plus_1() {
        // The adversary's lower-bound sequence: k=4, l=2, windows
        // {j, .., j+1} over n=6 files. OPT loads k files per miss and
        // survives k−l+1 = 3 queries.
        let catalog = FileCatalog::from_sizes(vec![1; 6]);
        let trace: Vec<Bundle> = (0..9u32).map(|j| b(&[j % 6, (j + 1) % 6])).collect();
        assert_eq!(opt_query_misses(&trace, &catalog, 4), 3);
    }

    #[test]
    fn oversized_bundles_are_stand_alone_stalls() {
        let catalog = FileCatalog::from_sizes(vec![3, 3, 1, 1]);
        let trace = vec![b(&[2, 3]), b(&[0, 1]), b(&[2, 3])];
        // {0,1} is 6 bytes > 4: its own stall; the {2,3} repeats cannot
        // straddle it (the cache only changes on a miss, but the segment
        // around an infeasible bundle must break).
        assert_eq!(opt_query_misses(&trace, &catalog, 4), 3);
        assert_eq!(opt_query_misses_reference(&trace, &catalog, 4), 3);
    }

    #[test]
    fn greedy_matches_exhaustive_search_on_random_tiny_instances() {
        let mut state = 0x0FF1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..300 {
            let n = (next() % 5 + 2) as usize; // 2..=6 files
            let sizes: Vec<u64> = (0..n).map(|_| next() % 3 + 1).collect();
            let catalog = FileCatalog::from_sizes(sizes);
            let capacity = next() % 6 + 2;
            let t = (next() % 10 + 1) as usize;
            let trace: Vec<Bundle> = (0..t)
                .map(|_| {
                    let k = (next() % 3 + 1) as usize;
                    Bundle::from_raw((0..k).map(|_| (next() % n as u64) as u32))
                })
                .collect();
            let fast = opt_query_misses(&trace, &catalog, capacity);
            let slow = opt_query_misses_reference(&trace, &catalog, capacity);
            assert_eq!(fast, slow, "case {case}: greedy diverged from search");
        }
    }

    #[test]
    fn opt_lower_bounds_every_policy_run() {
        // Sanity: no online policy can beat OPT on misses.
        use crate::cache::CacheState;
        use crate::policy::CachePolicy;
        let catalog = FileCatalog::from_sizes(vec![1; 10]);
        let mut state = 0x51EDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let trace: Vec<Bundle> = (0..100)
            .map(|_| {
                let k = (next() % 3 + 1) as usize;
                Bundle::from_raw((0..k).map(|_| (next() % 10) as u32))
            })
            .collect();
        let mut policy = crate::optfilebundle::OptFileBundle::new();
        let mut cache = CacheState::new(5);
        let mut online = 0u64;
        for r in &trace {
            if !policy.handle(r, &mut cache, &catalog).hit {
                online += 1;
            }
        }
        let opt = opt_query_misses(&trace, &catalog, 5);
        assert!(opt <= online, "OPT ({opt}) cannot exceed online ({online})");
        let _ = FileId(0);
    }

    #[test]
    fn ratio_zero_denominators_are_defined() {
        assert_eq!(competitive_ratio(0.0, 0.0), 1.0);
        assert_eq!(competitive_ratio(5.0, 0.0), f64::INFINITY);
        assert_eq!(competitive_ratio(6.0, 2.0), 3.0);
        assert!(!competitive_ratio(0.0, 0.0).is_nan());
    }
}

//! `OptFileBundle` — the paper's cache replacement policy (§3, Algorithm 2).
//!
//! On each arriving request the policy (1) reserves space for the request's
//! files, (2) runs [`OptCacheSelect`](crate::select::opt_cache_select) over
//! the request history to decide which previously useful file combinations
//! to retain in the remaining space, (3) evicts everything else, fetches the
//! missing files, and (4) records the request in the history.
//!
//! The configuration exposes every knob the paper studies:
//!
//! * **History truncation** (§5.2/Fig. 5): full history, a sliding window of
//!   the most recent distinct requests, or — the paper's recommended default
//!   — only requests currently *supported* by the cache, with popularity and
//!   file degrees still taken from the global history.
//! * **Greedy variant** (§3 Note): literal Algorithm 1 vs. marginal-size
//!   charging vs. full recompute-and-resort.
//! * **Partial enumeration** (§4): seed the greedy with every 1- or 2-subset.
//! * **Prefetching** (Algorithm 2 Step 3, literally): load files of selected
//!   historical requests that are not resident.

use crate::bundle::Bundle;
use crate::cache::CacheState;
use crate::catalog::FileCatalog;
use crate::history::{RequestHistory, ValueFn};
#[cfg(any(test, feature = "reference-kernels"))]
use crate::index::SupportIndex;
use crate::instance::FbcInstance;
use crate::policy::{CachePolicy, OutcomeObsSlots, RequestOutcome};
use crate::resident::ResidentInstance;
#[cfg(any(test, feature = "reference-kernels"))]
use crate::select::{opt_cache_select_lazy_with_scratch, LazySelectScratch};
use crate::select::{opt_cache_select_with_scratch, GreedyVariant, SelectOptions, SelectScratch};
use crate::types::{Bytes, FileId};
use fbc_obs::{Field, Obs};
#[cfg(any(test, feature = "reference-kernels"))]
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Which slice of the request history feeds `OptCacheSelect` (paper §5.2,
/// "Request History Length").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HistoryMode {
    /// Every request ever seen. Most faithful to Algorithm 2 as printed,
    /// most expensive per decision.
    Full,
    /// The `n` most recently seen distinct requests.
    Window(usize),
    /// Only requests whose files are all in `F(C) ∪ F(r_new)` — the paper's
    /// recommended truncation, with constant per-decision cost.
    #[default]
    CacheSupported,
}

/// Configuration of the `OptFileBundle` policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfbConfig {
    /// History truncation mode.
    pub history_mode: HistoryMode,
    /// Greedy flavour of the underlying `OptCacheSelect`.
    pub variant: GreedyVariant,
    /// When `Some(k)`, use partial enumeration with seeds of size ≤ `k`
    /// (k ≤ 2). Much slower; intended for offline analysis.
    pub enumeration_k: Option<usize>,
    /// Whether to load files of selected historical requests that are not
    /// currently resident (Algorithm 2 Step 3 verbatim). Only meaningful
    /// under [`HistoryMode::Full`]/[`HistoryMode::Window`]; with
    /// `CacheSupported` truncation the prefetch set is empty by construction.
    pub prefetch: bool,
    /// Value function for request popularity.
    pub value_fn: ValueFn,
    /// Optional cap on the number of candidate requests per decision (most
    /// recent kept); bounds worst-case decision latency.
    pub max_candidates: Option<usize>,
    /// Maintain an inverted file→bundle index to find cache-supported
    /// candidates without scanning the whole history (identical results,
    /// lower per-decision cost; see `fbc_core::index`). Only meaningful
    /// under [`HistoryMode::CacheSupported`].
    pub use_index: bool,
}

impl Default for OfbConfig {
    fn default() -> Self {
        Self {
            history_mode: HistoryMode::default(),
            variant: GreedyVariant::SharedCredit,
            enumeration_k: None,
            prefetch: false,
            value_fn: ValueFn::Count,
            max_candidates: None,
            use_index: true,
        }
    }
}

/// A dry-run report of the replacement decision `OptFileBundle` would take
/// for a hypothetical incoming bundle (see [`OptFileBundle::explain`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionExplanation {
    /// Cache capacity left for `OptCacheSelect` after reserving the
    /// incoming bundle's space.
    pub select_capacity: Bytes,
    /// Historical requests considered by the decision, in ranking input
    /// order.
    pub candidates: Vec<Bundle>,
    /// Files the selection would retain (sorted).
    pub retained: Vec<FileId>,
    /// Resident files exposed for eviction — not retained, not part of the
    /// incoming bundle (sorted). Only as many as needed would actually be
    /// evicted.
    pub victims: Vec<FileId>,
}

/// Reusable buffers of the replacement-decision path, owned by the policy
/// so that `decide_retained` performs no per-candidate allocation in steady
/// state: the interning map, the local instance's size/degree/file buffers
/// and the selection kernel's heap/bitset/adjacency scratch are all cleared
/// — never freed — between decisions, and the instance's owned vectors are
/// reclaimed through [`FbcInstance::into_parts`] after every selection.
#[derive(Debug, Clone, Default)]
struct DecisionScratch {
    /// `FileId` → dense local index interning map of the *rebuild*
    /// (reference) path; the resident path interns through epoch-stamped
    /// arrays instead. FxHash: small fixed-width keys on the hot path, and
    /// iteration order is never observed (the local index assignment
    /// follows candidate order).
    #[cfg(any(test, feature = "reference-kernels"))]
    local_of: FxHashMap<FileId, u32>,
    /// Inverse of `local_of`: local index → global id.
    global_of: Vec<FileId>,
    /// Local file sizes (0 for files of the incoming bundle).
    sizes: Vec<Bytes>,
    /// Local file degrees, from the global history.
    degrees: Vec<u32>,
    /// Recycled per-candidate file buffers, refilled from
    /// [`crate::instance::InstanceRequest::into_files`] after each decision.
    file_bufs: Vec<Vec<u32>>,
    /// The incremental selection kernel's reusable state.
    select: SelectScratch,
    /// The previous-generation (lazy version-stamped) kernel's scratch —
    /// the rebuild/reference path runs the whole pre-resident pipeline,
    /// select kernel included, so speedup measurements compare complete
    /// generations rather than a mixed stack.
    #[cfg(any(test, feature = "reference-kernels"))]
    select_lazy: LazySelectScratch,
}

/// The `OptFileBundle` replacement policy (paper Algorithm 2).
#[derive(Debug, Clone)]
pub struct OptFileBundle {
    config: OfbConfig,
    history: RequestHistory,
    /// The persistent decision state: dense mirrors of the history
    /// (degrees, value accumulators, recency order) and of cache residency,
    /// maintained by O(Δ) hooks so `decide_retained` never rebuilds,
    /// re-interns or re-sorts (see [`crate::resident`]).
    resident: ResidentInstance,
    /// Inverted index for cache-supported candidate lookup — used only by
    /// the verbatim rebuild (reference) decision path.
    #[cfg(any(test, feature = "reference-kernels"))]
    index: SupportIndex,
    /// When set, every decision runs the pre-resident rebuild path
    /// verbatim; differential suites pin it bit-for-bit equal to the
    /// resident path.
    #[cfg(any(test, feature = "reference-kernels"))]
    reference: bool,
    /// Reusable decision-path buffers (pure optimisation; carries no state
    /// across decisions).
    scratch: DecisionScratch,
    /// Observability sink (disabled unless a driver attaches one); records
    /// per-phase spans, candidate/retained histograms and decision events.
    obs: Obs,
    /// Memoized counter slots for the per-request obs flush.
    obs_slots: OutcomeObsSlots,
    name: String,
}

impl OptFileBundle {
    /// Creates the policy with the paper-default configuration
    /// (cache-supported history, shared-credit greedy, no prefetch).
    pub fn new() -> Self {
        Self::with_config(OfbConfig::default())
    }

    /// Creates the policy with an explicit configuration and a pre-loaded
    /// request history — a *warm start*, as an SRM would do after a restart
    /// with a history persisted via
    /// [`RequestHistory::write_to`](crate::history::RequestHistory::write_to).
    /// The cache itself starts empty; popularity and file degrees carry
    /// over. The history's value function overrides `config.value_fn`.
    pub fn with_history(mut config: OfbConfig, history: RequestHistory) -> Self {
        config.value_fn = history.value_fn();
        let mut policy = Self::with_config(config);
        policy.resident.populate(&history);
        policy.history = history;
        policy
    }

    /// Creates the policy with an explicit configuration.
    pub fn with_config(config: OfbConfig) -> Self {
        let name = match config.history_mode {
            HistoryMode::Full => "OptFileBundle(full)".to_string(),
            HistoryMode::Window(n) => format!("OptFileBundle(window={n})"),
            HistoryMode::CacheSupported => "OptFileBundle".to_string(),
        };
        Self {
            config,
            history: RequestHistory::with_value_fn(config.value_fn),
            resident: ResidentInstance::new(),
            #[cfg(any(test, feature = "reference-kernels"))]
            index: SupportIndex::new(),
            #[cfg(any(test, feature = "reference-kernels"))]
            reference: false,
            scratch: DecisionScratch::default(),
            obs: Obs::disabled(),
            obs_slots: OutcomeObsSlots::default(),
            name,
        }
    }

    /// Creates the policy with the pre-resident *rebuild* decision path —
    /// the exact per-decision instance reconstruction this crate shipped
    /// before [`crate::resident`]. Identical outputs, bit for bit; exists
    /// so differential tests and benchmarks can pin the resident path
    /// against it.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn with_config_reference(config: OfbConfig) -> Self {
        let mut policy = Self::with_config(config);
        policy.reference = true;
        policy
    }

    /// Reference-path counterpart of [`OptFileBundle::with_history`].
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn with_history_reference(mut config: OfbConfig, history: RequestHistory) -> Self {
        config.value_fn = history.value_fn();
        let mut policy = Self::with_config_reference(config);
        if policy.indexing() {
            for e in history.entries() {
                policy.index.on_record(&e.bundle);
            }
        }
        policy.history = history;
        policy
    }

    #[cfg(any(test, feature = "reference-kernels"))]
    fn indexing(&self) -> bool {
        self.config.use_index && self.config.history_mode == HistoryMode::CacheSupported
    }

    /// Records a request in the history and syncs the persistent decision
    /// state (reference path: the support index) from the updated entry.
    fn record(&mut self, bundle: &Bundle) {
        #[cfg(any(test, feature = "reference-kernels"))]
        if self.reference {
            self.history.record(bundle);
            if self.indexing() {
                self.index.on_record(bundle);
            }
            return;
        }
        let entry = self.history.record(bundle);
        self.resident.on_record(entry);
    }

    /// Mirrors a cache insertion into the persistent decision state.
    fn note_insert(&mut self, file: FileId) {
        #[cfg(any(test, feature = "reference-kernels"))]
        if self.reference {
            self.index.on_insert(file);
            return;
        }
        self.resident.on_insert(file);
    }

    /// Mirrors a cache eviction into the persistent decision state.
    fn note_evict(&mut self, file: FileId) {
        #[cfg(any(test, feature = "reference-kernels"))]
        if self.reference {
            self.index.on_evict(file);
            return;
        }
        self.resident.on_evict(file);
    }

    /// The policy's configuration.
    pub fn config(&self) -> &OfbConfig {
        &self.config
    }

    /// Read access to the request history (for schedulers and diagnostics).
    pub fn history(&self) -> &RequestHistory {
        &self.history
    }

    /// Adjusted relative value `v'(r)` of an arbitrary bundle under the
    /// current history — the ranking key the queued scheduler of §5.3 uses.
    pub fn relative_value(&self, bundle: &Bundle, catalog: &FileCatalog) -> f64 {
        self.history.relative_value(bundle, catalog)
    }

    /// Explains — without mutating anything — the replacement decision the
    /// policy *would* take if `incoming` arrived now and required eviction:
    /// which historical requests are candidates, which would be selected,
    /// which files would be retained, and which residents would be exposed
    /// as victims. A diagnostics/tooling API; [`CachePolicy::handle`]
    /// remains the only way to act (`&mut self` only touches the reusable
    /// decision scratch — no observable state changes).
    pub fn explain(
        &mut self,
        cache: &CacheState,
        catalog: &FileCatalog,
        incoming: &Bundle,
    ) -> DecisionExplanation {
        let requested_bytes = incoming.total_size(catalog);
        let select_capacity = cache.capacity().saturating_sub(requested_bytes);
        let candidates: Vec<Bundle> = self.candidate_bundles(cache, incoming);
        // `retained` comes back sorted, so resident-membership checks are
        // binary searches rather than linear scans (O(r log r) overall,
        // where the per-file `contains` scan was O(r²)).
        let (retained, _) = self.decide_retained(cache, catalog, incoming, select_capacity);
        let mut victims: Vec<FileId> = cache
            .iter()
            .map(|(f, _)| f)
            .filter(|&f| !incoming.contains(f) && retained.binary_search(&f).is_err())
            .collect();
        victims.sort_unstable();
        DecisionExplanation {
            select_capacity,
            candidates,
            retained,
            victims,
        }
    }

    /// The candidate bundles the next decision for `incoming` would rank,
    /// in ranking input order (diagnostics; used by [`Self::explain`]).
    fn candidate_bundles(&mut self, cache: &CacheState, incoming: &Bundle) -> Vec<Bundle> {
        #[cfg(any(test, feature = "reference-kernels"))]
        if self.reference {
            return candidates_of(&self.config, &self.history, &self.index, cache, incoming)
                .into_iter()
                .map(|e| e.bundle.clone())
                .collect();
        }
        let _ = cache;
        self.resident.assemble_candidates(
            self.config.history_mode,
            self.config.max_candidates,
            incoming,
        );
        self.resident
            .candidates()
            .iter()
            .map(|&e| self.resident.bundle(e).clone())
            .collect()
    }

    /// Runs the replacement decision: returns the *sorted* list of files
    /// (global ids) to retain alongside `incoming`'s files, plus the
    /// prefetch list. `&mut self` only for the reusable decision scratch
    /// and the per-decision epoch stamps of the resident state.
    ///
    /// Unlike the pre-resident rebuild path (kept verbatim in
    /// [`Self::decide_retained_reference`]), this applies the pending delta
    /// (candidate assembly off the maintained supported set / recency
    /// list), overlays the incoming bundle's files at size 0 via epoch
    /// stamps, and feeds the selection kernel — no per-decision
    /// re-interning, re-hashing or re-sorting of the whole candidate set.
    fn decide_retained(
        &mut self,
        cache: &CacheState,
        catalog: &FileCatalog,
        incoming: &Bundle,
        select_capacity: Bytes,
    ) -> (Vec<FileId>, Vec<FileId>) {
        #[cfg(any(test, feature = "reference-kernels"))]
        if self.reference {
            return self.decide_retained_reference(cache, catalog, incoming, select_capacity);
        }
        let Self {
            config,
            history,
            resident,
            scratch,
            obs,
            ..
        } = self;
        let delta_span = obs.span("ofb.delta_apply");
        resident.assemble_candidates(config.history_mode, config.max_candidates, incoming);
        drop(delta_span);
        obs.observe("ofb.candidates", resident.candidates().len() as u64);
        if resident.candidates().is_empty() {
            return (Vec::new(), Vec::new());
        }

        // Full/Window + shared credit (the paper's default greedy) run the
        // selection *in place* over the resident state: candidate lists in
        // these modes are recency prefixes, so the incrementally maintained
        // per-entry file orders reproduce the instance path's first-touch
        // interning permutation exactly — no instance is built at all.
        // `CacheSupported` (non-prefix candidates) and the other variants /
        // partial enumeration keep the instance path below.
        if config.enumeration_k.is_none()
            && config.variant == GreedyVariant::SharedCredit
            && matches!(
                config.history_mode,
                HistoryMode::Full | HistoryMode::Window(_)
            )
        {
            let build_span = obs.span("ofb.instance_build");
            resident.prepare_decision(catalog, history.total_requests(), history.value_fn());
            drop(build_span);
            let select_span = obs.span("ofb.greedy_select");
            let single = resident.select_fast(catalog, select_capacity);
            drop(select_span);
            let (retained, prefetch) = resident.decision_outputs(cache, config.prefetch, single);
            obs.observe("ofb.retained_files", retained.len() as u64);
            return (retained, prefetch);
        }

        // Fill the dense instance from the persistent state, recycling the
        // previous decision's buffers.
        let build_span = obs.span("ofb.instance_build");
        let DecisionScratch {
            global_of,
            sizes,
            degrees,
            file_bufs,
            select,
            ..
        } = scratch;
        global_of.clear();
        sizes.clear();
        degrees.clear();
        let mut requests: Vec<(Vec<u32>, f64)> = Vec::with_capacity(resident.candidates().len());
        let now = history.total_requests();
        let value_fn = history.value_fn();
        resident.fill_instance(
            catalog,
            now,
            value_fn,
            global_of,
            sizes,
            degrees,
            file_bufs,
            &mut requests,
        );

        let inst = FbcInstance::with_degrees(
            select_capacity,
            std::mem::take(sizes),
            requests,
            Some(std::mem::take(degrees)),
        )
        .expect("locally built instance is structurally valid");
        drop(build_span);

        let select_span = obs.span("ofb.greedy_select");
        let selection = match config.enumeration_k {
            Some(k) => crate::enumerate::opt_cache_select_enumerated(&inst, k.min(2)),
            None => opt_cache_select_with_scratch(
                &inst,
                &SelectOptions {
                    variant: config.variant,
                    max_single_fallback: true,
                },
                select,
            ),
        };
        drop(select_span);

        let mut retained: Vec<FileId> = selection
            .files
            .iter()
            .map(|&l| global_of[l as usize])
            .collect();
        retained.sort_unstable();
        let prefetch: Vec<FileId> = if config.prefetch {
            selection
                .files
                .iter()
                .map(|&l| global_of[l as usize])
                .filter(|&f| !cache.contains(f) && !incoming.contains(f))
                .collect()
        } else {
            Vec::new()
        };

        // Reclaim the instance's owned buffers for the next decision.
        let (reclaimed_sizes, reclaimed_degrees, reclaimed_requests) = inst.into_parts();
        *sizes = reclaimed_sizes;
        *degrees = reclaimed_degrees;
        file_bufs.extend(reclaimed_requests.into_iter().map(|r| r.into_files()));

        obs.observe("ofb.retained_files", retained.len() as u64);
        (retained, prefetch)
    }

    /// The pre-resident rebuild decision path, verbatim: re-collects the
    /// candidates from the history map, re-sorts them by recency, and
    /// re-interns every candidate file into a fresh local instance.
    #[cfg(any(test, feature = "reference-kernels"))]
    fn decide_retained_reference(
        &mut self,
        cache: &CacheState,
        catalog: &FileCatalog,
        incoming: &Bundle,
        select_capacity: Bytes,
    ) -> (Vec<FileId>, Vec<FileId>) {
        // Split borrows: candidates hold references into the history while
        // the scratch buffers are being filled.
        let Self {
            config,
            history,
            index,
            scratch,
            obs,
            ..
        } = self;
        let candidates = candidates_of(config, history, index, cache, incoming);
        obs.observe("ofb.candidates", candidates.len() as u64);
        if candidates.is_empty() {
            return (Vec::new(), Vec::new());
        }

        // Build a local FBC instance over the union of candidate files,
        // recycling the previous decision's buffers.
        let build_span = obs.span("ofb.instance_build");
        let DecisionScratch {
            local_of,
            global_of,
            sizes,
            degrees,
            file_bufs,
            select_lazy,
            ..
        } = scratch;
        local_of.clear();
        global_of.clear();
        sizes.clear();
        degrees.clear();
        let mut requests: Vec<(Vec<u32>, f64)> = Vec::with_capacity(candidates.len());
        let now = history.total_requests();
        let value_fn = history.value_fn();
        for entry in &candidates {
            let mut files = file_bufs.pop().unwrap_or_default();
            files.clear();
            for f in entry.bundle.iter() {
                let local = *local_of.entry(f).or_insert_with(|| {
                    let idx = global_of.len() as u32;
                    global_of.push(f);
                    // Files of the incoming request are pre-reserved: their
                    // space is already accounted for, so they are free here.
                    sizes.push(if incoming.contains(f) {
                        0
                    } else {
                        catalog.size(f)
                    });
                    // Degrees come from the *global* history (paper §5.2).
                    degrees.push(history.degree(f));
                    idx
                });
                files.push(local);
            }
            requests.push((files, entry.value_at(now, value_fn)));
        }

        let inst = FbcInstance::with_degrees(
            select_capacity,
            std::mem::take(sizes),
            requests,
            Some(std::mem::take(degrees)),
        )
        .expect("locally built instance is structurally valid");
        drop(build_span);

        let select_span = obs.span("ofb.greedy_select");
        let selection = match config.enumeration_k {
            Some(k) => crate::enumerate::opt_cache_select_enumerated(&inst, k.min(2)),
            None => opt_cache_select_lazy_with_scratch(
                &inst,
                &SelectOptions {
                    variant: config.variant,
                    max_single_fallback: true,
                },
                select_lazy,
            ),
        };
        drop(select_span);

        let mut retained: Vec<FileId> = selection
            .files
            .iter()
            .map(|&l| global_of[l as usize])
            .collect();
        retained.sort_unstable();
        let prefetch: Vec<FileId> = if config.prefetch {
            selection
                .files
                .iter()
                .map(|&l| global_of[l as usize])
                .filter(|&f| !cache.contains(f) && !incoming.contains(f))
                .collect()
        } else {
            Vec::new()
        };

        // Reclaim the instance's owned buffers for the next decision.
        let (reclaimed_sizes, reclaimed_degrees, reclaimed_requests) = inst.into_parts();
        *sizes = reclaimed_sizes;
        *degrees = reclaimed_degrees;
        file_bufs.extend(reclaimed_requests.into_iter().map(|r| r.into_files()));

        obs.observe("ofb.retained_files", retained.len() as u64);
        (retained, prefetch)
    }
}

/// Candidate history entries for a replacement decision, per the configured
/// truncation mode — the rebuild (reference) path's candidate gathering. A
/// free function (rather than a method) so the decision path can borrow the
/// history immutably while filling mutable scratch.
#[cfg(any(test, feature = "reference-kernels"))]
fn candidates_of<'h>(
    config: &OfbConfig,
    history: &'h RequestHistory,
    index: &'h SupportIndex,
    cache: &CacheState,
    incoming: &Bundle,
) -> Vec<&'h crate::history::HistoryEntry> {
    let indexing = config.use_index && config.history_mode == HistoryMode::CacheSupported;
    let mut cands: Vec<&crate::history::HistoryEntry> = match config.history_mode {
        HistoryMode::Full => history.entries().collect(),
        HistoryMode::Window(n) => history.most_recent(n),
        HistoryMode::CacheSupported if indexing => index
            .supported_with(incoming)
            .into_iter()
            .filter_map(|id| history.get(index.bundle(id)))
            .collect(),
        HistoryMode::CacheSupported => history
            .entries()
            .filter(|e| {
                e.bundle
                    .is_subset_of(|f| cache.contains(f) || incoming.contains(f))
            })
            .collect(),
    };
    // The history hash map iterates in arbitrary order; sort by recency
    // (last_seen is a unique tick) so greedy tie-breaking — and thus the
    // whole simulation — is deterministic.
    cands.sort_unstable_by_key(|e| std::cmp::Reverse(e.last_seen));
    if let Some(cap) = config.max_candidates {
        cands.truncate(cap);
    }
    cands
}

impl Default for OptFileBundle {
    fn default() -> Self {
        Self::new()
    }
}

impl OptFileBundle {
    /// The full Algorithm 2 servicing pipeline for one arrival, minus the
    /// per-request observability flush (`RequestOutcome::record_obs`), which
    /// the callers — `handle` and `decide_retained_batch` — perform so the
    /// flush strategy can differ without touching the decision logic.
    fn handle_inner(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let requested_bytes = bundle.total_size(catalog);
        let mut outcome = RequestOutcome {
            requested_bytes,
            serviced: true,
            ..RequestOutcome::default()
        };

        if requested_bytes > cache.capacity() {
            outcome.serviced = false;
            self.record(bundle);
            return outcome;
        }

        if cache.supports(bundle) {
            outcome.hit = true;
            self.record(bundle);
            return outcome;
        }

        let missing = cache.missing_of(bundle);
        let missing_bytes: Bytes = missing.iter().map(|&f| catalog.size(f)).sum();

        if missing_bytes > cache.free() {
            // Replacement decision (Algorithm 2 Steps 1-3): reserve space
            // for the whole incoming bundle, let OptCacheSelect fill the
            // rest of the cache with the most valuable historical bundles.
            // `requested_bytes == capacity()` is reachable (the size guard
            // above rejects only strictly-larger bundles), so the subtraction
            // must not underflow: a bundle filling the whole cache leaves
            // zero capacity for retained selections.
            let select_capacity = cache.capacity().saturating_sub(requested_bytes);
            let (retained, prefetch) =
                self.decide_retained(cache, catalog, bundle, select_capacity);
            let prefetch_bytes: Bytes = prefetch.iter().map(|&f| catalog.size(f)).sum();
            let retained_files = retained.len() as u64;
            let planned_prefetch = prefetch.len() as u64;

            // Evict residents that are neither part of the incoming bundle
            // nor retained by the selection — but only *as many as needed*
            // (for the missing files plus any planned prefetch): if the
            // selection leaves slack, unselected files stay resident — they
            // cost nothing and may still produce hits. Least useful first:
            // ascending file degree, then largest size (frees space
            // fastest), then id for determinism.
            let evict_span = self.obs.span("ofb.evict");
            let target = missing_bytes + prefetch_bytes;
            let mut victims: Vec<(FileId, Bytes)> = cache
                .iter()
                .filter(|&(f, _)| !bundle.contains(f) && retained.binary_search(&f).is_err())
                .collect();
            victims.sort_unstable_by_key(|&(f, size)| {
                (self.history.degree(f), std::cmp::Reverse(size), f)
            });
            for (f, _) in victims {
                if cache.free() >= target {
                    break;
                }
                if let Ok(size) = cache.evict(f) {
                    self.note_evict(f);
                    outcome.evicted_bytes += size;
                    outcome.evicted_files.push(f);
                }
            }

            // Pins (or a conservative selection) may still leave too little
            // room; shed retained files (never the incoming bundle's) in
            // ascending degree order until the bundle fits.
            if cache.free() < missing_bytes {
                let mut shed: Vec<FileId> = cache
                    .iter()
                    .map(|(f, _)| f)
                    .filter(|&f| !bundle.contains(f))
                    .collect();
                shed.sort_unstable_by_key(|&f| (self.history.degree(f), f));
                for f in shed {
                    if cache.free() >= missing_bytes {
                        break;
                    }
                    if let Ok(size) = cache.evict(f) {
                        self.note_evict(f);
                        outcome.evicted_bytes += size;
                        outcome.evicted_files.push(f);
                    }
                }
            }
            drop(evict_span);

            if cache.free() < missing_bytes {
                // Only possible when pinned files block the space.
                outcome.serviced = false;
                self.record(bundle);
                return outcome;
            }

            // Fetch the incoming bundle's missing files.
            for f in &missing {
                cache
                    .insert(*f, catalog)
                    .expect("eviction loop reserved space");
                self.note_insert(*f);
                outcome.fetched_bytes += catalog.size(*f);
                outcome.fetched_files.push(*f);
            }

            // Optional literal Step 3: prefetch selected non-resident files
            // while they fit.
            for f in prefetch {
                if !cache.contains(f) && catalog.size(f) <= cache.free() {
                    cache.insert(f, catalog).expect("checked fit");
                    self.note_insert(f);
                    outcome.fetched_bytes += catalog.size(f);
                    outcome.fetched_files.push(f);
                }
            }

            self.obs.batch(|b| {
                b.incr("ofb.replacements");
                b.event(
                    "decision",
                    &[
                        ("retained", Field::u(retained_files)),
                        ("evicted", Field::u(outcome.evicted_files.len() as u64)),
                        ("fetched", Field::u(outcome.fetched_files.len() as u64)),
                        ("prefetch_planned", Field::u(planned_prefetch)),
                    ],
                );
            });
        } else {
            // Plain cold fetch (Fig. 4a): space is available.
            for f in &missing {
                cache.insert(*f, catalog).expect("free space was checked");
                self.note_insert(*f);
                outcome.fetched_bytes += catalog.size(*f);
                outcome.fetched_files.push(*f);
            }
        }

        // Step 4: update L(R).
        self.record(bundle);
        outcome
    }

    /// Batched multi-request admission: service `bundles` in arrival order,
    /// appending one outcome per bundle to `out`.
    ///
    /// Determinism contract: the result — cache contents, every outcome
    /// field, and the observability trace — is bit-identical to calling
    /// `handle` once per bundle, **by construction**: each arrival observes
    /// exactly the cache and history state left by its predecessor, and the
    /// per-request counter flush happens in the same order. What a batch
    /// amortizes is the per-call overhead around the pipeline: one virtual
    /// dispatch and one obs-enabled check for the whole run instead of one
    /// per arrival, with the decision scratch staying hot across the run.
    /// Callers (the sim queue drain, the grid arrival loop) additionally
    /// hoist their own per-job bookkeeping out of the loop.
    pub fn decide_retained_batch(
        &mut self,
        bundles: &[&Bundle],
        cache: &mut CacheState,
        catalog: &FileCatalog,
        out: &mut Vec<RequestOutcome>,
    ) {
        out.reserve(bundles.len());
        if self.obs.is_enabled() {
            for bundle in bundles {
                let outcome = self.handle_inner(bundle, cache, catalog);
                // Flushed per request, in order: the JSONL trace interleaves
                // decision/admit/evict events with each request's counters,
                // so deferring flushes across arrivals would reorder it.
                outcome.record_obs(&self.obs, &mut self.obs_slots);
                out.push(outcome);
            }
        } else {
            for bundle in bundles {
                out.push(self.handle_inner(bundle, cache, catalog));
            }
        }
    }
}

impl CachePolicy for OptFileBundle {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        let outcome = self.handle_inner(bundle, cache, catalog);
        outcome.record_obs(&self.obs, &mut self.obs_slots);
        outcome
    }

    fn handle_batch(
        &mut self,
        bundles: &[&Bundle],
        cache: &mut CacheState,
        catalog: &FileCatalog,
        out: &mut Vec<RequestOutcome>,
    ) {
        self.decide_retained_batch(bundles, cache, catalog, out);
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.history = RequestHistory::with_value_fn(self.config.value_fn);
        self.resident = ResidentInstance::new();
        #[cfg(any(test, feature = "reference-kernels"))]
        {
            self.index = SupportIndex::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_unit(n: u32) -> FileCatalog {
        FileCatalog::from_sizes(vec![1; n as usize])
    }

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn cold_start_fills_cache_without_eviction() {
        let catalog = catalog_unit(10);
        let mut cache = CacheState::new(5);
        let mut ofb = OptFileBundle::new();
        let out = ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.serviced && !out.hit);
        assert_eq!(out.fetched_bytes, 2);
        assert!(out.evicted_files.is_empty());
        assert_eq!(cache.used(), 2);
    }

    #[test]
    fn repeat_request_is_a_hit() {
        let catalog = catalog_unit(10);
        let mut cache = CacheState::new(5);
        let mut ofb = OptFileBundle::new();
        ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        let out = ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.hit);
        assert_eq!(out.fetched_bytes, 0);
        assert_eq!(ofb.history().get(&b(&[0, 1])).unwrap().count, 2);
    }

    #[test]
    fn replacement_keeps_popular_combinations() {
        // Cache of 3 unit files. Make {0,1} popular, then push {2,3} through;
        // on the next eviction decision files 0,1 should be retained over
        // a random singleton.
        let catalog = catalog_unit(10);
        let mut cache = CacheState::new(3);
        let mut ofb = OptFileBundle::new();
        for _ in 0..5 {
            ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        }
        ofb.handle(&b(&[2]), &mut cache, &catalog); // fills cache: {0,1,2}
        assert_eq!(cache.used(), 3);
        // {3} arrives: must evict one file. OptCacheSelect retains the
        // popular pair {0,1}, so f2 is the victim.
        let out = ofb.handle(&b(&[3]), &mut cache, &catalog);
        assert!(out.serviced);
        assert_eq!(out.evicted_files, vec![FileId(2)]);
        assert!(cache.supports(&b(&[0, 1])));
        assert!(cache.contains(FileId(3)));
    }

    #[test]
    fn oversized_request_is_not_serviced() {
        let catalog = FileCatalog::from_sizes(vec![10, 10]);
        let mut cache = CacheState::new(15);
        let mut ofb = OptFileBundle::new();
        let out = ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(!out.serviced);
        assert!(cache.is_empty());
        // Still recorded in the history.
        assert_eq!(ofb.history().len(), 1);
    }

    #[test]
    fn bundle_exactly_filling_cache_is_serviced() {
        // Regression: a bundle whose size equals the cache capacity passes
        // the `> capacity` guard, and the replacement path must not
        // underflow computing `capacity - requested` (reserve = 0).
        let catalog = FileCatalog::from_sizes(vec![4, 6, 3]);
        let mut cache = CacheState::new(10);
        let mut ofb = OptFileBundle::new();
        ofb.handle(&b(&[2]), &mut cache, &catalog); // resident f2 forces eviction
        let out = ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        assert!(out.serviced && !out.hit);
        assert_eq!(out.fetched_bytes, 10);
        assert_eq!(out.evicted_files, vec![FileId(2)]);
        assert_eq!(cache.used(), 10);
        assert!(cache.supports(&b(&[0, 1])));
    }

    #[test]
    fn capacity_invariant_holds_across_random_workload() {
        let catalog = FileCatalog::from_sizes((0..50).map(|i| (i % 7) + 1).collect::<Vec<u64>>());
        let mut cache = CacheState::new(25);
        let mut ofb = OptFileBundle::new();
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let k = (next() % 4 + 1) as usize;
            let files: Vec<u32> = (0..k).map(|_| (next() % 50) as u32).collect();
            let out = ofb.handle(&Bundle::from_raw(files.clone()), &mut cache, &catalog);
            assert!(cache.check_invariants());
            if out.serviced {
                assert!(cache.supports(&Bundle::from_raw(files)));
            }
        }
    }

    #[test]
    fn full_history_with_prefetch_loads_selected_files() {
        let catalog = catalog_unit(10);
        let mut cache = CacheState::new(4);
        let mut ofb = OptFileBundle::with_config(OfbConfig {
            history_mode: HistoryMode::Full,
            prefetch: true,
            ..OfbConfig::default()
        });
        // Make {0,1} very popular, then flush it out with distinct singles.
        for _ in 0..10 {
            ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        }
        ofb.handle(&b(&[2]), &mut cache, &catalog);
        ofb.handle(&b(&[3]), &mut cache, &catalog); // cache {0,1,2,3} full
                                                    // New request {4}: replacement triggers; full history still knows
                                                    // {0,1} and it stays; with prefetch on, nothing extra is needed
                                                    // since {0,1} is resident. Now force {0,1} out by a big request:
        let out = ofb.handle(&b(&[5, 6, 7]), &mut cache, &catalog);
        assert!(out.serviced);
        // Next single request: selection should want {0,1} back and
        // prefetch whichever of them was evicted.
        let out = ofb.handle(&b(&[8]), &mut cache, &catalog);
        assert!(out.serviced);
        assert!(
            cache.supports(&b(&[0, 1])),
            "prefetch should restore the popular pair; cache={:?}",
            cache.resident_files_sorted()
        );
    }

    #[test]
    fn window_mode_limits_candidates() {
        let catalog = catalog_unit(100);
        let mut cache = CacheState::new(3);
        let mut ofb = OptFileBundle::with_config(OfbConfig {
            history_mode: HistoryMode::Window(2),
            ..OfbConfig::default()
        });
        for i in 0..20u32 {
            ofb.handle(&b(&[i]), &mut cache, &catalog);
        }
        // Only the 2 most recent requests are candidates; run one more and
        // make sure nothing panics and invariants hold.
        let out = ofb.handle(&b(&[50]), &mut cache, &catalog);
        assert!(out.serviced);
        assert!(cache.check_invariants());
    }

    #[test]
    fn reset_clears_history() {
        let catalog = catalog_unit(4);
        let mut cache = CacheState::new(4);
        let mut ofb = OptFileBundle::new();
        ofb.handle(&b(&[0]), &mut cache, &catalog);
        assert_eq!(ofb.history().len(), 1);
        ofb.reset();
        assert_eq!(ofb.history().len(), 0);
    }

    #[test]
    fn indexed_and_scanned_candidates_are_equivalent() {
        // The inverted index must be a pure optimisation: identical
        // decisions, byte for byte, on an arbitrary workload.
        let catalog = FileCatalog::from_sizes((0..40).map(|i| (i % 9) + 1).collect::<Vec<u64>>());
        let mut state = 0x1D09u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let jobs: Vec<Bundle> = (0..400)
            .map(|_| {
                let k = (next() % 4 + 1) as usize;
                Bundle::from_raw((0..k).map(|_| (next() % 40) as u32))
            })
            .collect();
        let run = |use_index: bool| {
            let mut cache = CacheState::new(30);
            let mut ofb = OptFileBundle::with_config(OfbConfig {
                use_index,
                ..OfbConfig::default()
            });
            let mut outcomes = Vec::new();
            for bundle in &jobs {
                outcomes.push(ofb.handle(bundle, &mut cache, &catalog));
            }
            (outcomes, cache.resident_files_sorted())
        };
        let (indexed, cache_a) = run(true);
        let (scanned, cache_b) = run(false);
        assert_eq!(indexed, scanned);
        assert_eq!(cache_a, cache_b);
    }

    #[test]
    fn explain_is_a_faithful_dry_run() {
        let catalog = catalog_unit(10);
        let mut cache = CacheState::new(3);
        let mut ofb = OptFileBundle::new();
        for _ in 0..5 {
            ofb.handle(&b(&[0, 1]), &mut cache, &catalog);
        }
        ofb.handle(&b(&[2]), &mut cache, &catalog); // cache full: {0,1,2}
        let snapshot_history_len = ofb.history().len();

        let explanation = ofb.explain(&cache, &catalog, &b(&[3]));
        // Dry run: nothing changed.
        assert_eq!(ofb.history().len(), snapshot_history_len);
        assert_eq!(cache.used(), 3);
        // The popular pair would be retained; f2 is the exposed victim.
        assert_eq!(explanation.retained, vec![FileId(0), FileId(1)]);
        assert_eq!(explanation.victims, vec![FileId(2)]);
        assert_eq!(explanation.select_capacity, 2);
        assert!(explanation.candidates.contains(&b(&[0, 1])));

        // And the real decision matches the explanation.
        let out = ofb.handle(&b(&[3]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, explanation.victims);
        assert!(cache.supports(&b(&[0, 1])));
    }

    #[test]
    fn warm_start_preserves_learned_popularity() {
        let catalog = catalog_unit(10);
        // First life: learn that {0,1} is hot.
        let mut first = OptFileBundle::new();
        let mut cache = CacheState::new(3);
        for _ in 0..5 {
            first.handle(&b(&[0, 1]), &mut cache, &catalog);
        }
        let mut buf = Vec::new();
        first.history().write_to(&mut buf).unwrap();

        // Restart: cold cache, warm history.
        let restored = crate::history::RequestHistory::read_from(&buf[..]).unwrap();
        let mut second = OptFileBundle::with_history(OfbConfig::default(), restored);
        let mut cache = CacheState::new(3);
        // Refill the cache: {0,1} then {2}.
        second.handle(&b(&[0, 1]), &mut cache, &catalog);
        second.handle(&b(&[2]), &mut cache, &catalog);
        // {3} forces replacement; the warm-started history still knows the
        // pair is hot and protects it.
        let out = second.handle(&b(&[3]), &mut cache, &catalog);
        assert_eq!(out.evicted_files, vec![FileId(2)]);
        assert!(cache.supports(&b(&[0, 1])));
        assert!(second.history().get(&b(&[0, 1])).unwrap().count >= 6);
    }

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(OptFileBundle::new().name(), "OptFileBundle");
        let w = OptFileBundle::with_config(OfbConfig {
            history_mode: HistoryMode::Window(7),
            ..OfbConfig::default()
        });
        assert_eq!(w.name(), "OptFileBundle(window=7)");
    }
}

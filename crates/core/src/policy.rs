//! The uniform interface every bundle-aware replacement policy implements,
//! plus shared servicing helpers.
//!
//! A policy is driven one request at a time: the simulator hands it the
//! arriving bundle, the cache and the catalog; the policy decides what to
//! evict, fetches the missing files, and reports an accounting
//! [`RequestOutcome`] from which all metrics (byte miss ratio, request-hit
//! ratio, volume moved per request) are derived.

use crate::bundle::Bundle;
use crate::cache::CacheState;
use crate::catalog::FileCatalog;
use crate::types::{Bytes, FileId};
use fbc_obs::{CounterSlot, Field, Obs};

/// Accounting record for one serviced request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestOutcome {
    /// Whether every file was already resident (a *request-hit*, paper §3).
    pub hit: bool,
    /// Whether the request could be serviced at all. False only when the
    /// bundle is larger than the entire cache.
    pub serviced: bool,
    /// Total size of the files the request asked for.
    pub requested_bytes: Bytes,
    /// Bytes fetched from mass storage to service this request (its cache
    /// misses, plus any prefetching the policy chose to do).
    pub fetched_bytes: Bytes,
    /// Files fetched.
    pub fetched_files: Vec<FileId>,
    /// Bytes evicted to make room.
    pub evicted_bytes: Bytes,
    /// Files evicted.
    pub evicted_files: Vec<FileId>,
    /// Whether the missing data was *streamed* to the job without being
    /// admitted into the cache (admission-control bypass). When set, the
    /// bundle need not be resident after service; `fetched_bytes` still
    /// counts the mass-storage traffic.
    pub streamed: bool,
}

/// Memoized [`CounterSlot`]s for the fixed `policy.*` counter roster
/// [`RequestOutcome::record_obs`] flushes. Each policy holds one (a plain
/// [`Default`] field next to its `Obs` handle) so the steady-state flush
/// bumps counters without hashing their names; the slots re-resolve
/// automatically — via the registry epoch check — after `Obs::clear` or
/// when a different sink is attached.
#[derive(Debug, Clone, Default)]
pub struct OutcomeObsSlots {
    requests: CounterSlot,
    requested_bytes: CounterSlot,
    hits: CounterSlot,
    unserviced: CounterSlot,
    fetched_files: CounterSlot,
    fetched_bytes: CounterSlot,
    evicted_files: CounterSlot,
    evicted_bytes: CounterSlot,
}

impl RequestOutcome {
    /// Folds this outcome into a policy's observability registry: the
    /// `policy.*` counters shared by every implementation, plus `admit`
    /// and `evict` events when files actually moved. One branch and
    /// nothing else when `obs` is disabled — policies call this
    /// unconditionally at the end of `handle`.
    ///
    /// The whole flush — up to six counters and two events — runs inside
    /// one [`Obs::batch`] session, so an attached sink costs one lock
    /// acquisition per request instead of one per recording, and every
    /// counter bumps through the caller's [`OutcomeObsSlots`] memo
    /// instead of a string-keyed map probe. Recording order is unchanged,
    /// keeping JSONL traces and registry dumps byte-identical to the
    /// per-call flush this replaces.
    pub fn record_obs(&self, obs: &Obs, slots: &mut OutcomeObsSlots) {
        obs.batch(|b| {
            b.incr_cached(&mut slots.requests, "policy.requests");
            b.add_cached(
                &mut slots.requested_bytes,
                "policy.requested_bytes",
                self.requested_bytes,
            );
            if self.hit {
                b.incr_cached(&mut slots.hits, "policy.hits");
            }
            if !self.serviced {
                b.incr_cached(&mut slots.unserviced, "policy.unserviced");
            }
            if !self.fetched_files.is_empty() {
                b.add_cached(
                    &mut slots.fetched_files,
                    "policy.fetched_files",
                    self.fetched_files.len() as u64,
                );
                b.add_cached(
                    &mut slots.fetched_bytes,
                    "policy.fetched_bytes",
                    self.fetched_bytes,
                );
                b.event(
                    "admit",
                    &[
                        ("files", Field::u(self.fetched_files.len() as u64)),
                        ("bytes", Field::u(self.fetched_bytes)),
                        ("streamed", Field::b(self.streamed)),
                    ],
                );
            }
            if !self.evicted_files.is_empty() {
                b.add_cached(
                    &mut slots.evicted_files,
                    "policy.evicted_files",
                    self.evicted_files.len() as u64,
                );
                b.add_cached(
                    &mut slots.evicted_bytes,
                    "policy.evicted_bytes",
                    self.evicted_bytes,
                );
                b.event(
                    "evict",
                    &[
                        ("files", Field::u(self.evicted_files.len() as u64)),
                        ("bytes", Field::u(self.evicted_bytes)),
                    ],
                );
            }
        });
    }
}

/// A cache replacement policy driven by file-bundle requests.
pub trait CachePolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Services one request against the cache: makes room, fetches missing
    /// files, updates internal bookkeeping, and returns the accounting.
    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome;

    /// Services a run of queued arrivals in order, appending one outcome
    /// per bundle to `out`.
    ///
    /// Semantics are *defined* as sequential: the result must be
    /// bit-identical to calling [`handle`](CachePolicy::handle) once per
    /// bundle — each arrival sees the cache state its predecessor left.
    /// The default does exactly that. Policies override it to amortise
    /// per-call overhead (dispatch, observability checks, scratch warm-up)
    /// across the run, never to change outcomes; drivers with a backlog
    /// (the sim queue drain, the grid arrival loop) call this instead of
    /// looping `handle` themselves.
    fn handle_batch(
        &mut self,
        bundles: &[&Bundle],
        cache: &mut CacheState,
        catalog: &FileCatalog,
        out: &mut Vec<RequestOutcome>,
    ) {
        out.reserve(bundles.len());
        for bundle in bundles {
            out.push(self.handle(bundle, cache, catalog));
        }
    }

    /// Offline hook: policies that need future knowledge (e.g. Belady MIN)
    /// receive the full trace before the run starts. Online policies ignore
    /// it.
    ///
    /// The default forwards to [`prepare_from`](CachePolicy::prepare_from);
    /// policies wanting the offline hook should override `prepare_from`
    /// (which both entry points funnel through) rather than this method.
    fn prepare(&mut self, trace: &[Bundle]) {
        self.prepare_from(&mut trace.iter());
    }

    /// Borrowing variant of [`prepare`](CachePolicy::prepare): receives the
    /// trace as an iterator of borrowed bundles, so drivers holding requests
    /// inside larger records (e.g. the grid engines' arrival lists) need not
    /// materialise a cloned `Vec<Bundle>` for online policies that ignore
    /// the hook. Default: no-op.
    fn prepare_from(&mut self, _trace: &mut dyn Iterator<Item = &Bundle>) {}

    /// Observability hook: hands the policy a shared [`Obs`] handle to
    /// record its admit/evict accounting (and any policy-specific
    /// signals) into. The default keeps the policy unobserved; drivers
    /// call this once before a run when tracing is on. Attaching a
    /// disabled handle is equivalent to never attaching.
    fn attach_obs(&mut self, _obs: Obs) {}

    /// Clears internal state so the policy can be reused for another run.
    fn reset(&mut self);
}

impl<P: CachePolicy + ?Sized> CachePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn handle(
        &mut self,
        bundle: &Bundle,
        cache: &mut CacheState,
        catalog: &FileCatalog,
    ) -> RequestOutcome {
        (**self).handle(bundle, cache, catalog)
    }

    fn handle_batch(
        &mut self,
        bundles: &[&Bundle],
        cache: &mut CacheState,
        catalog: &FileCatalog,
        out: &mut Vec<RequestOutcome>,
    ) {
        (**self).handle_batch(bundles, cache, catalog, out)
    }

    fn prepare(&mut self, trace: &[Bundle]) {
        (**self).prepare(trace)
    }

    fn prepare_from(&mut self, trace: &mut dyn Iterator<Item = &Bundle>) {
        (**self).prepare_from(trace)
    }

    fn attach_obs(&mut self, obs: Obs) {
        (**self).attach_obs(obs)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// A boxed policy that can be moved across threads — what a sharded
/// driver hands each worker.
pub type SendPolicy = Box<dyn CachePolicy + Send>;

/// Builds fresh policy instances on demand, from any thread.
///
/// Concurrent drivers (one policy per shard, constructed inside worker
/// threads) can't share a `&mut dyn CachePolicy`; they take a factory and
/// build per-shard instances instead. Any `Fn() -> SendPolicy` closure
/// that is itself `Send + Sync` qualifies via the blanket impl — e.g.
/// `|| -> SendPolicy { Box::new(Lru::new()) }` or a `PolicyKind`-driven
/// constructor.
pub trait PolicyFactory: Send + Sync {
    /// Constructs a fresh, unprepared policy instance.
    fn build_policy(&self) -> SendPolicy;
}

impl<F: Fn() -> SendPolicy + Send + Sync> PolicyFactory for F {
    fn build_policy(&self) -> SendPolicy {
        self()
    }
}

/// Services `bundle` using a caller-supplied victim chooser, centralising
/// the hit/fetch/evict accounting shared by most baseline policies.
///
/// `choose_victim` is called while more space is needed; it must return a
/// resident, unpinned file that is *not* part of `bundle`, or `None` when it
/// has no candidate left (in which case the request goes unserviced — with
/// well-formed policies this only happens when pins block eviction).
pub fn service_with_evictor<F>(
    bundle: &Bundle,
    cache: &mut CacheState,
    catalog: &FileCatalog,
    mut choose_victim: F,
) -> RequestOutcome
where
    F: FnMut(&CacheState) -> Option<FileId>,
{
    let requested_bytes = bundle.total_size(catalog);
    let mut outcome = RequestOutcome {
        requested_bytes,
        serviced: true,
        ..RequestOutcome::default()
    };

    if cache.contains_all(bundle) {
        outcome.hit = true;
        return outcome;
    }
    if requested_bytes > cache.capacity() {
        outcome.serviced = false;
        return outcome;
    }

    // One pass over the bundle collects the missing files and their total
    // size together (a second residency sweep would double the bit tests).
    let mut missing = Vec::new();
    let mut missing_bytes: Bytes = 0;
    for f in bundle.iter() {
        if !cache.contains(f) {
            missing_bytes += catalog.size(f);
            missing.push(f);
        }
    }

    while cache.free() < missing_bytes {
        match choose_victim(cache) {
            Some(victim) => {
                debug_assert!(
                    !bundle.contains(victim),
                    "policy tried to evict a file of the request being serviced"
                );
                match cache.evict(victim) {
                    Ok(size) => {
                        outcome.evicted_bytes += size;
                        outcome.evicted_files.push(victim);
                    }
                    Err(_) => {
                        // Pinned or raced; the chooser must move on, but a
                        // chooser that repeats a bad victim would loop — bail.
                        outcome.serviced = false;
                        return outcome;
                    }
                }
            }
            None => {
                outcome.serviced = false;
                return outcome;
            }
        }
    }

    for f in missing {
        cache
            .insert(f, catalog)
            .expect("space was reserved by the eviction loop");
        outcome.fetched_bytes += catalog.size(f);
        outcome.fetched_files.push(f);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FileCatalog, CacheState) {
        let catalog = FileCatalog::from_sizes(vec![10, 20, 30, 40]);
        let cache = CacheState::new(60);
        (catalog, cache)
    }

    #[test]
    fn hit_requires_no_work() {
        let (catalog, mut cache) = setup();
        cache.insert(FileId(0), &catalog).unwrap();
        cache.insert(FileId(1), &catalog).unwrap();
        let out = service_with_evictor(&Bundle::from_raw([0, 1]), &mut cache, &catalog, |_| None);
        assert!(out.hit && out.serviced);
        assert_eq!(out.fetched_bytes, 0);
        assert_eq!(out.evicted_bytes, 0);
        assert_eq!(out.requested_bytes, 30);
    }

    #[test]
    fn cold_fetch_without_eviction() {
        let (catalog, mut cache) = setup();
        let out = service_with_evictor(&Bundle::from_raw([0, 2]), &mut cache, &catalog, |_| None);
        assert!(!out.hit && out.serviced);
        assert_eq!(out.fetched_bytes, 40);
        assert_eq!(out.fetched_files.len(), 2);
        assert!(cache.supports(&Bundle::from_raw([0, 2])));
    }

    #[test]
    fn eviction_makes_room() {
        let (catalog, mut cache) = setup();
        cache.insert(FileId(3), &catalog).unwrap(); // 40 bytes
                                                    // Request {1,2} needs 50; free = 20, must evict f3.
        let out = service_with_evictor(&Bundle::from_raw([1, 2]), &mut cache, &catalog, |c| {
            c.resident_files_sorted()
                .into_iter()
                .find(|&f| !Bundle::from_raw([1, 2]).contains(f))
        });
        assert!(out.serviced && !out.hit);
        assert_eq!(out.evicted_files, vec![FileId(3)]);
        assert_eq!(out.fetched_bytes, 50);
        assert!(cache.check_invariants());
    }

    #[test]
    fn oversized_bundle_goes_unserviced() {
        let (catalog, mut cache) = setup();
        // f2 + f3 = 70 > capacity 60.
        let out = service_with_evictor(&Bundle::from_raw([2, 3]), &mut cache, &catalog, |_| None);
        assert!(!out.serviced);
        assert_eq!(out.fetched_bytes, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn chooser_exhaustion_reports_unserviced() {
        let (catalog, mut cache) = setup();
        cache.insert(FileId(3), &catalog).unwrap();
        cache.pin(FileId(3)).unwrap();
        // Needs eviction but the chooser has nothing evictable.
        let out = service_with_evictor(&Bundle::from_raw([1, 2]), &mut cache, &catalog, |_| None);
        assert!(!out.serviced);
        assert_eq!(out.evicted_bytes, 0);
    }

    #[test]
    fn partial_residency_fetches_only_missing() {
        let (catalog, mut cache) = setup();
        cache.insert(FileId(1), &catalog).unwrap();
        let out = service_with_evictor(&Bundle::from_raw([0, 1]), &mut cache, &catalog, |_| None);
        assert!(out.serviced && !out.hit);
        assert_eq!(out.fetched_files, vec![FileId(0)]);
        assert_eq!(out.fetched_bytes, 10);
    }
}

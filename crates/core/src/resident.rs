//! Persistent, incrementally maintained decision state for
//! [`OptFileBundle`](crate::optfilebundle::OptFileBundle).
//!
//! Before this module, every replacement decision rebuilt its FBC instance
//! from scratch: re-hash every candidate bundle through the history map,
//! re-intern every file into a per-decision `FxHashMap`, re-read every
//! degree, recompute every value and re-sort the whole candidate set by
//! recency — even though between consecutive decisions the world changes by
//! a tiny delta (one recorded bundle, a few inserted/evicted files).
//!
//! [`ResidentInstance`] keeps that state *alive across decisions* and
//! updates it with O(Δ) hooks mirroring the
//! [`SupportIndex`](crate::index::SupportIndex) lifecycle:
//!
//! * [`on_record`](ResidentInstance::on_record) — interns a newly recorded
//!   bundle's files, appends its file list to an append-only CSR, bumps the
//!   dense degree mirror, syncs the dense value accumulators from the
//!   history entry, and moves the entry to the front of an intrusive
//!   recency list;
//! * [`on_insert`](ResidentInstance::on_insert) /
//!   [`on_evict`](ResidentInstance::on_evict) — flip a file's residency flag
//!   and walk its file→entry adjacency to maintain per-entry resident
//!   counters, pushing/removing entries from the *fully supported* set as
//!   their counter crosses the bundle size.
//!
//! A decision then *assembles* its candidate list without touching the
//! history hash map at all: `Full`/`Window` walk the recency list (already
//! recency-sorted — the sort the rebuild path paid per decision is free
//! here), and `CacheSupported` takes the maintained supported set plus the
//! entries completed by the incoming bundle's files. Filling the dense
//! instance replays the rebuild path's first-touch interning permutation
//! with epoch-stamped arrays instead of a hash map, so the produced
//! `sizes`/`degrees`/`requests` vectors — and therefore every downstream
//! float operation of the selection kernel — are **bit-for-bit identical**
//! to the rebuild path's. The rebuild path itself survives verbatim behind
//! the `reference-kernels` feature and is pinned equal by differential
//! proptests (`crates/core/tests/resident_equivalence.rs`) and end-to-end
//! byte-equality sweeps (`tests/resident_equivalence.rs`).

use crate::bundle::Bundle;
use crate::cache::CacheState;
use crate::catalog::FileCatalog;
use crate::history::{HistoryEntry, RequestHistory, ValueFn};
use crate::optfilebundle::HistoryMode;
use crate::select::{ord_key, rv_of, ReqState};
use crate::types::{Bytes, FileId};
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;

/// Sentinel for "no entry" in the intrusive recency list and position maps.
const NONE: u32 = u32::MAX;

/// The persistent dense FBC instance living inside `OptFileBundle`.
///
/// Files and history entries are interned once, on first contact, into
/// dense ids (`pid` for files, `eid` for entries) that stay stable for the
/// lifetime of the policy; all per-decision work is array reads over those
/// ids. See the module docs for the maintenance protocol.
#[derive(Debug, Clone)]
pub struct ResidentInstance {
    // ---- files (indexed by pid) ----
    /// Global `FileId` → dense pid. The only hash lookup left on the
    /// maintenance path; the decision path itself is hash-free.
    file_of: FxHashMap<FileId, u32>,
    /// pid → global id (inverse of `file_of`).
    file_ids: Vec<FileId>,
    /// Dense mirror of the history's `d(f)` degrees.
    degrees: Vec<u32>,
    /// Whether the file is currently resident in the cache.
    resident: Vec<bool>,
    /// File → entries using it (the transpose of the entry CSR).
    adj: Vec<Vec<u32>>,
    /// pid → the most recently *recorded* entry containing it, or [`NONE`]
    /// for files never part of a recorded bundle (interned by `on_insert`).
    /// Because Full/Window candidate lists are recency prefixes, the owner
    /// of any candidate's file is itself a candidate, and the rebuild
    /// path's first-touch local index of a file is exactly the lexicographic
    /// key `(recency rank of owner, position in owner's bundle)` — the sort
    /// key of the incrementally maintained per-entry file orders.
    owner: Vec<u32>,
    /// pid → its index within the owner's canonical bundle order.
    owner_pos: Vec<u32>,
    /// pid → epoch mark "loaded by the current decision's greedy loop".
    loaded_stamp: Vec<u32>,

    // ---- entries (indexed by eid) ----
    /// Canonical bundle → eid (hit only by `on_record`).
    ids: FxHashMap<Bundle, u32>,
    /// eid → its bundle (for mapping candidates back to bundles).
    bundles: Vec<Bundle>,
    /// Append-only CSR of entry files (pids, in canonical bundle order —
    /// the same order the rebuild path iterated `bundle.iter()` in).
    entry_files: Vec<u32>,
    /// CSR offsets; `entry_offsets[eid]..entry_offsets[eid + 1]` slices
    /// `entry_files`.
    entry_offsets: Vec<u32>,
    /// Number of the entry's files currently resident.
    resident_count: Vec<u32>,
    /// Dense mirrors of the history entry's value state, synced by
    /// `on_record` so values can be recomputed bit-identically without
    /// touching the history map.
    count: Vec<u64>,
    value_acc: Vec<f64>,
    value_tick: Vec<u64>,
    last_seen: Vec<u64>,
    priority: Vec<f64>,
    /// Intrusive doubly-linked recency list (most recent first). Since
    /// `last_seen` ticks are unique, walking it front-to-back reproduces
    /// the rebuild path's `sort_by_key(Reverse(last_seen))` exactly.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    /// Entries whose files are all resident (`resident_count == len`), in
    /// arbitrary order, with a position map for O(1) removal.
    supported: Vec<u32>,
    supported_pos: Vec<u32>,
    /// CSR payload parallel to `entry_files`: the entry's pids sorted in
    /// ascending *decision-local* order (the owner key above). Maintained
    /// lazily: `on_record` marks affected entries dirty, and the next
    /// decision that uses a dirty candidate re-sorts its slice.
    entry_sorted: Vec<u32>,
    /// Cached `Σ s'(f)` over `entry_sorted` order with true catalog sizes
    /// (no incoming overlay) — the candidate's full adjusted size. Valid
    /// only while `order_dirty` is clear; assumes catalog sizes are stable
    /// across a run (they are: the catalog is immutable once built).
    entry_adjusted: Vec<f64>,
    /// Cached `Σ s(f)` companion of `entry_adjusted`.
    entry_bytes: Vec<u64>,
    /// Whether `entry_sorted`/`entry_adjusted`/`entry_bytes` must be
    /// rebuilt before the entry's next use as a candidate.
    order_dirty: Vec<bool>,
    /// eid → epoch at which `rank_val` was stamped (eid is a candidate).
    rank_stamp: Vec<u32>,
    /// eid → its rank (index) in this decision's candidate list.
    rank_val: Vec<u32>,
    /// eid → epoch mark "contains an incoming file, cached sums do not
    /// apply this decision" (the size-0 overlay invalidation).
    eff_stamp: Vec<u32>,

    // ---- per-decision epoch-stamped scratch ----
    /// Decision epoch; a stamp equal to `epoch` means "set this decision".
    epoch: u32,
    /// pid → epoch at which `file_local` was assigned.
    file_stamp: Vec<u32>,
    /// pid → local index in the decision's dense instance.
    file_local: Vec<u32>,
    /// pid → epoch mark "belongs to the incoming bundle" (the size-0
    /// overlay: incoming files are pre-reserved and cost nothing).
    incoming_stamp: Vec<u32>,
    /// eid → epoch at which `bonus` was reset.
    bonus_stamp: Vec<u32>,
    /// eid → support gained from the incoming bundle's non-resident files.
    bonus: Vec<u32>,
    /// Entries touched by the bonus pass this epoch.
    touched: Vec<u32>,
    /// The assembled candidate list (eids, most recent first).
    candidates: Vec<u32>,
    /// Interned pids of the incoming bundle (stamped by
    /// [`assemble_candidates`](Self::assemble_candidates)).
    incoming_pids: Vec<u32>,

    // ---- in-place kernel scratch (indexed by candidate rank) ----
    /// Packed per-candidate kernel state — marginal, priority and value,
    /// indexed by candidate rank.
    kr_req: Vec<ReqState>,
    /// Dense total-order images (`ord_key`) of the candidate priorities —
    /// 0 marks taken. Full/Window decisions are capacity-starved (most
    /// candidates never fit), so instead of a heap that pops every
    /// infeasible candidate individually, each greedy round runs one
    /// branchless feasibility-masked argmax scan over this array and
    /// `kr_mb`. Rounds ≈ selections (a couple dozen), not ≈ candidates.
    kr_key: Vec<u64>,
    /// Dense mirror of `kr_req[r].mb` so the feasibility mask in the
    /// argmax scan reads a flat `u64` lane instead of striding `ReqState`.
    kr_mb: Vec<u64>,
    /// Dense epoch stamps deduplicating refreshes within one greedy step.
    kr_touched: Vec<u32>,
    /// Candidates already selected this decision (rank-indexed).
    kr_taken: Vec<bool>,
    /// Selected ranks, in selection order.
    kr_chosen: Vec<u32>,
    /// Union of the selected candidates' pids, in load order (re-sorted to
    /// ascending decision-local order by `decision_outputs`).
    union_pids: Vec<u32>,
    /// Pids loaded by the current selection step.
    newly_loaded: Vec<u32>,
}

impl Default for ResidentInstance {
    fn default() -> Self {
        Self {
            file_of: FxHashMap::default(),
            file_ids: Vec::new(),
            degrees: Vec::new(),
            resident: Vec::new(),
            adj: Vec::new(),
            owner: Vec::new(),
            owner_pos: Vec::new(),
            loaded_stamp: Vec::new(),
            ids: FxHashMap::default(),
            bundles: Vec::new(),
            entry_files: Vec::new(),
            entry_offsets: vec![0],
            resident_count: Vec::new(),
            count: Vec::new(),
            value_acc: Vec::new(),
            value_tick: Vec::new(),
            last_seen: Vec::new(),
            priority: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NONE,
            supported: Vec::new(),
            supported_pos: Vec::new(),
            entry_sorted: Vec::new(),
            entry_adjusted: Vec::new(),
            entry_bytes: Vec::new(),
            order_dirty: Vec::new(),
            rank_stamp: Vec::new(),
            rank_val: Vec::new(),
            eff_stamp: Vec::new(),
            epoch: 0,
            file_stamp: Vec::new(),
            file_local: Vec::new(),
            incoming_stamp: Vec::new(),
            bonus_stamp: Vec::new(),
            bonus: Vec::new(),
            touched: Vec::new(),
            candidates: Vec::new(),
            incoming_pids: Vec::new(),
            kr_req: Vec::new(),
            kr_key: Vec::new(),
            kr_mb: Vec::new(),
            kr_touched: Vec::new(),
            kr_taken: Vec::new(),
            kr_chosen: Vec::new(),
            union_pids: Vec::new(),
            newly_loaded: Vec::new(),
        }
    }
}

impl ResidentInstance {
    /// An empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// The bundle of entry `eid`.
    #[inline]
    pub fn bundle(&self, eid: u32) -> &Bundle {
        &self.bundles[eid as usize]
    }

    /// The candidate list assembled by the last
    /// [`assemble_candidates`](Self::assemble_candidates) call (eids, most
    /// recent first).
    #[inline]
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    #[inline]
    fn entry_len(&self, eid: usize) -> u32 {
        self.entry_offsets[eid + 1] - self.entry_offsets[eid]
    }

    fn intern_file(&mut self, f: FileId) -> u32 {
        match self.file_of.entry(f) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let pid = self.file_ids.len() as u32;
                v.insert(pid);
                self.file_ids.push(f);
                self.degrees.push(0);
                self.resident.push(false);
                self.adj.push(Vec::new());
                self.owner.push(NONE);
                self.owner_pos.push(0);
                self.loaded_stamp.push(0);
                self.file_stamp.push(0);
                self.file_local.push(0);
                self.incoming_stamp.push(0);
                pid
            }
        }
    }

    fn unlink(&mut self, eid: u32) {
        let (p, n) = (self.prev[eid as usize], self.next[eid as usize]);
        if p != NONE {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, eid: u32) {
        self.prev[eid as usize] = NONE;
        self.next[eid as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = eid;
        }
        self.head = eid;
    }

    /// Syncs one recorded bundle: O(b) for a first occurrence, O(1) for a
    /// repeat (plus the recency-list relink). Call with the entry returned
    /// by [`RequestHistory::record`].
    pub fn on_record(&mut self, entry: &HistoryEntry) {
        let bundle = &entry.bundle;
        let eid = if let Some(&e) = self.ids.get(bundle) {
            // Repeat occurrence: degrees and adjacency are unchanged.
            self.unlink(e);
            e
        } else {
            let e = self.bundles.len() as u32;
            self.ids.insert(bundle.clone(), e);
            self.bundles.push(bundle.clone());
            let mut rcount = 0u32;
            let mut blen = 0u32;
            for f in bundle.iter() {
                let pid = self.intern_file(f);
                // A first occurrence increments d(f) of each of its files,
                // exactly as the history does.
                self.degrees[pid as usize] += 1;
                self.adj[pid as usize].push(e);
                self.entry_files.push(pid);
                self.entry_sorted.push(pid);
                if self.resident[pid as usize] {
                    rcount += 1;
                }
                blen += 1;
            }
            self.entry_offsets.push(self.entry_files.len() as u32);
            self.resident_count.push(rcount);
            self.count.push(0);
            self.value_acc.push(0.0);
            self.value_tick.push(0);
            self.last_seen.push(0);
            self.priority.push(1.0);
            self.prev.push(NONE);
            self.next.push(NONE);
            self.bonus_stamp.push(0);
            self.bonus.push(0);
            self.entry_adjusted.push(0.0);
            self.entry_bytes.push(0);
            self.order_dirty.push(true);
            self.rank_stamp.push(0);
            self.rank_val.push(0);
            self.eff_stamp.push(0);
            if rcount == blen {
                self.supported_pos.push(self.supported.len() as u32);
                self.supported.push(e);
            } else {
                self.supported_pos.push(NONE);
            }
            e
        };
        let i = eid as usize;
        let (acc, tick) = entry.value_state();
        self.count[i] = entry.count;
        self.value_acc[i] = acc;
        self.value_tick[i] = tick;
        self.last_seen[i] = entry.last_seen;
        self.priority[i] = entry.priority;
        self.push_front(eid);
        // Owner maintenance: this entry is now the most recently recorded
        // holder of each of its files. Any entry sharing a file with it may
        // see an owner change, an owner rank move, or (on a first record) a
        // degree change — all three invalidate the cached per-entry order
        // and adjusted sums, so dirty the whole file-sharing neighbourhood.
        // Entries sharing no file are unaffected: their owners keep their
        // relative recency order, which is all the cached key encodes.
        let (start, end) = (
            self.entry_offsets[i] as usize,
            self.entry_offsets[i + 1] as usize,
        );
        for k in start..end {
            let pid = self.entry_files[k] as usize;
            self.owner[pid] = eid;
            self.owner_pos[pid] = (k - start) as u32;
            for ai in 0..self.adj[pid].len() {
                self.order_dirty[self.adj[pid][ai] as usize] = true;
            }
        }
    }

    /// Marks `file` resident, updating the resident counters (and the
    /// supported set) of the entries using it. O(d(f)).
    pub fn on_insert(&mut self, file: FileId) {
        let pid = self.intern_file(file) as usize;
        if self.resident[pid] {
            return;
        }
        self.resident[pid] = true;
        for i in 0..self.adj[pid].len() {
            let eid = self.adj[pid][i];
            let e = eid as usize;
            self.resident_count[e] += 1;
            if self.resident_count[e] == self.entry_offsets[e + 1] - self.entry_offsets[e] {
                self.supported_pos[e] = self.supported.len() as u32;
                self.supported.push(eid);
            }
        }
    }

    /// Marks `file` evicted, the inverse of [`on_insert`](Self::on_insert).
    pub fn on_evict(&mut self, file: FileId) {
        let Some(&pid) = self.file_of.get(&file) else {
            return;
        };
        let pid = pid as usize;
        if !self.resident[pid] {
            return;
        }
        self.resident[pid] = false;
        for i in 0..self.adj[pid].len() {
            let eid = self.adj[pid][i];
            let e = eid as usize;
            if self.resident_count[e] == self.entry_offsets[e + 1] - self.entry_offsets[e] {
                let pos = self.supported_pos[e] as usize;
                self.supported.swap_remove(pos);
                if pos < self.supported.len() {
                    self.supported_pos[self.supported[pos] as usize] = pos as u32;
                }
                self.supported_pos[e] = NONE;
            }
            self.resident_count[e] -= 1;
        }
    }

    /// Rebuilds the mirror from a warm-start history (entries are replayed
    /// oldest-first so the recency list matches the history's `last_seen`
    /// order). The cache is empty at warm start, so residency starts false.
    pub fn populate(&mut self, history: &RequestHistory) {
        debug_assert!(self.is_empty(), "populate() expects a fresh mirror");
        let mut entries: Vec<&HistoryEntry> = history.entries().collect();
        entries.sort_unstable_by_key(|e| e.last_seen);
        for e in entries {
            self.on_record(e);
        }
    }

    /// Starts a new decision epoch, invalidating all stamps in O(1).
    fn begin_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // Stamp wrap (once per 2^32 decisions): reset all stamps so no
            // stale stamp can collide with the restarted epoch counter.
            self.file_stamp.iter_mut().for_each(|s| *s = 0);
            self.incoming_stamp.iter_mut().for_each(|s| *s = 0);
            self.bonus_stamp.iter_mut().for_each(|s| *s = 0);
            self.loaded_stamp.iter_mut().for_each(|s| *s = 0);
            self.rank_stamp.iter_mut().for_each(|s| *s = 0);
            self.eff_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Assembles the decision's candidate list (into
    /// [`candidates`](Self::candidates)) for the given truncation mode —
    /// the "apply the pending delta" step of the decision path.
    ///
    /// Reproduces the rebuild path's candidate *set and order* exactly:
    /// most recent first, capped by `max_candidates` (and the window size).
    pub fn assemble_candidates(
        &mut self,
        mode: HistoryMode,
        max_candidates: Option<usize>,
        incoming: &Bundle,
    ) {
        self.begin_epoch();
        let epoch = self.epoch;
        self.candidates.clear();
        self.incoming_pids.clear();
        // Stamp the incoming bundle's interned files: the size-0 overlay of
        // `fill_instance` / the fast decision path and the bonus pass below
        // all key off this.
        for f in incoming.iter() {
            if let Some(&pid) = self.file_of.get(&f) {
                self.incoming_stamp[pid as usize] = epoch;
                self.incoming_pids.push(pid);
            }
        }
        match mode {
            HistoryMode::Full | HistoryMode::Window(_) => {
                let limit = match mode {
                    HistoryMode::Window(n) => n.min(max_candidates.unwrap_or(usize::MAX)),
                    _ => max_candidates.unwrap_or(usize::MAX),
                };
                let mut cur = self.head;
                while cur != NONE && self.candidates.len() < limit {
                    self.candidates.push(cur);
                    cur = self.next[cur as usize];
                }
            }
            HistoryMode::CacheSupported => {
                // Entries fully supported by the resident set alone...
                self.candidates.extend_from_slice(&self.supported);
                // ...plus entries completed by the incoming bundle's
                // non-resident files (whose space is reserved).
                let mut touched = std::mem::take(&mut self.touched);
                touched.clear();
                for f in incoming.iter() {
                    let Some(&pid) = self.file_of.get(&f) else {
                        continue;
                    };
                    if self.resident[pid as usize] {
                        continue;
                    }
                    for i in 0..self.adj[pid as usize].len() {
                        let eid = self.adj[pid as usize][i];
                        let e = eid as usize;
                        if self.bonus_stamp[e] != epoch {
                            self.bonus_stamp[e] = epoch;
                            self.bonus[e] = 0;
                            touched.push(eid);
                        }
                        self.bonus[e] += 1;
                    }
                }
                for &eid in &touched {
                    let e = eid as usize;
                    // `bonus > 0` implies `resident_count < len`, so these
                    // entries are disjoint from the supported set above.
                    if self.resident_count[e] + self.bonus[e] == self.entry_len(e) {
                        self.candidates.push(eid);
                    }
                }
                self.touched = touched;
                // Recency order; `last_seen` ticks are unique, so this is a
                // total order matching the rebuild path's sort.
                let last_seen = &self.last_seen;
                self.candidates
                    .sort_unstable_by_key(|&e| std::cmp::Reverse(last_seen[e as usize]));
                if let Some(cap) = max_candidates {
                    self.candidates.truncate(cap);
                }
            }
        }
    }

    /// The entry's value `v(r)` as of `now` — bit-identical to
    /// [`HistoryEntry::value_at`] on the mirrored state.
    #[inline]
    fn value_of(&self, eid: usize, now: u64, value_fn: ValueFn) -> f64 {
        let base = match value_fn {
            ValueFn::Count => self.count[eid] as f64,
            ValueFn::Decay { half_life } => {
                let dt = now.saturating_sub(self.value_tick[eid]) as f64;
                self.value_acc[eid] * 0.5_f64.powf(dt / half_life)
            }
        };
        base * self.priority[eid]
    }

    /// Fills the decision's dense instance buffers from the assembled
    /// candidates: local interning in first-touch order (candidates most
    /// recent first, files in canonical bundle order — the exact
    /// permutation the rebuild path produced, so every downstream float
    /// operation sums in the same order), sizes with the incoming bundle's
    /// files overlaid to 0, degrees from the dense mirror, and values
    /// recomputed from the mirrored accumulators.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_instance(
        &mut self,
        catalog: &FileCatalog,
        now: u64,
        value_fn: ValueFn,
        global_of: &mut Vec<FileId>,
        sizes: &mut Vec<Bytes>,
        degrees: &mut Vec<u32>,
        file_bufs: &mut Vec<Vec<u32>>,
        requests: &mut Vec<(Vec<u32>, f64)>,
    ) {
        let epoch = self.epoch;
        for c in 0..self.candidates.len() {
            let eid = self.candidates[c] as usize;
            let mut files = file_bufs.pop().unwrap_or_default();
            files.clear();
            let (start, end) = (
                self.entry_offsets[eid] as usize,
                self.entry_offsets[eid + 1] as usize,
            );
            for k in start..end {
                let pid = self.entry_files[k] as usize;
                let local = if self.file_stamp[pid] == epoch {
                    self.file_local[pid]
                } else {
                    let l = global_of.len() as u32;
                    self.file_stamp[pid] = epoch;
                    self.file_local[pid] = l;
                    global_of.push(self.file_ids[pid]);
                    sizes.push(if self.incoming_stamp[pid] == epoch {
                        0
                    } else {
                        catalog.size(self.file_ids[pid])
                    });
                    degrees.push(self.degrees[pid]);
                    l
                };
                files.push(local);
            }
            requests.push((files, self.value_of(eid, now, value_fn)));
        }
    }

    /// Prepares the in-place Full/Window decision kernel after
    /// [`assemble_candidates`](Self::assemble_candidates): stamps candidate
    /// ranks, refreshes lazily invalidated per-entry orders and adjusted
    /// sums, and fills the rank-indexed value/marginal/priority tables —
    /// everything `fill_instance` + `FbcInstance` construction used to
    /// produce, without building the instance.
    ///
    /// Only valid for `Full`/`Window` candidate lists: those are recency
    /// *prefixes*, which is what guarantees every candidate file's owner is
    /// itself a (stamped) candidate. `CacheSupported` keeps the instance
    /// path.
    pub fn prepare_decision(&mut self, catalog: &FileCatalog, now: u64, value_fn: ValueFn) {
        let epoch = self.epoch;
        let ncand = self.candidates.len();
        for r in 0..ncand {
            let e = self.candidates[r] as usize;
            self.rank_stamp[e] = epoch;
            self.rank_val[e] = r as u32;
        }
        // Candidates containing an incoming file get the size-0 overlay:
        // their cached full-size sums do not apply this decision.
        for ii in 0..self.incoming_pids.len() {
            let pid = self.incoming_pids[ii] as usize;
            for ai in 0..self.adj[pid].len() {
                let e = self.adj[pid][ai] as usize;
                if self.rank_stamp[e] == epoch {
                    self.eff_stamp[e] = epoch;
                }
            }
        }
        // Length-only reset for the records (the loop below overwrites
        // every one); the stamp/taken arrays are cleared — both one small
        // memset — because the kernel reads them before first write.
        self.kr_req.resize(ncand, ReqState::default());
        self.kr_touched.clear();
        self.kr_touched.resize(ncand, 0);
        self.kr_taken.clear();
        self.kr_taken.resize(ncand, false);
        self.kr_key.clear();
        self.kr_key.resize(ncand, 0);
        self.kr_mb.clear();
        self.kr_mb.resize(ncand, 0);
        self.kr_chosen.clear();
        self.union_pids.clear();

        for r in 0..ncand {
            let e = self.candidates[r] as usize;
            if self.order_dirty[e] {
                self.rebuild_entry_order(catalog, e);
            }
            let (adjusted, bytes) = if self.eff_stamp[e] == epoch {
                // Recompute with the incoming files' sizes overlaid to 0 —
                // the 0-size terms contribute exactly the `+0.0` the
                // instance path's sum would, in the same order.
                self.entry_sums(catalog, e, true)
            } else {
                (self.entry_adjusted[e], self.entry_bytes[e])
            };
            let value = self.value_of(e, now, value_fn);
            let rv = rv_of(value, adjusted);
            self.kr_req[r] = ReqState {
                mb: bytes,
                rv,
                value,
            };
            self.kr_key[r] = ord_key(rv);
            self.kr_mb[r] = bytes;
        }
    }

    /// Re-sorts a dirty entry's file slice into ascending decision-local
    /// order (the owner key) and recomputes its cached full-size sums.
    fn rebuild_entry_order(&mut self, catalog: &FileCatalog, e: usize) {
        let start = self.entry_offsets[e] as usize;
        let end = self.entry_offsets[e + 1] as usize;
        {
            let owner = &self.owner;
            let owner_pos = &self.owner_pos;
            let rank_val = &self.rank_val;
            #[cfg(debug_assertions)]
            let (rank_stamp, epoch) = (&self.rank_stamp, self.epoch);
            self.entry_sorted[start..end].sort_unstable_by_key(|&pid| {
                let o = owner[pid as usize] as usize;
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    rank_stamp[o], epoch,
                    "owner of a candidate's file must itself be a candidate"
                );
                (rank_val[o], owner_pos[pid as usize])
            });
        }
        let (adjusted, bytes) = self.entry_sums(catalog, e, false);
        self.entry_adjusted[e] = adjusted;
        self.entry_bytes[e] = bytes;
        self.order_dirty[e] = false;
    }

    /// `(Σ s'(f), Σ s(f))` over the entry's files in ascending
    /// decision-local (`entry_sorted`) order — term-for-term the sums the
    /// instance path's `memoise_adjusted`/`request_sizes` computed. With
    /// `overlay`, incoming files count as size 0.
    #[inline]
    fn entry_sums(&self, catalog: &FileCatalog, e: usize, overlay: bool) -> (f64, u64) {
        let epoch = self.epoch;
        let mut adjusted = 0.0_f64;
        let mut bytes = 0_u64;
        for k in self.entry_offsets[e] as usize..self.entry_offsets[e + 1] as usize {
            let pid = self.entry_sorted[k] as usize;
            let sz = if overlay && self.incoming_stamp[pid] == epoch {
                0
            } else {
                catalog.size(self.file_ids[pid])
            };
            bytes += sz;
            adjusted += sz as f64 / self.degrees[pid].max(1) as f64;
        }
        (adjusted, bytes)
    }

    /// Runs the shared-credit greedy (plus Algorithm 1's single-request
    /// fallback) directly over the prepared resident state — the in-place
    /// mirror of `opt_cache_select_with_scratch` on the instance the
    /// rebuild path would have built. Returns `Some(rank)` when the single
    /// fallback strictly beats the greedy set (the `max_of` tie-break),
    /// `None` when the greedy selection (left in `kr_chosen`/`union_pids`)
    /// wins.
    pub fn select_fast(&mut self, catalog: &FileCatalog, capacity: Bytes) -> Option<usize> {
        let epoch = self.epoch;
        let ncand = self.candidates.len();

        // Step 3 fallback first, over the *initial* marginals (the memoised
        // request sizes of the instance path): earliest maximum value among
        // the feasible candidates.
        // `min_positive_mb`/`free_candidates` mirror the select kernel's
        // early-exit bound: a monotone lower bound on every positive
        // marginal, and an exact count of zero-marginal (always feasible,
        // hence never parked) candidates.
        let mut single: Option<usize> = None;
        let mut min_positive_mb: u64 = u64::MAX;
        let mut free_candidates: usize = 0;
        for r in 0..ncand {
            let mb = self.kr_req[r].mb;
            if mb == 0 {
                free_candidates += 1;
            } else if mb < min_positive_mb {
                min_positive_mb = mb;
            }
            if mb <= capacity {
                match single {
                    Some(b) if self.kr_req[b].value >= self.kr_req[r].value => {}
                    _ => single = Some(r),
                }
            }
        }

        let mut remaining = capacity;
        let mut value_sum = 0.0_f64;
        let mut step: u32 = 0;
        loop {
            // Early exit skipping the terminal drain — same argument as
            // the select kernel: nothing resident is feasible now, and
            // with no takes possible no marginal ever changes again.
            if free_candidates == 0 && remaining < min_positive_mb {
                break;
            }
            // One greedy round = the reference heap's pop-until-feasible
            // run, fused into a feasibility-masked argmax. Parking is
            // unobservable: a parked candidate re-enters only through the
            // adjacency refresh, which rewrites its priority and marginal
            // wholesale — identically whether or not it was removed from a
            // heap first — and an unparked-but-infeasible candidate can
            // never be taken later because `remaining` only shrinks. So
            // the round's take is exactly the feasibility-masked maximum
            // of the reference pop order's key, `(rv desc, rank asc)`.
            let mut best = 0_u64;
            for (&k, &m) in self.kr_key.iter().zip(self.kr_mb.iter()) {
                let masked = if m <= remaining { k } else { 0 };
                best = best.max(masked);
            }
            if best == 0 {
                break; // no feasible candidate left — terminal drain
            }
            let mut r = usize::MAX;
            for i in 0..ncand {
                if self.kr_key[i] == best && self.kr_mb[i] <= remaining {
                    r = i;
                    break;
                }
            }
            debug_assert!(r < ncand, "masked maximum must be attained");
            if self.kr_req[r].mb == 0 {
                free_candidates -= 1;
            }
            self.kr_key[r] = 0;
            self.kr_taken[r] = true;
            self.kr_chosen.push(r as u32);
            value_sum += self.kr_req[r].value;
            let e = self.candidates[r] as usize;
            self.newly_loaded.clear();
            for k in self.entry_offsets[e] as usize..self.entry_offsets[e + 1] as usize {
                let pid = self.entry_sorted[k] as usize;
                if self.loaded_stamp[pid] != epoch {
                    self.loaded_stamp[pid] = epoch;
                    remaining -= if self.incoming_stamp[pid] == epoch {
                        0
                    } else {
                        catalog.size(self.file_ids[pid])
                    };
                    self.union_pids.push(pid as u32);
                    self.newly_loaded.push(pid as u32);
                }
            }

            // Refresh the candidates adjacent to a freshly loaded file,
            // exactly as the select kernel does over its CSR.
            step += 1;
            for li in 0..self.newly_loaded.len() {
                let pid = self.newly_loaded[li] as usize;
                for ai in 0..self.adj[pid].len() {
                    let e2 = self.adj[pid][ai] as usize;
                    if self.rank_stamp[e2] != epoch {
                        continue; // not a candidate this decision
                    }
                    let r2 = self.rank_val[e2] as usize;
                    if self.kr_touched[r2] == step || self.kr_taken[r2] {
                        continue;
                    }
                    self.kr_touched[r2] = step;
                    let mut mb = 0_u64;
                    let mut ma = 0.0_f64;
                    for k in self.entry_offsets[e2] as usize..self.entry_offsets[e2 + 1] as usize {
                        let p = self.entry_sorted[k] as usize;
                        if self.loaded_stamp[p] == epoch {
                            continue;
                        }
                        let sz = if self.incoming_stamp[p] == epoch {
                            0
                        } else {
                            catalog.size(self.file_ids[p])
                        };
                        mb += sz;
                        ma += sz as f64 / self.degrees[p].max(1) as f64;
                    }
                    if mb == 0 {
                        if self.kr_req[r2].mb != 0 {
                            free_candidates += 1;
                        }
                    } else if mb < min_positive_mb {
                        min_positive_mb = mb;
                    }
                    let rv = rv_of(self.kr_req[r2].value, ma);
                    debug_assert!(
                        ord_key(rv) >= self.kr_key[r2],
                        "refresh only raises priorities"
                    );
                    self.kr_req[r2].mb = mb;
                    self.kr_req[r2].rv = rv;
                    self.kr_key[r2] = ord_key(rv);
                    self.kr_mb[r2] = mb;
                }
            }
        }

        match single {
            Some(s) if self.kr_req[s].value > value_sum => Some(s),
            _ => None,
        }
    }

    /// Materialises the decision's `(retained, prefetch)` file lists from
    /// the winning selection — byte-identical to the instance path's
    /// `selection.files → global → sort` and ascending-local prefetch scan.
    pub fn decision_outputs(
        &mut self,
        cache: &CacheState,
        prefetch_enabled: bool,
        single: Option<usize>,
    ) -> (Vec<FileId>, Vec<FileId>) {
        let epoch = self.epoch;
        if let Some(r) = single {
            let e = self.candidates[r] as usize;
            self.union_pids.clear();
            let (start, end) = (
                self.entry_offsets[e] as usize,
                self.entry_offsets[e + 1] as usize,
            );
            self.union_pids
                .extend_from_slice(&self.entry_sorted[start..end]);
        } else {
            // The greedy union accumulated in load order; the instance path
            // reports `selection.files` in ascending local order, which the
            // owner key reproduces.
            let owner = &self.owner;
            let owner_pos = &self.owner_pos;
            let rank_val = &self.rank_val;
            self.union_pids.sort_unstable_by_key(|&pid| {
                (
                    rank_val[owner[pid as usize] as usize],
                    owner_pos[pid as usize],
                )
            });
        }
        let mut retained: Vec<FileId> = self
            .union_pids
            .iter()
            .map(|&p| self.file_ids[p as usize])
            .collect();
        retained.sort_unstable();
        let prefetch: Vec<FileId> = if prefetch_enabled {
            self.union_pids
                .iter()
                .filter(|&&p| self.incoming_stamp[p as usize] != epoch)
                .map(|&p| self.file_ids[p as usize])
                .filter(|&f| !cache.contains(f))
                .collect()
        } else {
            Vec::new()
        };
        (retained, prefetch)
    }

    /// Exhaustive consistency check against the history and a residency
    /// oracle (tests only — O(|R| · b)).
    pub fn check_consistency<F: Fn(FileId) -> bool>(
        &self,
        history: &RequestHistory,
        resident: F,
    ) -> bool {
        if self.len() != history.len() {
            return false;
        }
        self.bundles.iter().enumerate().all(|(e, b)| {
            let Some(entry) = history.get(b) else {
                return false;
            };
            let rcount = b.iter().filter(|&f| resident(f)).count() as u32;
            let supported_ok = if rcount == b.len() as u32 {
                self.supported_pos[e] != NONE
                    && self.supported[self.supported_pos[e] as usize] == e as u32
            } else {
                self.supported_pos[e] == NONE
            };
            self.resident_count[e] == rcount
                && supported_ok
                && self.count[e] == entry.count
                && self.last_seen[e] == entry.last_seen
                && b.iter().all(|f| {
                    self.file_of
                        .get(&f)
                        .is_some_and(|&pid| self.degrees[pid as usize] == history.degree(f))
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    /// Drives a mirror + history pair through a random interleaving and
    /// checks full consistency after every step.
    #[test]
    fn mirror_stays_consistent_under_random_interleavings() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        let mut resident = std::collections::HashSet::new();
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            match next() % 4 {
                0 | 1 => {
                    let k = (next() % 3 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % 16) as u32).collect();
                    let bundle = Bundle::from_raw(files);
                    let entry = history.record(&bundle);
                    mirror.on_record(entry);
                }
                2 => {
                    let f = FileId((next() % 16) as u32);
                    resident.insert(f);
                    mirror.on_insert(f);
                }
                _ => {
                    let f = FileId((next() % 16) as u32);
                    resident.remove(&f);
                    mirror.on_evict(f);
                }
            }
            assert!(mirror.check_consistency(&history, |f| resident.contains(&f)));
        }
    }

    #[test]
    fn recency_list_matches_last_seen_order() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        for ids in [&[1u32, 2][..], &[3], &[4, 5], &[1, 2], &[3]] {
            let entry = history.record(&b(ids));
            mirror.on_record(entry);
        }
        mirror.assemble_candidates(HistoryMode::Full, None, &b(&[]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[3]), b(&[1, 2]), b(&[4, 5])]);
        // Window truncation takes a prefix of the same order.
        mirror.assemble_candidates(HistoryMode::Window(2), None, &b(&[]));
        assert_eq!(mirror.candidates().len(), 2);
    }

    #[test]
    fn populate_replays_history_in_recency_order() {
        let mut history = RequestHistory::new();
        for ids in [&[1u32][..], &[2], &[3], &[1]] {
            history.record(&b(ids));
        }
        let mut mirror = ResidentInstance::new();
        mirror.populate(&history);
        assert!(mirror.check_consistency(&history, |_| false));
        mirror.assemble_candidates(HistoryMode::Full, None, &b(&[]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[1]), b(&[3]), b(&[2])]);
    }

    #[test]
    fn cache_supported_uses_residency_plus_incoming_bonus() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        for ids in [&[0u32, 1][..], &[1, 2], &[7]] {
            let entry = history.record(&b(ids));
            mirror.on_record(entry);
        }
        mirror.on_insert(FileId(1));
        // {1} alone supports nothing.
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[9]));
        assert!(mirror.candidates().is_empty());
        // Incoming {0} completes {0,1}.
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[0]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[0, 1])]);
        // Fully resident entries appear without bonus help.
        mirror.on_insert(FileId(0));
        mirror.on_insert(FileId(2));
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[9]));
        assert_eq!(mirror.candidates().len(), 2);
    }
}

//! Persistent, incrementally maintained decision state for
//! [`OptFileBundle`](crate::optfilebundle::OptFileBundle).
//!
//! Before this module, every replacement decision rebuilt its FBC instance
//! from scratch: re-hash every candidate bundle through the history map,
//! re-intern every file into a per-decision `FxHashMap`, re-read every
//! degree, recompute every value and re-sort the whole candidate set by
//! recency — even though between consecutive decisions the world changes by
//! a tiny delta (one recorded bundle, a few inserted/evicted files).
//!
//! [`ResidentInstance`] keeps that state *alive across decisions* and
//! updates it with O(Δ) hooks mirroring the
//! [`SupportIndex`](crate::index::SupportIndex) lifecycle:
//!
//! * [`on_record`](ResidentInstance::on_record) — interns a newly recorded
//!   bundle's files, appends its file list to an append-only CSR, bumps the
//!   dense degree mirror, syncs the dense value accumulators from the
//!   history entry, and moves the entry to the front of an intrusive
//!   recency list;
//! * [`on_insert`](ResidentInstance::on_insert) /
//!   [`on_evict`](ResidentInstance::on_evict) — flip a file's residency flag
//!   and walk its file→entry adjacency to maintain per-entry resident
//!   counters, pushing/removing entries from the *fully supported* set as
//!   their counter crosses the bundle size.
//!
//! A decision then *assembles* its candidate list without touching the
//! history hash map at all: `Full`/`Window` walk the recency list (already
//! recency-sorted — the sort the rebuild path paid per decision is free
//! here), and `CacheSupported` takes the maintained supported set plus the
//! entries completed by the incoming bundle's files. Filling the dense
//! instance replays the rebuild path's first-touch interning permutation
//! with epoch-stamped arrays instead of a hash map, so the produced
//! `sizes`/`degrees`/`requests` vectors — and therefore every downstream
//! float operation of the selection kernel — are **bit-for-bit identical**
//! to the rebuild path's. The rebuild path itself survives verbatim behind
//! the `reference-kernels` feature and is pinned equal by differential
//! proptests (`crates/core/tests/resident_equivalence.rs`) and end-to-end
//! byte-equality sweeps (`tests/resident_equivalence.rs`).

use crate::bundle::Bundle;
use crate::catalog::FileCatalog;
use crate::history::{HistoryEntry, RequestHistory, ValueFn};
use crate::optfilebundle::HistoryMode;
use crate::types::{Bytes, FileId};
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;

/// Sentinel for "no entry" in the intrusive recency list and position maps.
const NONE: u32 = u32::MAX;

/// The persistent dense FBC instance living inside `OptFileBundle`.
///
/// Files and history entries are interned once, on first contact, into
/// dense ids (`pid` for files, `eid` for entries) that stay stable for the
/// lifetime of the policy; all per-decision work is array reads over those
/// ids. See the module docs for the maintenance protocol.
#[derive(Debug, Clone)]
pub struct ResidentInstance {
    // ---- files (indexed by pid) ----
    /// Global `FileId` → dense pid. The only hash lookup left on the
    /// maintenance path; the decision path itself is hash-free.
    file_of: FxHashMap<FileId, u32>,
    /// pid → global id (inverse of `file_of`).
    file_ids: Vec<FileId>,
    /// Dense mirror of the history's `d(f)` degrees.
    degrees: Vec<u32>,
    /// Whether the file is currently resident in the cache.
    resident: Vec<bool>,
    /// File → entries using it (the transpose of the entry CSR).
    adj: Vec<Vec<u32>>,

    // ---- entries (indexed by eid) ----
    /// Canonical bundle → eid (hit only by `on_record`).
    ids: FxHashMap<Bundle, u32>,
    /// eid → its bundle (for mapping candidates back to bundles).
    bundles: Vec<Bundle>,
    /// Append-only CSR of entry files (pids, in canonical bundle order —
    /// the same order the rebuild path iterated `bundle.iter()` in).
    entry_files: Vec<u32>,
    /// CSR offsets; `entry_offsets[eid]..entry_offsets[eid + 1]` slices
    /// `entry_files`.
    entry_offsets: Vec<u32>,
    /// Number of the entry's files currently resident.
    resident_count: Vec<u32>,
    /// Dense mirrors of the history entry's value state, synced by
    /// `on_record` so values can be recomputed bit-identically without
    /// touching the history map.
    count: Vec<u64>,
    value_acc: Vec<f64>,
    value_tick: Vec<u64>,
    last_seen: Vec<u64>,
    priority: Vec<f64>,
    /// Intrusive doubly-linked recency list (most recent first). Since
    /// `last_seen` ticks are unique, walking it front-to-back reproduces
    /// the rebuild path's `sort_by_key(Reverse(last_seen))` exactly.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    /// Entries whose files are all resident (`resident_count == len`), in
    /// arbitrary order, with a position map for O(1) removal.
    supported: Vec<u32>,
    supported_pos: Vec<u32>,

    // ---- per-decision epoch-stamped scratch ----
    /// Decision epoch; a stamp equal to `epoch` means "set this decision".
    epoch: u32,
    /// pid → epoch at which `file_local` was assigned.
    file_stamp: Vec<u32>,
    /// pid → local index in the decision's dense instance.
    file_local: Vec<u32>,
    /// pid → epoch mark "belongs to the incoming bundle" (the size-0
    /// overlay: incoming files are pre-reserved and cost nothing).
    incoming_stamp: Vec<u32>,
    /// eid → epoch at which `bonus` was reset.
    bonus_stamp: Vec<u32>,
    /// eid → support gained from the incoming bundle's non-resident files.
    bonus: Vec<u32>,
    /// Entries touched by the bonus pass this epoch.
    touched: Vec<u32>,
    /// The assembled candidate list (eids, most recent first).
    candidates: Vec<u32>,
}

impl Default for ResidentInstance {
    fn default() -> Self {
        Self {
            file_of: FxHashMap::default(),
            file_ids: Vec::new(),
            degrees: Vec::new(),
            resident: Vec::new(),
            adj: Vec::new(),
            ids: FxHashMap::default(),
            bundles: Vec::new(),
            entry_files: Vec::new(),
            entry_offsets: vec![0],
            resident_count: Vec::new(),
            count: Vec::new(),
            value_acc: Vec::new(),
            value_tick: Vec::new(),
            last_seen: Vec::new(),
            priority: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NONE,
            supported: Vec::new(),
            supported_pos: Vec::new(),
            epoch: 0,
            file_stamp: Vec::new(),
            file_local: Vec::new(),
            incoming_stamp: Vec::new(),
            bonus_stamp: Vec::new(),
            bonus: Vec::new(),
            touched: Vec::new(),
            candidates: Vec::new(),
        }
    }
}

impl ResidentInstance {
    /// An empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// The bundle of entry `eid`.
    #[inline]
    pub fn bundle(&self, eid: u32) -> &Bundle {
        &self.bundles[eid as usize]
    }

    /// The candidate list assembled by the last
    /// [`assemble_candidates`](Self::assemble_candidates) call (eids, most
    /// recent first).
    #[inline]
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    #[inline]
    fn entry_len(&self, eid: usize) -> u32 {
        self.entry_offsets[eid + 1] - self.entry_offsets[eid]
    }

    fn intern_file(&mut self, f: FileId) -> u32 {
        match self.file_of.entry(f) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let pid = self.file_ids.len() as u32;
                v.insert(pid);
                self.file_ids.push(f);
                self.degrees.push(0);
                self.resident.push(false);
                self.adj.push(Vec::new());
                self.file_stamp.push(0);
                self.file_local.push(0);
                self.incoming_stamp.push(0);
                pid
            }
        }
    }

    fn unlink(&mut self, eid: u32) {
        let (p, n) = (self.prev[eid as usize], self.next[eid as usize]);
        if p != NONE {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, eid: u32) {
        self.prev[eid as usize] = NONE;
        self.next[eid as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = eid;
        }
        self.head = eid;
    }

    /// Syncs one recorded bundle: O(b) for a first occurrence, O(1) for a
    /// repeat (plus the recency-list relink). Call with the entry returned
    /// by [`RequestHistory::record`].
    pub fn on_record(&mut self, entry: &HistoryEntry) {
        let bundle = &entry.bundle;
        let eid = if let Some(&e) = self.ids.get(bundle) {
            // Repeat occurrence: degrees and adjacency are unchanged.
            self.unlink(e);
            e
        } else {
            let e = self.bundles.len() as u32;
            self.ids.insert(bundle.clone(), e);
            self.bundles.push(bundle.clone());
            let mut rcount = 0u32;
            let mut blen = 0u32;
            for f in bundle.iter() {
                let pid = self.intern_file(f);
                // A first occurrence increments d(f) of each of its files,
                // exactly as the history does.
                self.degrees[pid as usize] += 1;
                self.adj[pid as usize].push(e);
                self.entry_files.push(pid);
                if self.resident[pid as usize] {
                    rcount += 1;
                }
                blen += 1;
            }
            self.entry_offsets.push(self.entry_files.len() as u32);
            self.resident_count.push(rcount);
            self.count.push(0);
            self.value_acc.push(0.0);
            self.value_tick.push(0);
            self.last_seen.push(0);
            self.priority.push(1.0);
            self.prev.push(NONE);
            self.next.push(NONE);
            self.bonus_stamp.push(0);
            self.bonus.push(0);
            if rcount == blen {
                self.supported_pos.push(self.supported.len() as u32);
                self.supported.push(e);
            } else {
                self.supported_pos.push(NONE);
            }
            e
        };
        let i = eid as usize;
        let (acc, tick) = entry.value_state();
        self.count[i] = entry.count;
        self.value_acc[i] = acc;
        self.value_tick[i] = tick;
        self.last_seen[i] = entry.last_seen;
        self.priority[i] = entry.priority;
        self.push_front(eid);
    }

    /// Marks `file` resident, updating the resident counters (and the
    /// supported set) of the entries using it. O(d(f)).
    pub fn on_insert(&mut self, file: FileId) {
        let pid = self.intern_file(file) as usize;
        if self.resident[pid] {
            return;
        }
        self.resident[pid] = true;
        for i in 0..self.adj[pid].len() {
            let eid = self.adj[pid][i];
            let e = eid as usize;
            self.resident_count[e] += 1;
            if self.resident_count[e] == self.entry_offsets[e + 1] - self.entry_offsets[e] {
                self.supported_pos[e] = self.supported.len() as u32;
                self.supported.push(eid);
            }
        }
    }

    /// Marks `file` evicted, the inverse of [`on_insert`](Self::on_insert).
    pub fn on_evict(&mut self, file: FileId) {
        let Some(&pid) = self.file_of.get(&file) else {
            return;
        };
        let pid = pid as usize;
        if !self.resident[pid] {
            return;
        }
        self.resident[pid] = false;
        for i in 0..self.adj[pid].len() {
            let eid = self.adj[pid][i];
            let e = eid as usize;
            if self.resident_count[e] == self.entry_offsets[e + 1] - self.entry_offsets[e] {
                let pos = self.supported_pos[e] as usize;
                self.supported.swap_remove(pos);
                if pos < self.supported.len() {
                    self.supported_pos[self.supported[pos] as usize] = pos as u32;
                }
                self.supported_pos[e] = NONE;
            }
            self.resident_count[e] -= 1;
        }
    }

    /// Rebuilds the mirror from a warm-start history (entries are replayed
    /// oldest-first so the recency list matches the history's `last_seen`
    /// order). The cache is empty at warm start, so residency starts false.
    pub fn populate(&mut self, history: &RequestHistory) {
        debug_assert!(self.is_empty(), "populate() expects a fresh mirror");
        let mut entries: Vec<&HistoryEntry> = history.entries().collect();
        entries.sort_unstable_by_key(|e| e.last_seen);
        for e in entries {
            self.on_record(e);
        }
    }

    /// Starts a new decision epoch, invalidating all stamps in O(1).
    fn begin_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // Stamp wrap (once per 2^32 decisions): reset all stamps so no
            // stale stamp can collide with the restarted epoch counter.
            self.file_stamp.iter_mut().for_each(|s| *s = 0);
            self.incoming_stamp.iter_mut().for_each(|s| *s = 0);
            self.bonus_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Assembles the decision's candidate list (into
    /// [`candidates`](Self::candidates)) for the given truncation mode —
    /// the "apply the pending delta" step of the decision path.
    ///
    /// Reproduces the rebuild path's candidate *set and order* exactly:
    /// most recent first, capped by `max_candidates` (and the window size).
    pub fn assemble_candidates(
        &mut self,
        mode: HistoryMode,
        max_candidates: Option<usize>,
        incoming: &Bundle,
    ) {
        self.begin_epoch();
        let epoch = self.epoch;
        self.candidates.clear();
        // Stamp the incoming bundle's interned files: the size-0 overlay of
        // `fill_instance` and the bonus pass below both key off this.
        for f in incoming.iter() {
            if let Some(&pid) = self.file_of.get(&f) {
                self.incoming_stamp[pid as usize] = epoch;
            }
        }
        match mode {
            HistoryMode::Full | HistoryMode::Window(_) => {
                let limit = match mode {
                    HistoryMode::Window(n) => n.min(max_candidates.unwrap_or(usize::MAX)),
                    _ => max_candidates.unwrap_or(usize::MAX),
                };
                let mut cur = self.head;
                while cur != NONE && self.candidates.len() < limit {
                    self.candidates.push(cur);
                    cur = self.next[cur as usize];
                }
            }
            HistoryMode::CacheSupported => {
                // Entries fully supported by the resident set alone...
                self.candidates.extend_from_slice(&self.supported);
                // ...plus entries completed by the incoming bundle's
                // non-resident files (whose space is reserved).
                let mut touched = std::mem::take(&mut self.touched);
                touched.clear();
                for f in incoming.iter() {
                    let Some(&pid) = self.file_of.get(&f) else {
                        continue;
                    };
                    if self.resident[pid as usize] {
                        continue;
                    }
                    for i in 0..self.adj[pid as usize].len() {
                        let eid = self.adj[pid as usize][i];
                        let e = eid as usize;
                        if self.bonus_stamp[e] != epoch {
                            self.bonus_stamp[e] = epoch;
                            self.bonus[e] = 0;
                            touched.push(eid);
                        }
                        self.bonus[e] += 1;
                    }
                }
                for &eid in &touched {
                    let e = eid as usize;
                    // `bonus > 0` implies `resident_count < len`, so these
                    // entries are disjoint from the supported set above.
                    if self.resident_count[e] + self.bonus[e] == self.entry_len(e) {
                        self.candidates.push(eid);
                    }
                }
                self.touched = touched;
                // Recency order; `last_seen` ticks are unique, so this is a
                // total order matching the rebuild path's sort.
                let last_seen = &self.last_seen;
                self.candidates
                    .sort_unstable_by_key(|&e| std::cmp::Reverse(last_seen[e as usize]));
                if let Some(cap) = max_candidates {
                    self.candidates.truncate(cap);
                }
            }
        }
    }

    /// The entry's value `v(r)` as of `now` — bit-identical to
    /// [`HistoryEntry::value_at`] on the mirrored state.
    #[inline]
    fn value_of(&self, eid: usize, now: u64, value_fn: ValueFn) -> f64 {
        let base = match value_fn {
            ValueFn::Count => self.count[eid] as f64,
            ValueFn::Decay { half_life } => {
                let dt = now.saturating_sub(self.value_tick[eid]) as f64;
                self.value_acc[eid] * 0.5_f64.powf(dt / half_life)
            }
        };
        base * self.priority[eid]
    }

    /// Fills the decision's dense instance buffers from the assembled
    /// candidates: local interning in first-touch order (candidates most
    /// recent first, files in canonical bundle order — the exact
    /// permutation the rebuild path produced, so every downstream float
    /// operation sums in the same order), sizes with the incoming bundle's
    /// files overlaid to 0, degrees from the dense mirror, and values
    /// recomputed from the mirrored accumulators.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_instance(
        &mut self,
        catalog: &FileCatalog,
        now: u64,
        value_fn: ValueFn,
        global_of: &mut Vec<FileId>,
        sizes: &mut Vec<Bytes>,
        degrees: &mut Vec<u32>,
        file_bufs: &mut Vec<Vec<u32>>,
        requests: &mut Vec<(Vec<u32>, f64)>,
    ) {
        let epoch = self.epoch;
        for c in 0..self.candidates.len() {
            let eid = self.candidates[c] as usize;
            let mut files = file_bufs.pop().unwrap_or_default();
            files.clear();
            let (start, end) = (
                self.entry_offsets[eid] as usize,
                self.entry_offsets[eid + 1] as usize,
            );
            for k in start..end {
                let pid = self.entry_files[k] as usize;
                let local = if self.file_stamp[pid] == epoch {
                    self.file_local[pid]
                } else {
                    let l = global_of.len() as u32;
                    self.file_stamp[pid] = epoch;
                    self.file_local[pid] = l;
                    global_of.push(self.file_ids[pid]);
                    sizes.push(if self.incoming_stamp[pid] == epoch {
                        0
                    } else {
                        catalog.size(self.file_ids[pid])
                    });
                    degrees.push(self.degrees[pid]);
                    l
                };
                files.push(local);
            }
            requests.push((files, self.value_of(eid, now, value_fn)));
        }
    }

    /// Exhaustive consistency check against the history and a residency
    /// oracle (tests only — O(|R| · b)).
    pub fn check_consistency<F: Fn(FileId) -> bool>(
        &self,
        history: &RequestHistory,
        resident: F,
    ) -> bool {
        if self.len() != history.len() {
            return false;
        }
        self.bundles.iter().enumerate().all(|(e, b)| {
            let Some(entry) = history.get(b) else {
                return false;
            };
            let rcount = b.iter().filter(|&f| resident(f)).count() as u32;
            let supported_ok = if rcount == b.len() as u32 {
                self.supported_pos[e] != NONE
                    && self.supported[self.supported_pos[e] as usize] == e as u32
            } else {
                self.supported_pos[e] == NONE
            };
            self.resident_count[e] == rcount
                && supported_ok
                && self.count[e] == entry.count
                && self.last_seen[e] == entry.last_seen
                && b.iter().all(|f| {
                    self.file_of
                        .get(&f)
                        .is_some_and(|&pid| self.degrees[pid as usize] == history.degree(f))
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    /// Drives a mirror + history pair through a random interleaving and
    /// checks full consistency after every step.
    #[test]
    fn mirror_stays_consistent_under_random_interleavings() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        let mut resident = std::collections::HashSet::new();
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            match next() % 4 {
                0 | 1 => {
                    let k = (next() % 3 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % 16) as u32).collect();
                    let bundle = Bundle::from_raw(files);
                    let entry = history.record(&bundle);
                    mirror.on_record(entry);
                }
                2 => {
                    let f = FileId((next() % 16) as u32);
                    resident.insert(f);
                    mirror.on_insert(f);
                }
                _ => {
                    let f = FileId((next() % 16) as u32);
                    resident.remove(&f);
                    mirror.on_evict(f);
                }
            }
            assert!(mirror.check_consistency(&history, |f| resident.contains(&f)));
        }
    }

    #[test]
    fn recency_list_matches_last_seen_order() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        for ids in [&[1u32, 2][..], &[3], &[4, 5], &[1, 2], &[3]] {
            let entry = history.record(&b(ids));
            mirror.on_record(entry);
        }
        mirror.assemble_candidates(HistoryMode::Full, None, &b(&[]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[3]), b(&[1, 2]), b(&[4, 5])]);
        // Window truncation takes a prefix of the same order.
        mirror.assemble_candidates(HistoryMode::Window(2), None, &b(&[]));
        assert_eq!(mirror.candidates().len(), 2);
    }

    #[test]
    fn populate_replays_history_in_recency_order() {
        let mut history = RequestHistory::new();
        for ids in [&[1u32][..], &[2], &[3], &[1]] {
            history.record(&b(ids));
        }
        let mut mirror = ResidentInstance::new();
        mirror.populate(&history);
        assert!(mirror.check_consistency(&history, |_| false));
        mirror.assemble_candidates(HistoryMode::Full, None, &b(&[]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[1]), b(&[3]), b(&[2])]);
    }

    #[test]
    fn cache_supported_uses_residency_plus_incoming_bonus() {
        let mut history = RequestHistory::new();
        let mut mirror = ResidentInstance::new();
        for ids in [&[0u32, 1][..], &[1, 2], &[7]] {
            let entry = history.record(&b(ids));
            mirror.on_record(entry);
        }
        mirror.on_insert(FileId(1));
        // {1} alone supports nothing.
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[9]));
        assert!(mirror.candidates().is_empty());
        // Incoming {0} completes {0,1}.
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[0]));
        let got: Vec<Bundle> = mirror
            .candidates()
            .iter()
            .map(|&e| mirror.bundle(e).clone())
            .collect();
        assert_eq!(got, vec![b(&[0, 1])]);
        // Fully resident entries appear without bonus help.
        mirror.on_insert(FileId(0));
        mirror.on_insert(FileId(2));
        mirror.assemble_candidates(HistoryMode::CacheSupported, None, &b(&[9]));
        assert_eq!(mirror.candidates().len(), 2);
    }
}

//! `OptCacheSelect` — the greedy heuristic at the heart of `OptFileBundle`
//! (paper §3, Algorithm 1).
//!
//! Given an FBC instance, the algorithm services requests in decreasing
//! order of adjusted relative value `v'(r)`, admitting each request whose
//! files still fit, and finally returns the better of the greedy set and the
//! single most valuable request (which is what makes the
//! `½(1 − e^{−1/d})` bound of Theorem 4.1 hold — see Appendix A).
//!
//! Three variants are provided:
//!
//! * [`GreedyVariant::PaperLiteral`] — Algorithm 1 exactly as printed: one
//!   sort, and each admitted request is charged the *full* size of its
//!   bundle even if some files were already loaded by an earlier selection.
//! * [`GreedyVariant::SortedOnce`] — one sort, but each request is charged
//!   only the *marginal* size of its not-yet-loaded files (the natural
//!   implementation of "load the files in `F(r_i)`").
//! * [`GreedyVariant::SharedCredit`] — the paper's "Note" refinement: after
//!   every selection the adjusted relative values are recomputed with the
//!   sizes of already-selected files set to zero, and the candidate list is
//!   effectively re-sorted. Never worse in solution quality on the
//!   workloads of §5.
//!
//! ## The incremental shared-credit kernel
//!
//! The naive recompute-and-resort loop costs `O(n² · b)` for `n` requests
//! of bundle size `b` — a full rescan of every candidate after every
//! selection. [`greedy_shared_credit`] instead runs an *incremental greedy*:
//! an inverted file→request adjacency built once per call (CSR layout), a
//! dense indexed 4-ary max-heap of `(v'(r), request index)` keys, and
//! localised marginal updates — when a selection loads file `f`, only the
//! ≤ `d(f)` requests containing `f` can change rank, so only they are
//! recomputed and repositioned. Because marginal adjusted sizes only shrink
//! as files load, priorities only *increase*, so a refreshed request merely
//! sifts up; feasibility (`marginal bytes ≤ remaining`) is checked at pop
//! time, and an infeasible pop *parks* the request (removes it) until an
//! adjacency refresh re-inserts it. The position map means the heap holds
//! at most one entry per request — no stale entries, no version stamps, and
//! the end-of-loop drain is `O(n)` pops instead of a churn of invalidated
//! copies. Each selection costs `O(b · d · log n)` instead of `O(n · b)`,
//! and the result is **bit-for-bit identical** to the reference loop: same
//! selections, same order, same tie-breaking by lower index.
//!
//! Two slower twins are retained for differential pinning: the previous
//! version-stamped `BinaryHeap` kernel, verbatim, as
//! [`greedy_shared_credit_lazy`] (also what the rebuild decision path of
//! `OptFileBundle` runs, so benchmarks measure a fully pre-PR pipeline),
//! and the naive rescan loop as [`greedy_shared_credit_reference`] — the
//! semantic anchor both kernels are pinned against by property tests.

use crate::instance::{FbcInstance, Selection};
use serde::{Deserialize, Serialize};
#[cfg(any(test, feature = "reference-kernels"))]
use std::collections::BinaryHeap;

/// Which flavour of the greedy loop to run. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GreedyVariant {
    /// Algorithm 1 verbatim (full-size charging, single sort).
    PaperLiteral,
    /// Single sort, marginal-size charging.
    SortedOnce,
    /// Recompute-and-resort after every selection (the paper's Note).
    #[default]
    SharedCredit,
}

/// Options for [`opt_cache_select`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectOptions {
    /// Greedy flavour.
    pub variant: GreedyVariant,
    /// Whether to apply Algorithm 1's Step 3 (return the single best request
    /// if it beats the greedy set). Disable only for ablation.
    pub max_single_fallback: bool,
}

impl Default for SelectOptions {
    fn default() -> Self {
        Self {
            variant: GreedyVariant::default(),
            max_single_fallback: true,
        }
    }
}

/// Runs `OptCacheSelect` on `inst` and returns the selected requests.
///
/// ```
/// use fbc_core::instance::FbcInstance;
/// use fbc_core::select::{opt_cache_select, SelectOptions};
///
/// // Two requests share file 0; capacity fits both bundles together.
/// let inst = FbcInstance::new(
///     30,
///     vec![10, 10, 10],
///     vec![(vec![0, 1], 2.0), (vec![0, 2], 2.0)],
/// ).unwrap();
/// let sel = opt_cache_select(&inst, &SelectOptions::default());
/// assert_eq!(sel.chosen.len(), 2);
/// assert_eq!(sel.bytes, 30); // union {0,1,2}, file 0 counted once
/// ```
pub fn opt_cache_select(inst: &FbcInstance, opts: &SelectOptions) -> Selection {
    let mut scratch = SelectScratch::default();
    opt_cache_select_with_scratch(inst, opts, &mut scratch)
}

/// [`opt_cache_select`] with caller-owned reusable buffers — the form the
/// `OptFileBundle` decision path uses so that per-request replacement
/// decisions stop allocating. Results are identical to the allocating form.
pub fn opt_cache_select_with_scratch(
    inst: &FbcInstance,
    opts: &SelectOptions,
    scratch: &mut SelectScratch,
) -> Selection {
    let greedy = match opts.variant {
        GreedyVariant::PaperLiteral => greedy_sorted(inst, false),
        GreedyVariant::SortedOnce => greedy_sorted(inst, true),
        GreedyVariant::SharedCredit => {
            greedy_shared_credit_with_scratch(inst, &[], inst.capacity(), scratch)
        }
    };
    if opts.max_single_fallback {
        max_of(greedy, best_single(inst))
    } else {
        greedy
    }
}

/// Step 3 of Algorithm 1: the single feasible request of highest value.
///
/// Request sizes are memoised by [`FbcInstance`] at construction, so the
/// scan is a flat pass over two arrays rather than `n` bundle summations.
pub fn best_single(inst: &FbcInstance) -> Selection {
    let mut best: Option<usize> = None;
    for i in 0..inst.num_requests() {
        if inst.request_size(i) <= inst.capacity() {
            match best {
                Some(b) if inst.requests()[b].value >= inst.requests()[i].value => {}
                _ => best = Some(i),
            }
        }
    }
    match best {
        Some(i) => Selection::from_chosen(inst, vec![i]),
        None => Selection::empty(),
    }
}

fn max_of(a: Selection, b: Selection) -> Selection {
    if b.value > a.value {
        b
    } else {
        a
    }
}

/// Requests ordered by decreasing adjusted relative value, ties broken by
/// lower index for determinism. Keys are computed once and sorted with the
/// values inline (`sort_unstable_by` over `(key, index)` pairs), avoiding
/// the indirect `rv[b]` lookups of a comparator closure. The comparator is
/// a total order (ties fall through to the index), so the unstable sort
/// yields exactly the order the previous stable sort did.
fn order_by_relative_value(inst: &FbcInstance) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = (0..inst.num_requests())
        .map(|i| (inst.relative_value(i), i))
        .collect();
    keyed.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Single-sort greedy. With `marginal = false` this is Algorithm 1 verbatim
/// (each request charged its full bundle size); with `marginal = true`
/// already-loaded files are free.
fn greedy_sorted(inst: &FbcInstance, marginal: bool) -> Selection {
    let order = order_by_relative_value(inst);
    let mut loaded = vec![false; inst.num_files()];
    let mut remaining = inst.capacity();
    let mut chosen = Vec::new();
    for i in order {
        let req = &inst.requests()[i];
        let charge: u64 = if marginal {
            req.files()
                .iter()
                .filter(|&&f| !loaded[f as usize])
                .map(|&f| inst.file_size(f))
                .sum()
        } else {
            inst.request_size(i)
        };
        if charge <= remaining {
            remaining -= charge;
            for &f in req.files() {
                loaded[f as usize] = true;
            }
            chosen.push(i);
        }
    }
    Selection::from_chosen(inst, chosen)
}

/// A fixed-capacity bitset over dense indices (files or requests of one
/// instance). `Vec<bool>` would work; one bit per entry keeps the whole
/// loaded/taken state of a multi-thousand-request decision in a few cache
/// lines.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Clears and resizes to hold `n` bits, all zero.
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }
}

/// Per-request hot state of the shared-credit kernels, packed into one
/// 24-byte record so a refresh touches a single cache line per request
/// (marginal, priority and value land together). Residency does not live
/// here: the [`BlockMax`] key itself encodes absence, selected requests
/// are tracked in the callers' `taken` sets, and refresh deduplication
/// stamps live in a dedicated dense epoch array — keeping the *filter*
/// path of the refresh loop (which rejects most adjacency entries) off
/// this comparatively large array.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReqState {
    /// Current marginal size in bytes under the loaded set.
    pub(crate) mb: u64,
    /// Current adjusted relative value — the source of truth for the
    /// argmax key.
    pub(crate) rv: f64,
    /// The request's value `v(r)` (cached here so the refresh does not
    /// gather it from the request table).
    pub(crate) value: f64,
}

/// Converts an `f64` key into a `u64` whose *unsigned* order is exactly
/// `f64::total_cmp`: negative values have all bits flipped, non-negative
/// values have the sign bit set. `0` is reserved as the **absent**
/// sentinel — it sorts below the image of every non-NaN value (only a
/// negative NaN could map at or below `ord_key(-inf)`, and kernel keys are
/// never NaN: values are finite and a non-positive denominator maps to
/// `+inf`).
#[inline]
pub(crate) fn ord_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Keys per block of the [`BlockMax`] index: one cache line of ordered
/// `u64` images per block, and for the kernel's instance sizes
/// (`n ~ 10^3..10^4`) a bound array of a few cache lines total.
const BLOCK: usize = 64;

/// A flat argmax index over the dense request indices `0..n`, replacing
/// the d-ary heap the kernel used previously. One `u64` per request holds
/// the [`ord_key`] image of its current `rv` — or `0` when the request is
/// *absent* (never inserted, popped, parked or taken) — plus one maximum
/// per [`BLOCK`]-sized block of requests.
///
/// The structure leans on the kernel's monotonicity invariant (asserted
/// in the refresh loops): a resident request's key only ever increases,
/// so an [`Self::update`] is two stores and a compare — write the key,
/// raise the block maximum — with no sift, no position map and no
/// per-request bookkeeping at all (insert, unpark and key-increase are
/// the same operation; the callers' `taken` sets keep selected requests
/// from re-entering). [`Self::pop`] removes a key and rescans just that
/// key's block, so block maxima are *exact* at all times: a pop is one
/// pass over the block maxima, one pass over the winning block and one
/// repair pass — three short, branch-light scans over contiguous `u64`s
/// (split into a pure-max pass and a find-index pass so they vectorise),
/// never a traversal of scattered heap lines.
///
/// [`Self::pop`] returns the reference loop's exact argmax — maximum
/// `total_cmp` key, ties to the lower index: the block scan takes the
/// *first* block attaining the maximum, the key scan takes the first
/// index attaining the block maximum, and the `u64` image order *is*
/// `total_cmp`. Unlike a heap there is no internal arrangement, so
/// determinism needs no argument about slot order.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockMax {
    /// `ord_key` image of each request's current `rv`; `0` = absent.
    key: Vec<u64>,
    /// Exact per-block maximum of `key`.
    bound: Vec<u64>,
}

impl BlockMax {
    /// Empties the index and sizes it for requests `0..n`, all absent.
    pub(crate) fn reset(&mut self, n: usize) {
        self.key.clear();
        self.key.resize(n, 0);
        self.bound.clear();
        self.bound.resize(n.div_ceil(BLOCK), 0);
    }

    /// (Re-)activates `i` at key `rv`: insertion, unpark and key-increase
    /// are all this one operation. The caller keeps taken requests out.
    #[inline]
    pub(crate) fn update(&mut self, i: u32, rv: f64) {
        debug_assert!(!rv.is_nan(), "kernel keys are never NaN");
        let i = i as usize;
        let k = ord_key(rv);
        debug_assert!(k >= self.key[i], "resident keys only increase");
        self.key[i] = k;
        let b = i / BLOCK;
        if k > self.bound[b] {
            self.bound[b] = k;
        }
    }

    /// Removes and returns the argmax index — maximum key, ties to the
    /// lower index — or `None` when every request is absent.
    pub(crate) fn pop(&mut self) -> Option<u32> {
        // Maximum over the (exact) block maxima; `0` means all absent.
        let mut bk = 0u64;
        for &v in &self.bound {
            if v > bk {
                bk = v;
            }
        }
        if bk == 0 {
            return None;
        }
        // First block attaining it — earlier blocks are strictly below.
        let bb = self.bound.iter().position(|&v| v == bk).expect("present");
        let start = bb * BLOCK;
        let end = (start + BLOCK).min(self.key.len());
        let block = &mut self.key[start..end];
        // First in-block index attaining it: the global argmax.
        let ti = block.iter().position(|&k| k == bk).expect("exact bound");
        block[ti] = 0;
        // Repair eagerly: keys only increase while resident, so this is
        // the only place a block maximum can fall, and rescanning here
        // keeps every bound exact (pops never need a retry loop).
        let mut nb = 0u64;
        for &k in block.iter() {
            if k > nb {
                nb = k;
            }
        }
        self.bound[bb] = nb;
        Some((start + ti) as u32)
    }
}

/// Reusable buffers of the incremental shared-credit kernel. One instance
/// per policy (or per thread) amortises every allocation of the decision
/// path: bitsets, marginal tables and the heap are all `reset`
/// (length-adjusted, not freed) between calls. The file→request adjacency
/// lives on the instance ([`FbcInstance::file_request_adjacency`]), not
/// here — it is selection-invariant.
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    /// Files already charged to the selection (local indices).
    loaded: BitSet,
    /// Requests already selected.
    taken: BitSet,
    /// Packed per-request hot state (marginal, priority, value). Entries
    /// are *not* cleared between calls — the kernel's init pass overwrites
    /// every record it will ever read (seeded requests in the seed loop,
    /// the rest in the priority loop), so the length-only reset below
    /// skips an O(n) memset per decision.
    req: Vec<ReqState>,
    /// Epoch stamps deduplicating refreshes within one selection step —
    /// dense and small so the refresh filter stays in close cache.
    touched: Vec<u32>,
    /// The block-bounded argmax index over request indices.
    heap: BlockMax,
    /// Files newly loaded by the current selection step.
    newly_loaded: Vec<u32>,
}

impl SelectScratch {
    /// Prepares the buffers for an instance with `n` requests, `m` files.
    fn reset(&mut self, n: usize, m: usize) {
        self.loaded.reset(m);
        self.taken.reset(n);
        self.req.resize(n, ReqState::default());
        self.touched.clear();
        self.touched.resize(n, 0);
        self.heap.reset(n);
        self.newly_loaded.clear();
    }
}

/// Marginal cost of request `i` under the current `loaded` set, computed
/// exactly as the reference loop does (same file order, same summation
/// order — float addition is not associative, and bit-for-bit equivalence
/// requires recomputing rather than incrementally adjusting the sums).
#[inline]
fn marginal_of(inst: &FbcInstance, i: usize, loaded: &BitSet) -> (u64, f64) {
    let mut marginal_bytes: u64 = 0;
    let mut marginal_adjusted = 0.0;
    for &f in inst.requests()[i].files() {
        if !loaded.get(f as usize) {
            marginal_bytes += inst.file_size(f);
            marginal_adjusted += inst.adjusted_size(f);
        }
    }
    (marginal_bytes, marginal_adjusted)
}

/// [`marginal_of`] over the instance's flat request CSR and fused
/// `(s(f), s'(f))` table — the same terms summed in the same (ascending
/// file) order, hence bit-identical, minus the dependent pointer chase
/// through each request's own `Vec` and the second gather per file.
#[inline]
fn marginal_flat(files: &[u32], table: &[(u64, f64)], loaded: &BitSet) -> (u64, f64) {
    let mut marginal_bytes: u64 = 0;
    let mut marginal_adjusted = 0.0;
    for &f in files {
        if !loaded.get(f as usize) {
            let (size, adjusted) = table[f as usize];
            marginal_bytes += size;
            marginal_adjusted += adjusted;
        }
    }
    (marginal_bytes, marginal_adjusted)
}

/// The reference's ranking key: `v(r)` over the marginal adjusted size,
/// `+∞` when every file is already loaded (or zero-sized) — free to take.
/// Shared with the resident-state decision kernel (`resident.rs`), which
/// must rank candidates with bit-identical keys.
#[inline]
pub(crate) fn rv_of(value: f64, marginal_adjusted: f64) -> f64 {
    if marginal_adjusted <= 0.0 {
        f64::INFINITY
    } else {
        value / marginal_adjusted
    }
}

/// The recompute-and-resort refinement (paper §3 "Note"), generalised to
/// start from a pre-selected seed (used by partial enumeration): `seed`
/// requests are taken as already chosen, their files pre-loaded, and
/// `capacity` is the space still available for *additional* files.
///
/// At every step the request maximising
/// `v(r) / Σ_{f ∈ F(r), f not loaded} s'(f)` among those whose marginal
/// size fits is selected; requests whose files are all loaded are free and
/// taken immediately. This is the incremental kernel described in the
/// module docs — bit-for-bit equivalent to
/// [`greedy_shared_credit_reference`] at `O(b · d · log n)` per selection
/// instead of `O(n · b)`.
pub fn greedy_shared_credit(inst: &FbcInstance, seed: &[usize], capacity: u64) -> Selection {
    let mut scratch = SelectScratch::default();
    greedy_shared_credit_with_scratch(inst, seed, capacity, &mut scratch)
}

/// [`greedy_shared_credit`] with caller-owned reusable buffers.
pub fn greedy_shared_credit_with_scratch(
    inst: &FbcInstance,
    seed: &[usize],
    capacity: u64,
    scratch: &mut SelectScratch,
) -> Selection {
    let n = inst.num_requests();
    let m = inst.num_files();
    scratch.reset(n, m);
    let SelectScratch {
        loaded,
        taken,
        req,
        touched,
        heap,
        newly_loaded,
    } = scratch;

    let mut chosen: Vec<usize> = seed.to_vec();
    for &i in seed {
        taken.set(i);
        req[i] = ReqState::default();
        for &f in inst.requests()[i].files() {
            loaded.set(f as usize);
        }
    }
    let mut remaining = capacity;

    // Inverted file→request adjacency, CSR layout — memoised on the
    // instance (a pure function of the immutable request structure), so
    // repeated selections over one instance skip the rebuild entirely.
    // Ditto the flat request→file CSR and the fused per-file size table,
    // which keep the hot refresh loop on contiguous memory.
    let (adj_offsets, adj_requests) = inst.file_request_adjacency();
    let (req_offsets, req_files) = inst.request_file_csr();
    let size_table = inst.file_size_adjusted_table();

    // Initial priorities for every unselected request. With no seed the
    // loaded set is empty, so each request's marginal is its full bundle —
    // both memoised by `FbcInstance` in the same ascending-local summation
    // order `marginal_of` uses, hence bit-identical and free of the O(n·b)
    // scan.
    // `min_positive_mb` is a monotone lower bound on the marginal size of
    // every unselected request whose marginal is positive: it is folded in
    // whenever a positive marginal is (re)computed and never raised, so it
    // can only under-estimate. `free_requests` exactly counts unselected
    // requests with a zero marginal (always heap-resident: a zero marginal
    // is always feasible, so they are never parked). Together they justify
    // the early exit in the main loop.
    let mut min_positive_mb: u64 = u64::MAX;
    let mut free_requests: usize = 0;
    if seed.is_empty() {
        for (i, slot) in req.iter_mut().enumerate().take(n) {
            let mb = inst.request_size(i);
            if mb == 0 {
                free_requests += 1;
            } else if mb < min_positive_mb {
                min_positive_mb = mb;
            }
            let value = inst.requests()[i].value;
            let rv = rv_of(value, inst.request_adjusted_size(i));
            *slot = ReqState { mb, rv, value };
            heap.update(i as u32, rv);
        }
    } else {
        for (i, slot) in req.iter_mut().enumerate().take(n) {
            if taken.get(i) {
                continue;
            }
            let (mb, ma) = marginal_of(inst, i, loaded);
            if mb == 0 {
                free_requests += 1;
            } else if mb < min_positive_mb {
                min_positive_mb = mb;
            }
            let value = inst.requests()[i].value;
            let rv = rv_of(value, ma);
            *slot = ReqState { mb, rv, value };
            heap.update(i as u32, rv);
        }
    }

    // Greedy main loop. Invariant: every unselected request is either in
    // the argmax index at its exact current rv, or was popped while infeasible
    // (parked) — and since `remaining` only shrinks and its marginal only
    // changes when one of its files loads (which re-inserts it below), a
    // parked request stays correctly excluded until then. A pop is
    // therefore always the reference loop's argmax.
    let mut epoch: u32 = 0;
    loop {
        // Early exit that skips the terminal drain: when no unselected
        // request is free and even the smallest positive marginal ever seen
        // exceeds `remaining`, nothing resident is feasible now — and since
        // marginals only change when a take loads files, none ever becomes
        // feasible. The reference loop would park every remaining entry one
        // by one; the selection is already complete. In practice this fires
        // just after the last take and cuts ~80% of all pops.
        if free_requests == 0 && remaining < min_positive_mb {
            break;
        }
        let Some(top) = heap.pop() else {
            break;
        };
        let i = top as usize;
        debug_assert!(!taken.get(i), "taken requests leave the index");
        if req[i].mb > remaining {
            continue; // parked: re-enters via adjacency refresh if ever viable
        }

        // Feasible at the top of the heap: the exact argmax.
        if req[i].mb == 0 {
            free_requests -= 1;
        }
        taken.set(i);
        chosen.push(i);
        newly_loaded.clear();
        for &f in &req_files[req_offsets[i] as usize..req_offsets[i + 1] as usize] {
            if !loaded.get(f as usize) {
                remaining -= size_table[f as usize].0;
                loaded.set(f as usize);
                newly_loaded.push(f);
            }
        }

        // Refresh exactly the requests whose marginal changed: those
        // adjacent to a freshly loaded file. All fresh loads are already in
        // `loaded`, so recomputed marginals are independent of refresh
        // order. Priorities only increase (terms leave the adjusted sum),
        // so a resident request sifts up in place; a parked one re-enters.
        epoch += 1;
        for &fl in newly_loaded.iter() {
            let f = fl as usize;
            let (start, end) = (adj_offsets[f] as usize, adj_offsets[f + 1] as usize);
            for &jr in &adj_requests[start..end] {
                let j = jr as usize;
                // Filter on the dense stamp array and the taken bitset —
                // both stay in close cache — so rejected entries (most of
                // them) never touch the record array.
                if touched[j] == epoch || taken.get(j) {
                    continue;
                }
                touched[j] = epoch;
                let files = &req_files[req_offsets[j] as usize..req_offsets[j + 1] as usize];
                let (mb, ma) = marginal_flat(files, size_table, loaded);
                if mb == 0 {
                    if req[j].mb != 0 {
                        free_requests += 1;
                    }
                } else if mb < min_positive_mb {
                    min_positive_mb = mb;
                }
                req[j].mb = mb;
                let rv = rv_of(req[j].value, ma);
                debug_assert!(
                    rv.total_cmp(&req[j].rv) != std::cmp::Ordering::Less,
                    "rv must be monotone under file loads"
                );
                req[j].rv = rv;
                heap.update(j as u32, rv);
            }
        }
    }
    Selection::from_chosen(inst, chosen)
}

/// One heap entry of the lazy twin kernel: the request's adjusted relative
/// value at the time of the push, and the per-request version stamp
/// identifying whether the entry is still current at pop time.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    rv: f64,
    idx: u32,
    version: u32,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl Eq for HeapEntry {}

#[cfg(any(test, feature = "reference-kernels"))]
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
impl Ord for HeapEntry {
    /// Max-heap order: higher `rv` first, ties to the *lower* request index
    /// — the reference loop's `rv > brv || (rv == brv && i < bi)` argmax.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rv
            .total_cmp(&other.rv)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Reusable buffers of [`greedy_shared_credit_lazy_with_scratch`] — the
/// previous generation's scratch, kept verbatim alongside its kernel.
#[cfg(any(test, feature = "reference-kernels"))]
#[derive(Debug, Clone, Default)]
pub struct LazySelectScratch {
    loaded: BitSet,
    taken: BitSet,
    /// Per-request version stamp; heap entries with an older stamp are
    /// stale and skipped at pop time.
    version: Vec<u32>,
    touched: Vec<u32>,
    marginal_bytes: Vec<u64>,
    adj_offsets: Vec<u32>,
    adj_cursor: Vec<u32>,
    adj_requests: Vec<u32>,
    /// The lazy max-heap: may hold several (stale) entries per request.
    heap: BinaryHeap<HeapEntry>,
    newly_loaded: Vec<u32>,
}

#[cfg(any(test, feature = "reference-kernels"))]
impl LazySelectScratch {
    fn reset(&mut self, n: usize, m: usize) {
        self.loaded.reset(m);
        self.taken.reset(n);
        self.version.clear();
        self.version.resize(n, 0);
        self.touched.clear();
        self.touched.resize(n, 0);
        self.marginal_bytes.clear();
        self.marginal_bytes.resize(n, 0);
        self.adj_offsets.clear();
        self.adj_offsets.resize(m + 1, 0);
        self.adj_cursor.clear();
        self.adj_cursor.resize(m, 0);
        self.adj_requests.clear();
        self.heap.clear();
        self.newly_loaded.clear();
    }
}

/// The previous incremental kernel — version-stamped `BinaryHeap` with lazy
/// invalidation — retained verbatim as a differential twin and as the
/// kernel of the rebuild/reference decision engine, so `perf_decision`'s
/// Full-mode speedup measures the whole new path against the whole old one.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn greedy_shared_credit_lazy(inst: &FbcInstance, seed: &[usize], capacity: u64) -> Selection {
    let mut scratch = LazySelectScratch::default();
    greedy_shared_credit_lazy_with_scratch(inst, seed, capacity, &mut scratch)
}

/// [`greedy_shared_credit_lazy`] with caller-owned reusable buffers.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn greedy_shared_credit_lazy_with_scratch(
    inst: &FbcInstance,
    seed: &[usize],
    capacity: u64,
    scratch: &mut LazySelectScratch,
) -> Selection {
    let n = inst.num_requests();
    let m = inst.num_files();
    scratch.reset(n, m);

    let mut chosen: Vec<usize> = seed.to_vec();
    for &i in seed {
        scratch.taken.set(i);
        for &f in inst.requests()[i].files() {
            scratch.loaded.set(f as usize);
        }
    }
    let mut remaining = capacity;

    // Inverted file→request adjacency, CSR layout, built in one counting
    // pass and one fill pass over the requests.
    for req in inst.requests() {
        for &f in req.files() {
            scratch.adj_offsets[f as usize + 1] += 1;
        }
    }
    for f in 0..m {
        scratch.adj_offsets[f + 1] += scratch.adj_offsets[f];
        scratch.adj_cursor[f] = scratch.adj_offsets[f];
    }
    scratch
        .adj_requests
        .resize(scratch.adj_offsets[m] as usize, 0);
    for (i, req) in inst.requests().iter().enumerate() {
        for &f in req.files() {
            let cur = &mut scratch.adj_cursor[f as usize];
            scratch.adj_requests[*cur as usize] = i as u32;
            *cur += 1;
        }
    }

    // Initial priorities for every unselected request.
    for i in 0..n {
        if scratch.taken.get(i) {
            continue;
        }
        let (mb, ma) = marginal_of(inst, i, &scratch.loaded);
        scratch.marginal_bytes[i] = mb;
        scratch.heap.push(HeapEntry {
            rv: rv_of(inst.requests()[i].value, ma),
            idx: i as u32,
            version: 0,
        });
    }

    // Lazy-greedy main loop. Invariant: every unselected request either has
    // a current-version entry in the heap carrying its exact rv, or was
    // popped while infeasible — and since `remaining` only shrinks and its
    // marginal only changes when one of its files loads (which re-pushes
    // it below), a parked request stays correctly excluded until then.
    let mut epoch: u32 = 0;
    while let Some(entry) = scratch.heap.pop() {
        let i = entry.idx as usize;
        if scratch.taken.get(i) || entry.version != scratch.version[i] {
            continue; // stale: a fresher entry is (or was) in the heap
        }
        if scratch.marginal_bytes[i] > remaining {
            continue; // parked: re-enters via adjacency refresh if ever viable
        }

        // Current and feasible at the top of the heap: the exact argmax.
        scratch.taken.set(i);
        chosen.push(i);
        scratch.newly_loaded.clear();
        for &f in inst.requests()[i].files() {
            if !scratch.loaded.get(f as usize) {
                remaining -= inst.file_size(f);
                scratch.loaded.set(f as usize);
                scratch.newly_loaded.push(f);
            }
        }

        // Refresh exactly the requests whose marginal changed: those
        // adjacent to a freshly loaded file. Priorities only increase, so
        // re-pushing with a bumped version preserves heap correctness.
        epoch += 1;
        for li in 0..scratch.newly_loaded.len() {
            let f = scratch.newly_loaded[li] as usize;
            let (start, end) = (
                scratch.adj_offsets[f] as usize,
                scratch.adj_offsets[f + 1] as usize,
            );
            for ai in start..end {
                let j = scratch.adj_requests[ai] as usize;
                if scratch.taken.get(j) || scratch.touched[j] == epoch {
                    continue;
                }
                scratch.touched[j] = epoch;
                let (mb, ma) = marginal_of(inst, j, &scratch.loaded);
                scratch.marginal_bytes[j] = mb;
                scratch.version[j] += 1;
                scratch.heap.push(HeapEntry {
                    rv: rv_of(inst.requests()[j].value, ma),
                    idx: j as u32,
                    version: scratch.version[j],
                });
            }
        }
    }
    Selection::from_chosen(inst, chosen)
}

/// [`opt_cache_select_with_scratch`] composed over the lazy twin kernel —
/// the complete previous-generation selection path, used by the
/// rebuild/reference decision engine of `OptFileBundle`.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn opt_cache_select_lazy_with_scratch(
    inst: &FbcInstance,
    opts: &SelectOptions,
    scratch: &mut LazySelectScratch,
) -> Selection {
    let greedy = match opts.variant {
        GreedyVariant::PaperLiteral => greedy_sorted(inst, false),
        GreedyVariant::SortedOnce => greedy_sorted(inst, true),
        GreedyVariant::SharedCredit => {
            greedy_shared_credit_lazy_with_scratch(inst, &[], inst.capacity(), scratch)
        }
    };
    if opts.max_single_fallback {
        max_of(greedy, best_single(inst))
    } else {
        greedy
    }
}

/// The pre-incremental recompute-and-resort loop, kept verbatim as the
/// behavioural reference for the kernel: a full `O(n · b)` rescan of every
/// candidate per selection. Compiled for tests and, under the
/// `reference-kernels` feature, for benchmarks (`perf_decision` measures
/// the kernel's speedup against it). Differential property tests assert
/// the two agree bit for bit on `chosen`, `files`, `bytes` and `value`.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn greedy_shared_credit_reference(
    inst: &FbcInstance,
    seed: &[usize],
    capacity: u64,
) -> Selection {
    let n = inst.num_requests();
    let mut loaded = vec![false; inst.num_files()];
    let mut taken = vec![false; n];
    let mut chosen: Vec<usize> = seed.to_vec();
    for &i in seed {
        taken[i] = true;
        for &f in inst.requests()[i].files() {
            loaded[f as usize] = true;
        }
    }
    let mut remaining = capacity;

    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, req) in inst.requests().iter().enumerate() {
            if taken[i] {
                continue;
            }
            let mut marginal_bytes: u64 = 0;
            let mut marginal_adjusted = 0.0;
            for &f in req.files() {
                if !loaded[f as usize] {
                    marginal_bytes += inst.file_size(f);
                    marginal_adjusted += inst.adjusted_size(f);
                }
            }
            if marginal_bytes > remaining {
                continue;
            }
            let rv = if marginal_adjusted <= 0.0 {
                // All files already loaded (or zero-sized): free to take.
                f64::INFINITY
            } else {
                req.value / marginal_adjusted
            };
            let better = match best {
                None => true,
                Some((bi, brv)) => rv > brv || (rv == brv && i < bi),
            };
            if better {
                best = Some((i, rv));
            }
        }
        match best {
            None => break,
            Some((i, _)) => {
                taken[i] = true;
                for &f in inst.requests()[i].files() {
                    if !loaded[f as usize] {
                        remaining -= inst.file_size(f);
                        loaded[f as usize] = true;
                    }
                }
                chosen.push(i);
            }
        }
    }
    Selection::from_chosen(inst, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn opts(variant: GreedyVariant) -> SelectOptions {
        SelectOptions {
            variant,
            max_single_fallback: true,
        }
    }

    /// The paper's worked example (Fig. 3): unit-size files, cache of 3.
    /// Popularity-based caching keeps {f5,f6,f7} (1 request-hit); the
    /// bundle-aware optimum keeps {f1,f3,f5} (3 request-hits).
    fn paper_example() -> FbcInstance {
        // Local file indices 0..=6 map to f1..=f7.
        // Local file indices 0..=6 map to f1..=f7; the request sets are the
        // assignment consistent with the paper's Tables 1 and 2.
        FbcInstance::new(
            3,
            vec![1; 7],
            vec![
                (vec![0, 2, 4], 1.0), // r1 = {f1,f3,f5}
                (vec![1, 5, 6], 1.0), // r2 = {f2,f6,f7}
                (vec![0, 4], 1.0),    // r3 = {f1,f5}
                (vec![3, 5, 6], 1.0), // r4 = {f4,f6,f7}
                (vec![2, 4], 1.0),    // r5 = {f3,f5}
                (vec![4, 5, 6], 1.0), // r6 = {f5,f6,f7}
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_selects_three_requests() {
        let inst = paper_example();
        // Marginal-charging variants find the optimum the paper describes:
        // requests r1, r3, r5 supported by cache content {f1,f3,f5}.
        for variant in [GreedyVariant::SortedOnce, GreedyVariant::SharedCredit] {
            let sel = opt_cache_select(&inst, &opts(variant));
            assert_eq!(sel.value, 3.0, "variant {variant:?}");
            assert_eq!(sel.files, vec![0, 2, 4], "variant {variant:?}");
            assert_eq!(sel.bytes, 3);
        }
        // Algorithm 1 verbatim charges each admitted request its *full*
        // bundle size, so after admitting r1 (2 of 3 units) nothing else
        // "fits" — it returns a single request. This is exactly why the
        // paper's Note recommends recomputation; the ablation bench
        // (`ablation_recompute`) quantifies the gap.
        let literal = opt_cache_select(&inst, &opts(GreedyVariant::PaperLiteral));
        assert_eq!(literal.value, 1.0);
    }

    #[test]
    fn shared_credit_exploits_overlap_where_literal_cannot() {
        // capacity 6, files of size 2 each; r0={0,1} v=10, r1={1,2} v=9.
        let inst = FbcInstance::new(
            6,
            vec![2, 2, 2],
            vec![(vec![0, 1], 10.0), (vec![1, 2], 9.0)],
        )
        .unwrap();
        let literal = opt_cache_select(&inst, &opts(GreedyVariant::PaperLiteral));
        let credit = opt_cache_select(&inst, &opts(GreedyVariant::SharedCredit));
        // Literal: r0 charged 4, then r1 charged its *full* 4 bytes > 2
        // remaining even though the shared file f1 is already loaded.
        assert_eq!(literal.value, 10.0);
        // Marginal charging sees r1's true cost (2 bytes for f2) and fits
        // both requests in the union {f0,f1,f2} of 6 bytes.
        assert_eq!(credit.value, 19.0);
        assert_eq!(credit.bytes, 6);
    }

    #[test]
    fn max_single_fallback_rescues_big_valuable_request() {
        // Many tiny low-value requests vs one huge high-value one.
        // v'(tiny) = 1/1 = 1.0 each; v'(big) = 50/100 = 0.5, so the greedy
        // fills the cache with tiny requests first; capacity 100 admits the
        // tiny ones (total value 3) and then cannot fit the big one.
        let inst = FbcInstance::new(
            100,
            vec![1, 1, 1, 100],
            vec![
                (vec![0], 1.0),
                (vec![1], 1.0),
                (vec![2], 1.0),
                (vec![3], 50.0),
            ],
        )
        .unwrap();
        let with = opt_cache_select(&inst, &opts(GreedyVariant::SharedCredit));
        assert_eq!(with.value, 50.0);
        assert_eq!(with.chosen, vec![3]);
        let without = opt_cache_select(
            &inst,
            &SelectOptions {
                variant: GreedyVariant::SharedCredit,
                max_single_fallback: false,
            },
        );
        assert_eq!(without.value, 3.0);
    }

    #[test]
    fn infeasible_requests_are_never_selected() {
        let inst =
            FbcInstance::new(5, vec![10, 1], vec![(vec![0], 100.0), (vec![1], 1.0)]).unwrap();
        for variant in [
            GreedyVariant::PaperLiteral,
            GreedyVariant::SortedOnce,
            GreedyVariant::SharedCredit,
        ] {
            let sel = opt_cache_select(&inst, &opts(variant));
            assert_eq!(sel.chosen, vec![1], "variant {variant:?}");
            assert!(sel.bytes <= inst.capacity());
        }
    }

    #[test]
    fn empty_instance_yields_empty_selection() {
        let inst = FbcInstance::new(10, vec![], vec![]).unwrap();
        let sel = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(sel, Selection::empty());
    }

    #[test]
    fn zero_capacity_selects_only_free_requests() {
        let inst = FbcInstance::new(0, vec![5, 0], vec![(vec![0], 9.0), (vec![1], 1.0)]).unwrap();
        let sel = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(sel.chosen, vec![1]);
        assert_eq!(sel.bytes, 0);
    }

    #[test]
    fn selection_is_always_feasible() {
        // Deterministic pseudo-random smoke check across variants.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let m = (next() % 10 + 2) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 50 + 1).collect();
            let n = (next() % 12 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 4 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % m as u64) as u32).collect();
                    (files, (next() % 100) as f64)
                })
                .collect();
            let cap = next() % 120;
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            for variant in [
                GreedyVariant::PaperLiteral,
                GreedyVariant::SortedOnce,
                GreedyVariant::SharedCredit,
            ] {
                let sel = opt_cache_select(&inst, &opts(variant));
                assert!(sel.bytes <= cap, "variant {variant:?} overflowed");
                assert!(inst.is_feasible(&sel.chosen));
            }
        }
    }

    #[test]
    fn seeded_shared_credit_respects_seed() {
        let inst = FbcInstance::new(
            10,
            vec![5, 5, 5],
            vec![(vec![0], 1.0), (vec![1], 100.0), (vec![2], 50.0)],
        )
        .unwrap();
        // Seed with request 0 (files {0}); 5 bytes remain for others.
        let sel = greedy_shared_credit(&inst, &[0], 5);
        assert!(sel.chosen.contains(&0));
        assert!(sel.chosen.contains(&1)); // highest value fits the remainder
        assert_eq!(sel.chosen.len(), 2);
    }

    /// Kernel ≡ reference on a hand-picked instance exercising parked
    /// (infeasible-now, feasible-later) requests: r2 does not fit until r0
    /// loads the shared file 0, shrinking r2's marginal below `remaining`.
    #[test]
    fn kernel_unparks_requests_when_shared_files_load() {
        let inst = FbcInstance::new(
            10,
            vec![6, 4, 5],
            vec![
                (vec![0, 1], 10.0), // loads {0,1}, remaining 0
                (vec![0, 2], 9.0),  // infeasible until f0 loads — then still 5 > 0
                (vec![0], 1.0),     // free once f0 is loaded
            ],
        )
        .unwrap();
        let a = greedy_shared_credit(&inst, &[], inst.capacity());
        let b = greedy_shared_credit_reference(&inst, &[], inst.capacity());
        assert_eq!(a, b);
        assert_eq!(a.chosen, vec![0, 2]); // r2 taken free after r0
    }

    /// Exhaustive differential sweep with a deterministic generator,
    /// covering seeds (partial enumeration's entry point) as well.
    #[test]
    fn kernel_matches_reference_on_random_instances_with_seeds() {
        let mut state = 0xC0FFEE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = SelectScratch::default();
        let mut lazy_scratch = LazySelectScratch::default();
        for round in 0..200 {
            let m = (next() % 12 + 1) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 30).collect();
            let n = (next() % 15 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 5 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % m as u64) as u32).collect();
                    (files, (next() % 40) as f64)
                })
                .collect();
            let cap = next() % 200;
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            let seed: Vec<usize> = if next() % 3 == 0 {
                vec![(next() % n as u64) as usize]
            } else {
                vec![]
            };
            // Seeded calls mirror partial enumeration: capacity is what's
            // left after the seed's own files.
            let seed_bytes = inst.union_size(&seed);
            if seed_bytes > cap {
                continue;
            }
            let capacity = cap - seed_bytes;
            let fast = greedy_shared_credit_with_scratch(&inst, &seed, capacity, &mut scratch);
            let lazy =
                greedy_shared_credit_lazy_with_scratch(&inst, &seed, capacity, &mut lazy_scratch);
            let slow = greedy_shared_credit_reference(&inst, &seed, capacity);
            assert_eq!(fast.chosen, slow.chosen, "round {round}");
            assert_eq!(fast.files, slow.files, "round {round}");
            assert_eq!(fast.bytes, slow.bytes, "round {round}");
            assert_eq!(
                fast.value.to_bits(),
                slow.value.to_bits(),
                "round {round}: value not bit-identical"
            );
            assert_eq!(lazy, slow, "round {round}: lazy twin diverged");
            assert_eq!(
                lazy.value.to_bits(),
                slow.value.to_bits(),
                "round {round}: lazy value not bit-identical"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Differential property test: the incremental kernel is
        /// bit-for-bit equivalent to the reference loop on arbitrary
        /// instances — same chosen order, file union, bytes, and value.
        #[test]
        fn prop_shared_credit_kernel_equals_reference(
            sizes in proptest::collection::vec(0u64..60, 1..14),
            raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..64, 1..6), 0u64..50),
                1..20,
            ),
            cap in 0u64..300,
        ) {
            let m = sizes.len();
            let reqs: Vec<(Vec<u32>, f64)> = raw
                .into_iter()
                .map(|(files, v)| {
                    (files.into_iter().map(|f| (f % m) as u32).collect(), v as f64)
                })
                .collect();
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            let fast = greedy_shared_credit(&inst, &[], inst.capacity());
            let lazy = greedy_shared_credit_lazy(&inst, &[], inst.capacity());
            let slow = greedy_shared_credit_reference(&inst, &[], inst.capacity());
            prop_assert_eq!(&fast.chosen, &slow.chosen);
            prop_assert_eq!(&fast.files, &slow.files);
            prop_assert_eq!(fast.bytes, slow.bytes);
            prop_assert_eq!(fast.value.to_bits(), slow.value.to_bits());
            prop_assert_eq!(&lazy, &slow);
            prop_assert_eq!(lazy.value.to_bits(), slow.value.to_bits());
        }

        /// All three variants through the public entry point agree with a
        /// reference-kernel composition of the same options, and scratch
        /// reuse across calls never leaks state between decisions.
        #[test]
        fn prop_opt_cache_select_with_scratch_is_pure(
            sizes in proptest::collection::vec(1u64..40, 1..10),
            raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..32, 1..5), 0u64..30),
                1..12,
            ),
            cap in 0u64..150,
        ) {
            let m = sizes.len();
            let reqs: Vec<(Vec<u32>, f64)> = raw
                .into_iter()
                .map(|(files, v)| {
                    (files.into_iter().map(|f| (f % m) as u32).collect(), v as f64)
                })
                .collect();
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            let mut scratch = SelectScratch::default();
            for variant in [
                GreedyVariant::PaperLiteral,
                GreedyVariant::SortedOnce,
                GreedyVariant::SharedCredit,
            ] {
                let o = opts(variant);
                let fresh = opt_cache_select(&inst, &o);
                // Run twice through the same scratch: both must equal the
                // fresh-allocation result exactly.
                let first = opt_cache_select_with_scratch(&inst, &o, &mut scratch);
                let second = opt_cache_select_with_scratch(&inst, &o, &mut scratch);
                prop_assert_eq!(&first, &fresh);
                prop_assert_eq!(&second, &fresh);
                if variant == GreedyVariant::SharedCredit {
                    let reference = {
                        let g = greedy_shared_credit_reference(&inst, &[], inst.capacity());
                        if o.max_single_fallback { max_of(g, best_single(&inst)) } else { g }
                    };
                    prop_assert_eq!(&first, &reference);
                    let mut lazy_scratch = LazySelectScratch::default();
                    let lazy = opt_cache_select_lazy_with_scratch(&inst, &o, &mut lazy_scratch);
                    prop_assert_eq!(&lazy, &reference);
                }
            }
        }
    }
}

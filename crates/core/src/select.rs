//! `OptCacheSelect` — the greedy heuristic at the heart of `OptFileBundle`
//! (paper §3, Algorithm 1).
//!
//! Given an FBC instance, the algorithm services requests in decreasing
//! order of adjusted relative value `v'(r)`, admitting each request whose
//! files still fit, and finally returns the better of the greedy set and the
//! single most valuable request (which is what makes the
//! `½(1 − e^{−1/d})` bound of Theorem 4.1 hold — see Appendix A).
//!
//! Three variants are provided:
//!
//! * [`GreedyVariant::PaperLiteral`] — Algorithm 1 exactly as printed: one
//!   sort, and each admitted request is charged the *full* size of its
//!   bundle even if some files were already loaded by an earlier selection.
//! * [`GreedyVariant::SortedOnce`] — one sort, but each request is charged
//!   only the *marginal* size of its not-yet-loaded files (the natural
//!   implementation of "load the files in `F(r_i)`").
//! * [`GreedyVariant::SharedCredit`] — the paper's "Note" refinement: after
//!   every selection the adjusted relative values are recomputed with the
//!   sizes of already-selected files set to zero, and the candidate list is
//!   effectively re-sorted. Costlier (`O(n² · b)` for `n` requests of
//!   bundle size `b`) but never worse in solution quality on the workloads
//!   of §5.

use crate::instance::{FbcInstance, Selection};
use serde::{Deserialize, Serialize};

/// Which flavour of the greedy loop to run. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GreedyVariant {
    /// Algorithm 1 verbatim (full-size charging, single sort).
    PaperLiteral,
    /// Single sort, marginal-size charging.
    SortedOnce,
    /// Recompute-and-resort after every selection (the paper's Note).
    #[default]
    SharedCredit,
}

/// Options for [`opt_cache_select`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectOptions {
    /// Greedy flavour.
    pub variant: GreedyVariant,
    /// Whether to apply Algorithm 1's Step 3 (return the single best request
    /// if it beats the greedy set). Disable only for ablation.
    pub max_single_fallback: bool,
}

impl Default for SelectOptions {
    fn default() -> Self {
        Self {
            variant: GreedyVariant::default(),
            max_single_fallback: true,
        }
    }
}

/// Runs `OptCacheSelect` on `inst` and returns the selected requests.
///
/// ```
/// use fbc_core::instance::FbcInstance;
/// use fbc_core::select::{opt_cache_select, SelectOptions};
///
/// // Two requests share file 0; capacity fits both bundles together.
/// let inst = FbcInstance::new(
///     30,
///     vec![10, 10, 10],
///     vec![(vec![0, 1], 2.0), (vec![0, 2], 2.0)],
/// ).unwrap();
/// let sel = opt_cache_select(&inst, &SelectOptions::default());
/// assert_eq!(sel.chosen.len(), 2);
/// assert_eq!(sel.bytes, 30); // union {0,1,2}, file 0 counted once
/// ```
pub fn opt_cache_select(inst: &FbcInstance, opts: &SelectOptions) -> Selection {
    let greedy = match opts.variant {
        GreedyVariant::PaperLiteral => greedy_sorted(inst, false),
        GreedyVariant::SortedOnce => greedy_sorted(inst, true),
        GreedyVariant::SharedCredit => greedy_shared_credit(inst, &[], inst.capacity()),
    };
    if opts.max_single_fallback {
        max_of(greedy, best_single(inst))
    } else {
        greedy
    }
}

/// Step 3 of Algorithm 1: the single feasible request of highest value.
pub fn best_single(inst: &FbcInstance) -> Selection {
    let mut best: Option<usize> = None;
    for i in 0..inst.num_requests() {
        if inst.request_size(i) <= inst.capacity() {
            match best {
                Some(b) if inst.requests()[b].value >= inst.requests()[i].value => {}
                _ => best = Some(i),
            }
        }
    }
    match best {
        Some(i) => Selection::from_chosen(inst, vec![i]),
        None => Selection::empty(),
    }
}

fn max_of(a: Selection, b: Selection) -> Selection {
    if b.value > a.value {
        b
    } else {
        a
    }
}

/// Requests ordered by decreasing adjusted relative value, ties broken by
/// lower index for determinism.
fn order_by_relative_value(inst: &FbcInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..inst.num_requests()).collect();
    let rv: Vec<f64> = order.iter().map(|&i| inst.relative_value(i)).collect();
    order.sort_by(|&a, &b| {
        rv[b]
            .partial_cmp(&rv[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Single-sort greedy. With `marginal = false` this is Algorithm 1 verbatim
/// (each request charged its full bundle size); with `marginal = true`
/// already-loaded files are free.
fn greedy_sorted(inst: &FbcInstance, marginal: bool) -> Selection {
    let order = order_by_relative_value(inst);
    let mut loaded = vec![false; inst.num_files()];
    let mut remaining = inst.capacity();
    let mut chosen = Vec::new();
    for i in order {
        let req = &inst.requests()[i];
        let charge: u64 = if marginal {
            req.files()
                .iter()
                .filter(|&&f| !loaded[f as usize])
                .map(|&f| inst.file_size(f))
                .sum()
        } else {
            inst.request_size(i)
        };
        if charge <= remaining {
            remaining -= charge;
            for &f in req.files() {
                loaded[f as usize] = true;
            }
            chosen.push(i);
        }
    }
    Selection::from_chosen(inst, chosen)
}

/// The recompute-and-resort refinement (paper §3 "Note"), generalised to
/// start from a pre-selected seed (used by partial enumeration): `seed`
/// requests are taken as already chosen, their files pre-loaded, and
/// `capacity` is the space still available for *additional* files.
///
/// At every step the request maximising
/// `v(r) / Σ_{f ∈ F(r), f not loaded} s'(f)` among those whose marginal
/// size fits is selected; requests whose files are all loaded are free and
/// taken immediately.
pub fn greedy_shared_credit(inst: &FbcInstance, seed: &[usize], capacity: u64) -> Selection {
    let n = inst.num_requests();
    let mut loaded = vec![false; inst.num_files()];
    let mut taken = vec![false; n];
    let mut chosen: Vec<usize> = seed.to_vec();
    for &i in seed {
        taken[i] = true;
        for &f in inst.requests()[i].files() {
            loaded[f as usize] = true;
        }
    }
    let mut remaining = capacity;

    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, req) in inst.requests().iter().enumerate() {
            if taken[i] {
                continue;
            }
            let mut marginal_bytes: u64 = 0;
            let mut marginal_adjusted = 0.0;
            for &f in req.files() {
                if !loaded[f as usize] {
                    marginal_bytes += inst.file_size(f);
                    marginal_adjusted += inst.adjusted_size(f);
                }
            }
            if marginal_bytes > remaining {
                continue;
            }
            let rv = if marginal_adjusted <= 0.0 {
                // All files already loaded (or zero-sized): free to take.
                f64::INFINITY
            } else {
                req.value / marginal_adjusted
            };
            let better = match best {
                None => true,
                Some((bi, brv)) => rv > brv || (rv == brv && i < bi),
            };
            if better {
                best = Some((i, rv));
            }
        }
        match best {
            None => break,
            Some((i, _)) => {
                taken[i] = true;
                for &f in inst.requests()[i].files() {
                    if !loaded[f as usize] {
                        remaining -= inst.file_size(f);
                        loaded[f as usize] = true;
                    }
                }
                chosen.push(i);
            }
        }
    }
    Selection::from_chosen(inst, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(variant: GreedyVariant) -> SelectOptions {
        SelectOptions {
            variant,
            max_single_fallback: true,
        }
    }

    /// The paper's worked example (Fig. 3): unit-size files, cache of 3.
    /// Popularity-based caching keeps {f5,f6,f7} (1 request-hit); the
    /// bundle-aware optimum keeps {f1,f3,f5} (3 request-hits).
    fn paper_example() -> FbcInstance {
        // Local file indices 0..=6 map to f1..=f7.
        // Local file indices 0..=6 map to f1..=f7; the request sets are the
        // assignment consistent with the paper's Tables 1 and 2.
        FbcInstance::new(
            3,
            vec![1; 7],
            vec![
                (vec![0, 2, 4], 1.0), // r1 = {f1,f3,f5}
                (vec![1, 5, 6], 1.0), // r2 = {f2,f6,f7}
                (vec![0, 4], 1.0),    // r3 = {f1,f5}
                (vec![3, 5, 6], 1.0), // r4 = {f4,f6,f7}
                (vec![2, 4], 1.0),    // r5 = {f3,f5}
                (vec![4, 5, 6], 1.0), // r6 = {f5,f6,f7}
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_selects_three_requests() {
        let inst = paper_example();
        // Marginal-charging variants find the optimum the paper describes:
        // requests r1, r3, r5 supported by cache content {f1,f3,f5}.
        for variant in [GreedyVariant::SortedOnce, GreedyVariant::SharedCredit] {
            let sel = opt_cache_select(&inst, &opts(variant));
            assert_eq!(sel.value, 3.0, "variant {variant:?}");
            assert_eq!(sel.files, vec![0, 2, 4], "variant {variant:?}");
            assert_eq!(sel.bytes, 3);
        }
        // Algorithm 1 verbatim charges each admitted request its *full*
        // bundle size, so after admitting r1 (2 of 3 units) nothing else
        // "fits" — it returns a single request. This is exactly why the
        // paper's Note recommends recomputation; the ablation bench
        // (`ablation_recompute`) quantifies the gap.
        let literal = opt_cache_select(&inst, &opts(GreedyVariant::PaperLiteral));
        assert_eq!(literal.value, 1.0);
    }

    #[test]
    fn shared_credit_exploits_overlap_where_literal_cannot() {
        // capacity 6, files of size 2 each; r0={0,1} v=10, r1={1,2} v=9.
        let inst = FbcInstance::new(
            6,
            vec![2, 2, 2],
            vec![(vec![0, 1], 10.0), (vec![1, 2], 9.0)],
        )
        .unwrap();
        let literal = opt_cache_select(&inst, &opts(GreedyVariant::PaperLiteral));
        let credit = opt_cache_select(&inst, &opts(GreedyVariant::SharedCredit));
        // Literal: r0 charged 4, then r1 charged its *full* 4 bytes > 2
        // remaining even though the shared file f1 is already loaded.
        assert_eq!(literal.value, 10.0);
        // Marginal charging sees r1's true cost (2 bytes for f2) and fits
        // both requests in the union {f0,f1,f2} of 6 bytes.
        assert_eq!(credit.value, 19.0);
        assert_eq!(credit.bytes, 6);
    }

    #[test]
    fn max_single_fallback_rescues_big_valuable_request() {
        // Many tiny low-value requests vs one huge high-value one.
        // v'(tiny) = 1/1 = 1.0 each; v'(big) = 50/100 = 0.5, so the greedy
        // fills the cache with tiny requests first; capacity 100 admits the
        // tiny ones (total value 3) and then cannot fit the big one.
        let inst = FbcInstance::new(
            100,
            vec![1, 1, 1, 100],
            vec![
                (vec![0], 1.0),
                (vec![1], 1.0),
                (vec![2], 1.0),
                (vec![3], 50.0),
            ],
        )
        .unwrap();
        let with = opt_cache_select(&inst, &opts(GreedyVariant::SharedCredit));
        assert_eq!(with.value, 50.0);
        assert_eq!(with.chosen, vec![3]);
        let without = opt_cache_select(
            &inst,
            &SelectOptions {
                variant: GreedyVariant::SharedCredit,
                max_single_fallback: false,
            },
        );
        assert_eq!(without.value, 3.0);
    }

    #[test]
    fn infeasible_requests_are_never_selected() {
        let inst =
            FbcInstance::new(5, vec![10, 1], vec![(vec![0], 100.0), (vec![1], 1.0)]).unwrap();
        for variant in [
            GreedyVariant::PaperLiteral,
            GreedyVariant::SortedOnce,
            GreedyVariant::SharedCredit,
        ] {
            let sel = opt_cache_select(&inst, &opts(variant));
            assert_eq!(sel.chosen, vec![1], "variant {variant:?}");
            assert!(sel.bytes <= inst.capacity());
        }
    }

    #[test]
    fn empty_instance_yields_empty_selection() {
        let inst = FbcInstance::new(10, vec![], vec![]).unwrap();
        let sel = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(sel, Selection::empty());
    }

    #[test]
    fn zero_capacity_selects_only_free_requests() {
        let inst = FbcInstance::new(0, vec![5, 0], vec![(vec![0], 9.0), (vec![1], 1.0)]).unwrap();
        let sel = opt_cache_select(&inst, &SelectOptions::default());
        assert_eq!(sel.chosen, vec![1]);
        assert_eq!(sel.bytes, 0);
    }

    #[test]
    fn selection_is_always_feasible() {
        // Deterministic pseudo-random smoke check across variants.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let m = (next() % 10 + 2) as usize;
            let sizes: Vec<u64> = (0..m).map(|_| next() % 50 + 1).collect();
            let n = (next() % 12 + 1) as usize;
            let reqs: Vec<(Vec<u32>, f64)> = (0..n)
                .map(|_| {
                    let k = (next() % 4 + 1) as usize;
                    let files: Vec<u32> = (0..k).map(|_| (next() % m as u64) as u32).collect();
                    (files, (next() % 100) as f64)
                })
                .collect();
            let cap = next() % 120;
            let inst = FbcInstance::new(cap, sizes, reqs).unwrap();
            for variant in [
                GreedyVariant::PaperLiteral,
                GreedyVariant::SortedOnce,
                GreedyVariant::SharedCredit,
            ] {
                let sel = opt_cache_select(&inst, &opts(variant));
                assert!(sel.bytes <= cap, "variant {variant:?} overflowed");
                assert!(inst.is_feasible(&sel.chosen));
            }
        }
    }

    #[test]
    fn seeded_shared_credit_respects_seed() {
        let inst = FbcInstance::new(
            10,
            vec![5, 5, 5],
            vec![(vec![0], 1.0), (vec![1], 100.0), (vec![2], 50.0)],
        )
        .unwrap();
        // Seed with request 0 (files {0}); 5 bytes remain for others.
        let sel = greedy_shared_credit(&inst, &[0], 5);
        assert!(sel.chosen.contains(&0));
        assert!(sel.chosen.contains(&1)); // highest value fits the remainder
        assert_eq!(sel.chosen.len(), 2);
    }
}

//! Fundamental identifier and size types shared across the workspace.
//!
//! The simulation never touches file *contents* — only metadata (sizes,
//! identities) — so files are represented by a compact [`FileId`] and a size
//! in bytes. Keeping `FileId` at 4 bytes matters: bundles, histories and
//! cache states store millions of them during large parameter sweeps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes. All sizes and capacities in the workspace use this alias.
pub type Bytes = u64;

/// One kibibyte (2^10 bytes).
pub const KIB: Bytes = 1 << 10;
/// One mebibyte (2^20 bytes). The paper's minimum file size is 1 MB.
pub const MIB: Bytes = 1 << 20;
/// One gibibyte (2^30 bytes). Data-grid caches are typically 100s of GB.
pub const GIB: Bytes = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: Bytes = 1 << 40;

/// Identifier of a file known to a [`FileCatalog`](crate::catalog::FileCatalog).
///
/// `FileId`s are dense indices assigned by the catalog in registration order,
/// which lets most per-file tables be plain vectors instead of hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// The dense index of this file, usable directly as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for FileId {
    fn from(v: u32) -> Self {
        FileId(v)
    }
}

/// Formats a byte count with a binary-unit suffix for human-readable reports.
///
/// ```
/// use fbc_core::types::{format_bytes, MIB};
/// assert_eq!(format_bytes(3 * MIB / 2), "1.50 MiB");
/// assert_eq!(format_bytes(512), "512 B");
/// ```
pub fn format_bytes(b: Bytes) -> String {
    const UNITS: [(&str, Bytes); 4] = [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)];
    for (name, unit) in UNITS {
        if b >= unit {
            return format!("{:.2} {}", b as f64 / unit as f64, name);
        }
    }
    format!("{} B", b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_roundtrip() {
        let id = FileId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(FileId::from(42u32), id);
        assert_eq!(id.to_string(), "f42");
    }

    #[test]
    fn file_id_ordering_follows_raw_value() {
        assert!(FileId(1) < FileId(2));
        assert!(FileId(100) > FileId(99));
    }

    #[test]
    fn byte_constants_are_powers_of_two() {
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(TIB, 1024 * GIB);
    }

    #[test]
    fn format_bytes_picks_largest_unit() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(KIB), "1.00 KiB");
        assert_eq!(format_bytes(5 * GIB), "5.00 GiB");
        assert_eq!(format_bytes(2 * TIB + TIB / 2), "2.50 TiB");
    }

    #[test]
    fn file_id_is_small() {
        assert_eq!(std::mem::size_of::<FileId>(), 4);
    }
}

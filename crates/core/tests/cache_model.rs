//! Model-based differential tests: the dense slab/bitset [`CacheState`]
//! must be bit-for-bit equivalent to the retained `HashMap`+`BTreeSet`
//! twin ([`CacheStateReference`], `reference-kernels` feature) under
//! arbitrary `insert`/`evict`/`pin`/`unpin`/`clear` interleavings —
//! same results, same error variants, same observable state after every
//! step — for dense id universes, for pre-sized (warm-start) caches, and
//! for a sparse-id adversary whose huge non-contiguous raw ids force the
//! interning fallback on every path.

use fbc_core::bitset::SPARSE_ID_FLOOR;
use fbc_core::bundle::Bundle;
use fbc_core::cache::{CacheState, CacheStateReference};
use fbc_core::catalog::FileCatalog;
use fbc_core::types::{Bytes, FileId};
use proptest::prelude::*;

const NUM_DENSE: u32 = 16;

/// Sparse raw ids exercising both ends of the fallback region, including
/// the extremes a bitset must never be asked to cover.
const SPARSE_IDS: [u32; 4] = [
    SPARSE_ID_FLOOR,
    SPARSE_ID_FLOOR + 1_000_000,
    u32::MAX - 1,
    u32::MAX,
];

#[derive(Clone, Debug)]
enum Op {
    Insert(u32),
    Evict(u32),
    Pin(u32),
    Unpin(u32),
    Clear,
    Probe(Vec<u32>),
}

/// Ops over a universe of `n` abstract file slots (mapped to real ids by
/// the harness, so the same sequences drive dense and sparse catalogs).
/// The selector weights favour inserts so runs actually fill the cache.
fn ops(n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..14, 0..n, proptest::collection::vec(0..n, 1..=4)),
        1..=len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, slot, probe)| match sel {
                0..=3 => Op::Insert(slot),
                4..=6 => Op::Evict(slot),
                7..=8 => Op::Pin(slot),
                9..=10 => Op::Unpin(slot),
                11 => Op::Clear,
                _ => Op::Probe(probe),
            })
            .collect()
    })
}

/// The harness: applies `ops` (slot indices resolved through `ids`) to the
/// dense implementation and the reference twin in lockstep, asserting
/// result and full-state equality after every step.
fn run_model(ops: &[Op], ids: &[FileId], catalog: &FileCatalog, capacity: Bytes, warm_start: bool) {
    let mut dense = if warm_start {
        CacheState::with_catalog(capacity, catalog)
    } else {
        CacheState::new(capacity)
    };
    let mut reference = CacheStateReference::new(capacity);
    let unknown = FileId(NUM_DENSE + 7); // registered in no catalog below
    for op in ops {
        match op {
            Op::Insert(i) => {
                let f = ids[*i as usize];
                prop_assert_eq!(dense.insert(f, catalog), reference.insert(f, catalog));
            }
            Op::Evict(i) => {
                let f = ids[*i as usize];
                prop_assert_eq!(dense.evict(f), reference.evict(f));
            }
            Op::Pin(i) => {
                let f = ids[*i as usize];
                prop_assert_eq!(dense.pin(f), reference.pin(f));
            }
            Op::Unpin(i) => {
                let f = ids[*i as usize];
                prop_assert_eq!(dense.unpin(f), reference.unpin(f));
            }
            Op::Clear => {
                dense.clear();
                reference.clear();
            }
            Op::Probe(slots) => {
                let bundle = Bundle::new(slots.iter().map(|&i| ids[i as usize]));
                prop_assert_eq!(dense.supports(&bundle), reference.supports(&bundle));
                prop_assert_eq!(dense.contains_all(&bundle), reference.supports(&bundle));
                prop_assert_eq!(dense.missing_of(&bundle), reference.missing_of(&bundle));
                prop_assert_eq!(
                    dense.missing_bytes(&bundle, catalog),
                    reference.missing_bytes(&bundle, catalog)
                );
            }
        }
        // Full observable-state equality after every step.
        prop_assert_eq!(dense.used(), reference.used());
        prop_assert_eq!(dense.free(), reference.free());
        prop_assert_eq!(dense.len(), reference.len());
        prop_assert_eq!(dense.is_empty(), reference.is_empty());
        prop_assert_eq!(dense.pinned_len(), reference.pinned_len());
        prop_assert_eq!(
            dense.resident_files_sorted(),
            reference.resident_files_sorted()
        );
        prop_assert_eq!(
            dense.pinned_files().collect::<Vec<_>>(),
            reference.pinned_files().collect::<Vec<_>>()
        );
        for &f in ids.iter().chain([&unknown]) {
            prop_assert_eq!(dense.contains(f), reference.contains(f));
            prop_assert_eq!(dense.is_pinned(f), reference.is_pinned(f));
        }
        // `iter` orders may legitimately differ (slab order vs BTreeMap
        // order); the multiset of pairs must not.
        let mut a: Vec<_> = dense.iter().collect();
        let mut b: Vec<_> = reference.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(dense.check_invariants());
        prop_assert!(reference.check_invariants());
    }
}

fn dense_catalog() -> (FileCatalog, Vec<FileId>) {
    let catalog = FileCatalog::from_sizes((0..NUM_DENSE as u64).map(|i| (i % 5) + 1).collect());
    let ids = (0..NUM_DENSE).map(FileId).collect();
    (catalog, ids)
}

/// A catalog whose universe mixes the dense prefix with huge, wildly
/// non-contiguous sparse ids — every sparse touch must take the interning
/// fallback, never a (4-billion-bit) bitset.
fn sparse_catalog() -> (FileCatalog, Vec<FileId>) {
    let mut catalog =
        FileCatalog::from_sizes((0..(NUM_DENSE - 4) as u64).map(|i| (i % 5) + 1).collect());
    let mut ids: Vec<FileId> = (0..NUM_DENSE - 4).map(FileId).collect();
    for (i, raw) in SPARSE_IDS.into_iter().enumerate() {
        catalog
            .add_file_at(FileId(raw), (i as u64 % 5) + 1)
            .unwrap();
        ids.push(FileId(raw));
    }
    (catalog, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dense_universe_matches_reference(ops in ops(NUM_DENSE, 48), capacity in 1u64..24) {
        let (catalog, ids) = dense_catalog();
        run_model(&ops, &ids, &catalog, capacity, false);
    }

    #[test]
    fn warm_start_matches_reference(ops in ops(NUM_DENSE, 48), capacity in 1u64..24) {
        let (catalog, ids) = dense_catalog();
        run_model(&ops, &ids, &catalog, capacity, true);
    }

    #[test]
    fn sparse_adversary_matches_reference(ops in ops(NUM_DENSE, 48), capacity in 1u64..24) {
        let (catalog, ids) = sparse_catalog();
        run_model(&ops, &ids, &catalog, capacity, false);
        run_model(&ops, &ids, &catalog, capacity, true);
    }
}

/// Deterministic spot check that the sparse adversary really exercises the
/// fallback: residency at `u32::MAX` round-trips without the dense slab
/// growing to cover it.
#[test]
fn sparse_extreme_ids_round_trip() {
    let (catalog, ids) = sparse_catalog();
    let mut cache = CacheState::with_catalog(1 << 20, &catalog);
    for &f in &ids {
        cache.insert(f, &catalog).unwrap();
    }
    assert_eq!(cache.len(), ids.len());
    let bundle = Bundle::new(ids.iter().copied());
    assert!(cache.contains_all(&bundle));
    assert_eq!(cache.missing_bytes(&bundle, &catalog), 0);
    cache.pin(FileId(u32::MAX)).unwrap();
    assert_eq!(
        cache.evict(FileId(u32::MAX)),
        Err(fbc_core::error::FbcError::Pinned(FileId(u32::MAX)))
    );
    cache.unpin(FileId(u32::MAX)).unwrap();
    assert_eq!(
        cache.evict(FileId(u32::MAX)),
        Ok(catalog.size(FileId(u32::MAX)))
    );
    assert!(!cache.contains(FileId(u32::MAX)));
    assert!(cache.check_invariants());
}

//! Property-based tests of the core data structures against reference
//! models (naive recomputation).

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::history::{RequestHistory, ValueFn};
use fbc_core::index::SupportIndex;
use fbc_core::types::FileId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn small_bundle() -> impl Strategy<Value = Bundle> {
    proptest::collection::vec(0u32..16, 1..=5).prop_map(Bundle::from_raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonicalisation: construction order never matters.
    #[test]
    fn bundle_canonicalisation_is_order_insensitive(mut ids in proptest::collection::vec(0u32..64, 1..=8)) {
        let a = Bundle::from_raw(ids.iter().copied());
        ids.reverse();
        let b = Bundle::from_raw(ids.iter().copied());
        prop_assert_eq!(&a, &b);
        // Idempotent: rebuilding from the canonical list is identity.
        let c = Bundle::new(a.iter());
        prop_assert_eq!(&a, &c);
        // Sorted and unique.
        prop_assert!(a.files().windows(2).all(|w| w[0] < w[1]));
    }

    /// `intersects` agrees with the set-theoretic definition.
    #[test]
    fn bundle_intersection_matches_sets(a in small_bundle(), b in small_bundle()) {
        let sa: HashSet<FileId> = a.iter().collect();
        let sb: HashSet<FileId> = b.iter().collect();
        prop_assert_eq!(a.intersects(&b), !sa.is_disjoint(&sb));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// History degrees always equal a from-scratch recount, under an
    /// arbitrary record/forget interleaving.
    #[test]
    fn history_degrees_match_recount(ops in proptest::collection::vec(
        (small_bundle(), proptest::bool::ANY), 1..60)) {
        let mut h = RequestHistory::new();
        let mut live: Vec<Bundle> = Vec::new();
        for (bundle, forget) in ops {
            if forget && !live.is_empty() {
                let victim = live.swap_remove(0);
                h.forget(&victim);
            } else {
                h.record(&bundle);
                if !live.contains(&bundle) {
                    live.push(bundle);
                }
            }
            // Recount degrees from the live set.
            let mut expect: HashMap<FileId, u32> = HashMap::new();
            for b in &live {
                for f in b.iter() {
                    *expect.entry(f).or_insert(0) += 1;
                }
            }
            for f in 0..16u32 {
                prop_assert_eq!(
                    h.degree(FileId(f)),
                    expect.get(&FileId(f)).copied().unwrap_or(0)
                );
            }
        }
    }

    /// Counting values equal occurrence counts; decayed values never exceed
    /// them and never go negative.
    #[test]
    fn decayed_values_bounded_by_counts(bundles in proptest::collection::vec(small_bundle(), 1..40)) {
        let mut count_h = RequestHistory::new();
        let mut decay_h = RequestHistory::with_value_fn(ValueFn::Decay { half_life: 4.0 });
        for b in &bundles {
            count_h.record(b);
            decay_h.record(b);
        }
        for b in &bundles {
            let c = count_h.value_of(b).unwrap();
            let d = decay_h.value_of(b).unwrap();
            prop_assert!(d > 0.0);
            prop_assert!(d <= c + 1e-9, "decayed {d} > count {c}");
        }
    }

    /// The cache's byte accounting matches a reference model under any
    /// insert/evict/pin sequence.
    #[test]
    fn cache_accounting_matches_model(ops in proptest::collection::vec(
        (0u32..12, 0u8..4), 1..80)) {
        let catalog = FileCatalog::from_sizes((1..=12).collect());
        let mut cache = CacheState::new(30);
        let mut model: HashMap<FileId, u64> = HashMap::new();
        let mut pins: HashMap<FileId, u32> = HashMap::new();
        for (raw, op) in ops {
            let f = FileId(raw);
            match op {
                0 => {
                    let size = catalog.size(f);
                    let used: u64 = model.values().sum();
                    let ok = cache.insert(f, &catalog).is_ok();
                    let expect = !model.contains_key(&f) && used + size <= 30;
                    prop_assert_eq!(ok, expect);
                    if ok { model.insert(f, size); }
                }
                1 => {
                    let ok = cache.evict(f).is_ok();
                    let expect = model.contains_key(&f)
                        && pins.get(&f).copied().unwrap_or(0) == 0;
                    prop_assert_eq!(ok, expect);
                    if ok { model.remove(&f); }
                }
                2 => {
                    if cache.pin(f).is_ok() {
                        *pins.entry(f).or_insert(0) += 1;
                    }
                }
                _ => {
                    if cache.unpin(f).is_ok() {
                        if let Some(p) = pins.get_mut(&f) {
                            *p = p.saturating_sub(1);
                        }
                    }
                }
            }
            prop_assert_eq!(cache.used(), model.values().sum::<u64>());
            prop_assert!(cache.check_invariants());
        }
    }

    /// The support index agrees with brute-force support computation under
    /// arbitrary record/insert/evict interleavings.
    #[test]
    fn support_index_matches_bruteforce(ops in proptest::collection::vec(
        (small_bundle(), 0u8..3), 1..60)) {
        let mut index = SupportIndex::new();
        let mut recorded: Vec<Bundle> = Vec::new();
        let mut resident: HashSet<FileId> = HashSet::new();
        for (bundle, op) in ops {
            match op {
                0 => {
                    index.on_record(&bundle);
                    if !recorded.contains(&bundle) {
                        recorded.push(bundle);
                    }
                }
                1 => {
                    for f in bundle.iter() {
                        index.on_insert(f);
                        resident.insert(f);
                    }
                }
                _ => {
                    for f in bundle.iter() {
                        index.on_evict(f);
                        resident.remove(&f);
                    }
                }
            }
            let got: HashSet<Bundle> = index.supported().into_iter().cloned().collect();
            let expect: HashSet<Bundle> = recorded
                .iter()
                .filter(|b| b.is_subset_of(|f| resident.contains(&f)))
                .cloned()
                .collect();
            prop_assert_eq!(got, expect);
        }
    }

    /// Lemma A.1 (Appendix A): for ANY feasible solution — in particular
    /// the exact optimum — the total *adjusted* size of its requests'
    /// bundles is at most the cache size.
    #[test]
    fn lemma_a1_adjusted_sizes_bounded_by_capacity(
        sizes in proptest::collection::vec(1u64..20, 2..10),
        raw_requests in proptest::collection::vec(
            (proptest::collection::vec(0u32..10, 1..=3), 1u32..50), 1..10),
        cap in 0u64..80,
    ) {
        use fbc_core::exact::solve_exact;
        use fbc_core::instance::FbcInstance;
        let m = sizes.len() as u32;
        let requests: Vec<(Vec<u32>, f64)> = raw_requests
            .into_iter()
            .map(|(files, v)| {
                (files.into_iter().map(|f| f % m).collect(), v as f64)
            })
            .collect();
        let inst = FbcInstance::new(cap, sizes, requests).unwrap();
        let opt = solve_exact(&inst);
        let total_adjusted: f64 = opt
            .chosen
            .iter()
            .map(|&i| inst.request_adjusted_size(i))
            .sum();
        prop_assert!(
            total_adjusted <= cap as f64 + 1e-9,
            "Lemma A.1 violated: {total_adjusted} > {cap}"
        );
    }

    /// Relative value scales linearly with the value and inversely with
    /// adjusted size: recording a bundle again strictly increases its
    /// relative value (counts grow, denominators fixed).
    #[test]
    fn relative_value_grows_with_recurrence(b in small_bundle()) {
        let catalog = FileCatalog::from_sizes(vec![100; 16]);
        let mut h = RequestHistory::new();
        h.record(&b);
        let v1 = h.relative_value(&b, &catalog);
        h.record(&b);
        let v2 = h.relative_value(&b, &catalog);
        prop_assert!(v2 > v1);
        prop_assert!((v2 / v1 - 2.0).abs() < 1e-9);
    }
}

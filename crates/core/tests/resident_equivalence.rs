//! Differential property tests: the persistent resident decision path of
//! `OptFileBundle` must be bit-for-bit equivalent to the verbatim rebuild
//! reference path (`OptFileBundle::with_config_reference`) under arbitrary
//! record/insert/evict interleavings — which the policy itself generates
//! when driven by a random job stream — across every history mode × greedy
//! variant, for counting and decayed value functions, including warm
//! starts, resets, and interleaved `explain` dry runs.

use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::history::{RequestHistory, ValueFn};
use fbc_core::optfilebundle::{HistoryMode, OfbConfig, OptFileBundle};
use fbc_core::policy::{CachePolicy, RequestOutcome};
use fbc_core::select::GreedyVariant;
use fbc_core::types::FileId;
use proptest::prelude::*;

const NUM_FILES: u32 = 24;

fn small_bundle() -> impl Strategy<Value = Bundle> {
    proptest::collection::vec(0u32..NUM_FILES, 1..=5).prop_map(Bundle::from_raw)
}

fn catalog() -> FileCatalog {
    FileCatalog::from_sizes(
        (0..NUM_FILES as u64)
            .map(|i| (i % 6) + 1)
            .collect::<Vec<_>>(),
    )
}

fn configs() -> Vec<OfbConfig> {
    let mut out = Vec::new();
    for variant in [
        GreedyVariant::PaperLiteral,
        GreedyVariant::SortedOnce,
        GreedyVariant::SharedCredit,
    ] {
        for (history_mode, prefetch, use_index) in [
            (HistoryMode::Full, false, true),
            (HistoryMode::Full, true, true),
            (HistoryMode::Window(5), false, true),
            (HistoryMode::CacheSupported, false, true),
            (HistoryMode::CacheSupported, false, false),
        ] {
            out.push(OfbConfig {
                history_mode,
                variant,
                prefetch,
                use_index,
                ..OfbConfig::default()
            });
        }
    }
    // Bounded candidate lists must truncate identically.
    out.push(OfbConfig {
        max_candidates: Some(3),
        ..OfbConfig::default()
    });
    out.push(OfbConfig {
        history_mode: HistoryMode::Full,
        max_candidates: Some(4),
        ..OfbConfig::default()
    });
    out
}

/// Drives a policy over the jobs, interleaving `explain` dry runs (whose
/// reports — candidates, retained, victims — are part of the comparison).
fn run(
    mut policy: OptFileBundle,
    jobs: &[Bundle],
    catalog: &FileCatalog,
    capacity: u64,
) -> (Vec<RequestOutcome>, Vec<String>, Vec<FileId>) {
    let mut cache = CacheState::new(capacity);
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut explains = Vec::new();
    for (i, bundle) in jobs.iter().enumerate() {
        if i % 5 == 4 {
            explains.push(format!("{:?}", policy.explain(&cache, catalog, bundle)));
        }
        outcomes.push(policy.handle(bundle, &mut cache, catalog));
    }
    (outcomes, explains, cache.resident_files_sorted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random job streams: both paths agree on every outcome (hits,
    /// fetched/evicted file lists and byte counts), every explain report,
    /// and the final cache content, for every config in the matrix.
    #[test]
    fn resident_path_matches_rebuild_reference(
        jobs in proptest::collection::vec(small_bundle(), 1..60),
        decay in proptest::bool::ANY,
    ) {
        let catalog = catalog();
        let value_fn = if decay {
            ValueFn::Decay { half_life: 3.0 }
        } else {
            ValueFn::Count
        };
        for config in configs() {
            let config = OfbConfig { value_fn, ..config };
            let fast = run(OptFileBundle::with_config(config), &jobs, &catalog, 18);
            let slow = run(
                OptFileBundle::with_config_reference(config),
                &jobs,
                &catalog,
                18,
            );
            prop_assert_eq!(&fast.0, &slow.0, "outcomes diverged under {:?}", config);
            prop_assert_eq!(&fast.1, &slow.1, "explains diverged under {:?}", config);
            prop_assert_eq!(&fast.2, &slow.2, "caches diverged under {:?}", config);
        }
    }

    /// Batched admission is *defined* as sequential: driving the same jobs
    /// through `handle_batch` in arbitrary chunkings must produce the same
    /// outcomes, the same final cache, and — with tracing on — the same
    /// byte-for-byte JSONL trace and registry dump as per-job `handle`.
    #[test]
    fn batched_admission_matches_sequential(
        jobs in proptest::collection::vec(small_bundle(), 1..60),
        chunk in 1usize..9,
        decay in proptest::bool::ANY,
    ) {
        let catalog = catalog();
        let value_fn = if decay {
            ValueFn::Decay { half_life: 3.0 }
        } else {
            ValueFn::Count
        };
        for config in configs() {
            let config = OfbConfig { value_fn, ..config };
            for traced in [false, true] {
                let obs_seq = if traced { fbc_obs::Obs::enabled() } else { fbc_obs::Obs::disabled() };
                let obs_bat = if traced { fbc_obs::Obs::enabled() } else { fbc_obs::Obs::disabled() };

                let mut seq = OptFileBundle::with_config(config);
                seq.attach_obs(obs_seq.clone());
                let mut cache_seq = CacheState::new(18);
                let seq_out: Vec<RequestOutcome> = jobs
                    .iter()
                    .map(|b| seq.handle(b, &mut cache_seq, &catalog))
                    .collect();

                let mut bat = OptFileBundle::with_config(config);
                bat.attach_obs(obs_bat.clone());
                let mut cache_bat = CacheState::new(18);
                let mut bat_out = Vec::new();
                let refs: Vec<&Bundle> = jobs.iter().collect();
                for group in refs.chunks(chunk) {
                    bat.handle_batch(group, &mut cache_bat, &catalog, &mut bat_out);
                }

                prop_assert_eq!(&seq_out, &bat_out, "outcomes diverged under {:?}", config);
                prop_assert_eq!(
                    cache_seq.resident_files_sorted(),
                    cache_bat.resident_files_sorted(),
                    "caches diverged under {:?}",
                    config
                );
                if traced {
                    prop_assert_eq!(obs_seq.jsonl(), obs_bat.jsonl());
                    prop_assert_eq!(obs_seq.render_table(), obs_bat.render_table());
                }
            }
        }
    }

    /// `Window(n)` edge cases: degenerate windows (`0`, `1`), a window that
    /// exactly covers the history, and one larger than the history will
    /// ever grow — each crossed with candidate-list truncation, including
    /// caps of `0`/`1` and caps above the window. The windowed fast path
    /// must agree with the rebuild reference on every outcome, explain
    /// report, and final cache for each combination.
    #[test]
    fn window_edge_cases_match_reference(
        jobs in proptest::collection::vec(small_bundle(), 1..48),
        decay in proptest::bool::ANY,
    ) {
        let catalog = catalog();
        let value_fn = if decay {
            ValueFn::Decay { half_life: 3.0 }
        } else {
            ValueFn::Count
        };
        let history_len = jobs.len();
        let windows = [0, 1, history_len, history_len + 7];
        let caps = [None, Some(0), Some(1), Some(3), Some(history_len + 9)];
        for window in windows {
            for max_candidates in caps {
                let config = OfbConfig {
                    history_mode: HistoryMode::Window(window),
                    max_candidates,
                    value_fn,
                    ..OfbConfig::default()
                };
                let fast = run(OptFileBundle::with_config(config), &jobs, &catalog, 18);
                let slow = run(
                    OptFileBundle::with_config_reference(config),
                    &jobs,
                    &catalog,
                    18,
                );
                prop_assert_eq!(&fast.0, &slow.0, "outcomes diverged under {:?}", config);
                prop_assert_eq!(&fast.1, &slow.1, "explains diverged under {:?}", config);
                prop_assert_eq!(&fast.2, &slow.2, "caches diverged under {:?}", config);
            }
        }
    }

    /// Warm starts from a persisted history: the resident mirror populated
    /// from `with_history` must behave identically to the reference twin's
    /// index warm start, and a `reset` must bring both back to blank.
    #[test]
    fn warm_start_and_reset_match_reference(
        warmup in proptest::collection::vec(small_bundle(), 1..30),
        jobs in proptest::collection::vec(small_bundle(), 1..40),
        decay in proptest::bool::ANY,
    ) {
        let catalog = catalog();
        let value_fn = if decay {
            ValueFn::Decay { half_life: 4.0 }
        } else {
            ValueFn::Count
        };
        let mut history = RequestHistory::with_value_fn(value_fn);
        for b in &warmup {
            history.record(b);
        }
        let mut buf = Vec::new();
        history.write_to(&mut buf).unwrap();
        let config = OfbConfig { value_fn, ..OfbConfig::default() };

        let restored = || RequestHistory::read_from(&buf[..]).unwrap();
        let fast = run(
            OptFileBundle::with_history(config, restored()),
            &jobs,
            &catalog,
            18,
        );
        let slow = run(
            OptFileBundle::with_history_reference(config, restored()),
            &jobs,
            &catalog,
            18,
        );
        prop_assert_eq!(&fast.0, &slow.0, "warm-start outcomes diverged");
        prop_assert_eq!(&fast.1, &slow.1, "warm-start explains diverged");
        prop_assert_eq!(&fast.2, &slow.2, "warm-start caches diverged");

        // After a reset both paths restart from an empty history and keep
        // agreeing (the resident mirror must be fully cleared).
        let mut fast_p = OptFileBundle::with_history(config, restored());
        let mut slow_p = OptFileBundle::with_history_reference(config, restored());
        let mut cache_f = CacheState::new(18);
        let mut cache_s = CacheState::new(18);
        for b in jobs.iter().take(10) {
            fast_p.handle(b, &mut cache_f, &catalog);
            slow_p.handle(b, &mut cache_s, &catalog);
        }
        fast_p.reset();
        slow_p.reset();
        // Note: reset clears the policy state but not the cache, matching
        // the baseline-policy reset contract.
        let mut fast_out = Vec::new();
        let mut slow_out = Vec::new();
        for b in &jobs {
            fast_out.push(fast_p.handle(b, &mut cache_f, &catalog));
            slow_out.push(slow_p.handle(b, &mut cache_s, &catalog));
        }
        prop_assert_eq!(&fast_out, &slow_out, "post-reset outcomes diverged");
        prop_assert_eq!(
            cache_f.resident_files_sorted(),
            cache_s.resident_files_sorted()
        );
    }
}

//! Client job-arrival processes.
//!
//! Clients submit jobs to the SRM. Two standard arrival models are
//! provided: an *open* Poisson process (exponential inter-arrival times at
//! rate λ) and a *batch* arrival that submits everything at time zero
//! (equivalent to a saturated closed system, useful for throughput
//! measurements).

use crate::time::{SimDuration, SimTime};
use fbc_core::bundle::Bundle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A job submitted to the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobArrival {
    /// Submission time.
    pub at: SimTime,
    /// The file-bundle the job needs.
    pub bundle: Bundle,
}

/// Arrival process model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` jobs per second.
    Poisson {
        /// Mean jobs per second.
        rate: f64,
        /// RNG seed for the exponential draws.
        seed: u64,
    },
    /// All jobs submitted at time zero.
    Batch,
    /// Deterministic arrivals with a fixed inter-arrival gap.
    Uniform {
        /// Gap between consecutive submissions.
        gap: SimDuration,
    },
}

/// Stamps arrival times onto a job sequence.
pub fn schedule_arrivals(jobs: &[Bundle], process: ArrivalProcess) -> Vec<JobArrival> {
    match process {
        ArrivalProcess::Batch => jobs
            .iter()
            .map(|b| JobArrival {
                at: SimTime::ZERO,
                bundle: b.clone(),
            })
            .collect(),
        ArrivalProcess::Uniform { gap } => {
            let mut t = SimTime::ZERO;
            jobs.iter()
                .map(|b| {
                    let a = JobArrival {
                        at: t,
                        bundle: b.clone(),
                    };
                    t += gap;
                    a
                })
                .collect()
        }
        ArrivalProcess::Poisson { rate, seed } => {
            assert!(rate > 0.0, "Poisson rate must be positive");
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = SimTime::ZERO;
            jobs.iter()
                .map(|b| {
                    // Inverse-CDF exponential draw; clamp u away from 0.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let gap = -u.ln() / rate;
                    t += SimDuration::from_secs_f64(gap);
                    JobArrival {
                        at: t,
                        bundle: b.clone(),
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> Vec<Bundle> {
        (0..n as u32).map(|i| Bundle::from_raw([i])).collect()
    }

    #[test]
    fn batch_arrivals_all_at_zero() {
        let arr = schedule_arrivals(&jobs(5), ArrivalProcess::Batch);
        assert_eq!(arr.len(), 5);
        assert!(arr.iter().all(|a| a.at == SimTime::ZERO));
    }

    #[test]
    fn uniform_arrivals_evenly_spaced() {
        let arr = schedule_arrivals(
            &jobs(3),
            ArrivalProcess::Uniform {
                gap: SimDuration::from_secs(2),
            },
        );
        assert_eq!(arr[0].at, SimTime::ZERO);
        assert_eq!(arr[1].at.micros(), 2_000_000);
        assert_eq!(arr[2].at.micros(), 4_000_000);
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_seeded() {
        let p = ArrivalProcess::Poisson {
            rate: 10.0,
            seed: 3,
        };
        let a = schedule_arrivals(&jobs(100), p);
        let b = schedule_arrivals(&jobs(100), p);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn poisson_mean_rate_is_approximately_right() {
        let arr = schedule_arrivals(
            &jobs(5000),
            ArrivalProcess::Poisson {
                rate: 50.0,
                seed: 1,
            },
        );
        let span = arr.last().unwrap().at.as_secs_f64();
        let measured_rate = 5000.0 / span;
        assert!(
            (measured_rate - 50.0).abs() < 5.0,
            "rate {measured_rate} too far from 50"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn nonpositive_rate_rejected() {
        let _ = schedule_arrivals(&jobs(1), ArrivalProcess::Poisson { rate: 0.0, seed: 0 });
    }
}

//! A sharded, multi-threaded SRM decision service.
//!
//! One SRM absorbing millions of queued jobs cannot decide them one at a
//! time. This module splits the request stream over `N` independent
//! shards — each owning its own [`CacheState`] (an equal slice of the
//! configured capacity), its own policy instance (built per shard from a
//! [`PolicyFactory`]) and its own private [`Obs`] sink — and runs the
//! unmodified engine core ([`run_grid_on_cache`]) on every shard, on a
//! pool of `M` scoped worker threads.
//!
//! # Pipeline
//!
//! 1. **Admission.** A producer thread submits every [`JobArrival`] into
//!    a *bounded* MPSC queue ([`std::sync::mpsc::sync_channel`] of
//!    [`ConcurrentConfig::queue_capacity`]); the front-end drains it in
//!    batches of [`ConcurrentConfig::batch`] and routes each job by its
//!    [`ShardMap`]. Backpressure instead of loss: a full queue blocks the
//!    producer, and every admitted job is routed — request lockout is
//!    impossible by construction.
//! 2. **Decision.** Workers claim shards from an atomic counter (the
//!    `parallel_sweep` idiom) and simulate each shard's sub-trace with
//!    the real engine — same decision, fault, retry and pinning paths as
//!    the sequential service.
//! 3. **Merge.** Per-shard [`GridStats`] and [`Obs`] children are folded
//!    in shard-id order, so the combined result is a pure function of
//!    `(trace, config)` — independent of worker scheduling.
//!
//! # Determinism contract
//!
//! For a fixed `(arrivals, ConcurrentConfig, FaultPlan)` the result is
//! bit-for-bit reproducible for **any** worker count: routing is a pure
//! hash, each shard's simulation depends only on its own sub-trace, and
//! the merge order is fixed. With `shards = 1` the single shard owns the
//! full capacity and sees the full trace, making the run *identical* to
//! [`crate::engine::run_grid_observed`] — pinned by the
//! `concurrent_equivalence` differential suite.
//!
//! Each shard builds its own [`crate::faults::FaultInjector`] from the shared plan, so
//! shards draw the same jitter/transient sequence from the same seed —
//! deterministic, though not the same interleaving a sequential run
//! distributes over one stream (fault-plan runs are reproducible, not
//! shard-count-invariant).

use crate::client::JobArrival;
use crate::engine::{run_grid_on_cache, GridConfig};
use crate::faults::FaultPlan;
use crate::shard::{ShardBy, ShardMap};
use crate::stats::GridStats;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::PolicyFactory;
use fbc_obs::Obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Configuration of the sharded decision service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrentConfig {
    /// The underlying grid (SRM / MSS / link / retry). The SRM cache
    /// capacity is split evenly across shards.
    pub grid: GridConfig,
    /// Number of independent decision shards (≥ 1).
    pub shards: usize,
    /// Worker threads executing shards (clamped to `1..=shards`).
    pub workers: usize,
    /// Routing function for the admission front-end.
    pub shard_by: ShardBy,
    /// Bound of the admission queue between producer and front-end; a
    /// full queue blocks submission (backpressure, never loss).
    pub queue_capacity: usize,
    /// Jobs pulled from the admission queue per routing batch.
    pub batch: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            grid: GridConfig::default(),
            shards: 1,
            workers: 1,
            shard_by: ShardBy::default(),
            queue_capacity: 1024,
            batch: 64,
        }
    }
}

impl ConcurrentConfig {
    /// A sharded config over `grid` with `shards` shards and as many
    /// workers.
    pub fn sharded(grid: GridConfig, shards: usize) -> Self {
        Self {
            grid,
            shards,
            workers: shards,
            ..Self::default()
        }
    }
}

/// Results of one sharded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConcurrentStats {
    /// Shard results merged in shard-id order ([`GridStats::merge_shard`]).
    pub overall: GridStats,
    /// Per-shard results, indexed by shard id.
    pub per_shard: Vec<GridStats>,
    /// Jobs routed to each shard by the admission front-end.
    pub routed: Vec<u64>,
}

/// The sharded decision service front-end.
#[derive(Debug, Clone)]
pub struct ConcurrentSrm {
    config: ConcurrentConfig,
    map: ShardMap,
}

impl ConcurrentSrm {
    /// Builds the service (panics if `shards == 0`).
    pub fn new(config: ConcurrentConfig) -> Self {
        let map = ShardMap::new(config.shards, config.shard_by);
        Self { config, map }
    }

    /// The routing function in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Admits every arrival through the bounded queue and returns the
    /// per-shard sub-traces plus the routed count per shard.
    ///
    /// Runs the producer on a scoped thread so the bounded channel
    /// exercises real backpressure; the routing itself is a pure function
    /// of arrival order, so the result does not depend on thread timing.
    fn admit(&self, arrivals: &[JobArrival]) -> (Vec<Vec<JobArrival>>, Vec<u64>) {
        let shards = self.config.shards;
        let mut routed_jobs: Vec<Vec<JobArrival>> = vec![Vec::new(); shards];
        let mut routed: Vec<u64> = vec![0; shards];
        let batch = self.config.batch.max(1);
        let (tx, rx) = mpsc::sync_channel::<JobArrival>(self.config.queue_capacity.max(1));
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for a in arrivals {
                    // A full queue blocks here until the router catches up.
                    if tx.send(a.clone()).is_err() {
                        return; // router gone: nothing left to admit to
                    }
                }
            });
            // Drain in batches until the producer hangs up. `recv` blocks,
            // so every submitted job is routed before admission finishes.
            let mut pending = Vec::with_capacity(batch);
            while let Ok(first) = rx.recv() {
                pending.push(first);
                while pending.len() < batch {
                    match rx.try_recv() {
                        Ok(a) => pending.push(a),
                        Err(_) => break,
                    }
                }
                for a in pending.drain(..) {
                    let s = self.map.shard_of(&a.bundle);
                    routed[s] += 1;
                    routed_jobs[s].push(a);
                }
            }
        });
        (routed_jobs, routed)
    }

    /// Runs the sharded service over `arrivals` (sorted by arrival time,
    /// as for [`crate::engine::run_grid`]).
    pub fn run(
        &self,
        factory: &dyn PolicyFactory,
        catalog: &FileCatalog,
        arrivals: &[JobArrival],
        plan: Option<&FaultPlan>,
    ) -> ConcurrentStats {
        self.run_observed(factory, catalog, arrivals, plan, &Obs::disabled())
    }

    /// [`run`](Self::run) with an observability sink: every shard records
    /// into a private child of `obs`, merged back in shard-id order after
    /// the run ([`Obs::merge_from`]), so an enabled trace is deterministic
    /// for any worker count and — with one shard — byte-identical to the
    /// sequential engine's.
    pub fn run_observed(
        &self,
        factory: &dyn PolicyFactory,
        catalog: &FileCatalog,
        arrivals: &[JobArrival],
        plan: Option<&FaultPlan>,
        obs: &Obs,
    ) -> ConcurrentStats {
        let shards = self.config.shards;
        let workers = self.config.workers.clamp(1, shards);
        let (routed_jobs, routed) = self.admit(arrivals);

        // Every shard simulates with its share of the cache; shards = 1
        // degenerates to the full capacity and the exact sequential run.
        let shard_grid = GridConfig {
            srm: crate::srm::SrmConfig {
                cache_size: self.config.grid.srm.cache_size / shards as u64,
                ..self.config.grid.srm
            },
            ..self.config.grid
        };

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, GridStats, Obs)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let routed_jobs = &routed_jobs;
                let shard_grid = &shard_grid;
                scope.spawn(move || {
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        let mut policy = factory.build_policy();
                        let child = obs.child();
                        let mut cache =
                            CacheState::with_catalog(shard_grid.srm.cache_size, catalog);
                        let stats = run_grid_on_cache(
                            policy.as_mut(),
                            catalog,
                            &routed_jobs[s],
                            shard_grid,
                            plan,
                            &child,
                            &mut cache,
                        );
                        if tx.send((s, stats, child)).is_err() {
                            break; // receiver gone: run aborted
                        }
                    }
                });
            }
            drop(tx);
        });

        let mut per_shard: Vec<Option<GridStats>> = vec![None; shards];
        let mut children: Vec<Option<Obs>> = vec![None; shards];
        while let Ok((s, stats, child)) = rx.recv() {
            per_shard[s] = Some(stats);
            children[s] = Some(child);
        }
        let per_shard: Vec<GridStats> = per_shard
            .into_iter()
            .map(|s| s.expect("every shard reports exactly once"))
            .collect();

        // Deterministic merge, in shard-id order.
        let mut overall = GridStats::default();
        if self.config.grid.full_response_log {
            overall.responses.enable_full_log();
        }
        for stats in &per_shard {
            overall.merge_shard(stats);
        }
        for child in children.into_iter().flatten() {
            obs.merge_from(&child);
        }

        ConcurrentStats {
            overall,
            per_shard,
            routed,
        }
    }
}

/// Runs the sharded decision service — the concurrent counterpart of
/// [`crate::engine::run_grid`].
pub fn run_concurrent_grid(
    factory: &dyn PolicyFactory,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &ConcurrentConfig,
    plan: Option<&FaultPlan>,
) -> ConcurrentStats {
    ConcurrentSrm::new(*config).run(factory, catalog, arrivals, plan)
}

/// [`run_concurrent_grid`] with an observability sink.
pub fn run_concurrent_grid_observed(
    factory: &dyn PolicyFactory,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &ConcurrentConfig,
    plan: Option<&FaultPlan>,
    obs: &Obs,
) -> ConcurrentStats {
    ConcurrentSrm::new(*config).run_observed(factory, catalog, arrivals, plan, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_arrivals, ArrivalProcess};
    use fbc_core::bundle::Bundle;
    use fbc_core::policy::SendPolicy;

    fn factory() -> impl PolicyFactory {
        || -> SendPolicy { Box::new(fbc_core::optfilebundle::OptFileBundle::new()) }
    }

    fn workload(jobs: u32, files: u32) -> (FileCatalog, Vec<JobArrival>) {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; files as usize]);
        let bundles: Vec<Bundle> = (0..jobs)
            .map(|i| Bundle::from_raw([i % files, (i * 3 + 1) % files]))
            .collect();
        let arrivals = schedule_arrivals(
            &bundles,
            ArrivalProcess::Poisson {
                rate: 4.0,
                seed: 17,
            },
        );
        (catalog, arrivals)
    }

    fn config(shards: usize, cache: u64) -> ConcurrentConfig {
        let mut grid = GridConfig::default();
        grid.srm.cache_size = cache;
        grid.srm.max_concurrent_jobs = 2;
        ConcurrentConfig::sharded(grid, shards)
    }

    #[test]
    fn every_job_is_routed_and_accounted_for() {
        let (catalog, arrivals) = workload(60, 12);
        let cfg = config(4, 16_000_000);
        let stats = run_concurrent_grid(&factory(), &catalog, &arrivals, &cfg, None);
        assert_eq!(stats.routed.iter().sum::<u64>(), 60);
        assert_eq!(
            stats.overall.completed + stats.overall.rejected + stats.overall.failed,
            60
        );
        assert_eq!(stats.per_shard.len(), 4);
        for (s, shard) in stats.per_shard.iter().enumerate() {
            assert_eq!(
                shard.completed + shard.rejected + shard.failed,
                stats.routed[s]
            );
        }
    }

    #[test]
    fn tiny_admission_queue_cannot_lock_out_jobs() {
        let (catalog, arrivals) = workload(200, 10);
        let mut cfg = config(2, 8_000_000);
        cfg.queue_capacity = 1; // maximal backpressure
        cfg.batch = 1;
        let stats = run_concurrent_grid(&factory(), &catalog, &arrivals, &cfg, None);
        assert_eq!(stats.routed.iter().sum::<u64>(), 200);
        assert_eq!(
            stats.overall.completed + stats.overall.rejected + stats.overall.failed,
            200
        );
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let (catalog, arrivals) = workload(80, 16);
        let base = config(4, 16_000_000);
        let run_with = |workers: usize| {
            let cfg = ConcurrentConfig { workers, ..base };
            run_concurrent_grid(&factory(), &catalog, &arrivals, &cfg, None)
        };
        let one = run_with(1);
        for workers in [2, 4, 9] {
            assert_eq!(one, run_with(workers), "workers={workers}");
        }
    }

    #[test]
    fn shard_by_modes_route_differently_but_conserve_jobs() {
        let (catalog, arrivals) = workload(100, 20);
        let mut by_file = config(4, 16_000_000);
        by_file.shard_by = ShardBy::File;
        let mut by_bundle = by_file;
        by_bundle.shard_by = ShardBy::Bundle;
        let f = run_concurrent_grid(&factory(), &catalog, &arrivals, &by_file, None);
        let b = run_concurrent_grid(&factory(), &catalog, &arrivals, &by_bundle, None);
        assert_eq!(f.routed.iter().sum::<u64>(), 100);
        assert_eq!(b.routed.iter().sum::<u64>(), 100);
    }
}

//! The discrete-event grid simulation engine.
//!
//! Ties the pieces together: clients submit [`JobArrival`]s to an SRM,
//! whose replacement policy decides what to evict; missing files are read
//! from the [`MassStorage`] (drive contention) and shipped over the
//! [`Link`] (FIFO WAN); after the data arrives the job processes it and
//! completes. Response times, throughput and cache metrics come out.
//!
//! Under a [`FaultPlan`] the engine also models failure: fetches stretched
//! or stranded by outage windows, transient fetch errors, and per-fetch
//! timeouts are retried with exponential backoff (see
//! [`RetryPolicy`]); a job whose retry budget runs out is reported
//! `failed` and its service slot is released, so the simulation always
//! terminates.
//!
//! Two modelling simplifications (documented in DESIGN.md): the cache
//! state is updated at *decision* time while the transfer occupies virtual
//! time — i.e. space is reserved for in-flight files, and the job's files
//! are pinned from decision to completion so no concurrent decision can
//! evict them. Consequently a failed fetch does not roll the cache state
//! back; the decision-time bookkeeping stands, consistent with the same
//! simplification on the success path.

use crate::client::JobArrival;
use crate::event::EventQueue;
use crate::faults::{FaultInjector, FaultPlan};
use crate::mss::{MassStorage, MssConfig};
use crate::network::{Link, LinkConfig};
use crate::srm::{pin_bundle, unpin_bundle, RetryPolicy, SrmConfig};
use crate::stats::GridStats;
use crate::time::SimTime;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::{CachePolicy, RequestOutcome};
use fbc_obs::{Field, Obs};
use std::collections::VecDeque;

/// Full configuration of a single-SRM grid.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GridConfig {
    /// The SRM node.
    pub srm: SrmConfig,
    /// The mass storage system behind it.
    pub mss: MssConfig,
    /// The WAN link between MSS and SRM cache.
    pub link: LinkConfig,
    /// How failed or stalled fetches are retried before a job is failed.
    pub retry: RetryPolicy,
    /// Keep the unbounded per-job response-time log (completion order) in
    /// [`GridStats::responses`]. Off by default: mean/percentiles come
    /// from the bounded accumulator either way, the log is only for
    /// consumers that need every sample.
    pub full_response_log: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    FetchDone(usize),
    /// A fetch attempt failed (timeout, stranded by a permanent outage, or
    /// transient error); the SRM decides between retry and giving up.
    FetchFailed(usize),
    /// Backoff elapsed: issue the next fetch attempt.
    RetryFetch(usize),
    ProcessDone(usize),
}

#[derive(Debug, Clone)]
struct JobState {
    arrival: SimTime,
    fetched_bytes: u64,
    requested_bytes: u64,
    /// Fetch attempts issued so far (including the one in flight).
    attempts: u32,
}

/// Issues one fetch attempt for job `i` at `now`, scheduling either
/// `FetchDone` or `FetchFailed`.
#[allow(clippy::too_many_arguments)]
fn issue_fetch(
    i: usize,
    now: SimTime,
    config: &GridConfig,
    mss: &mut MassStorage,
    link: &mut Link,
    faults: &mut Option<FaultInjector>,
    events: &mut EventQueue<Event>,
    stats: &mut GridStats,
    jobs: &mut [JobState],
    obs: &Obs,
) {
    let bytes = jobs[i].fetched_bytes;
    if bytes == 0 {
        // Pure cache hit: nothing to fetch, nothing that can fail.
        events.schedule(now, Event::FetchDone(i));
        return;
    }
    stats.fetch_attempts += 1;
    jobs[i].attempts += 1;
    if obs.is_enabled() {
        obs.incr("grid.fetch_attempts");
        obs.event(
            "fetch",
            &[
                ("job", Field::u(i as u64)),
                ("bytes", Field::u(bytes)),
                ("attempt", Field::u(jobs[i].attempts as u64)),
            ],
        );
    }
    let read_done = mss.schedule_fetch_with(now, bytes, faults.as_ref());
    let arrive = read_done.and_then(|t| link.schedule_transfer_with(t, bytes, faults.as_ref()));
    let deadline = config.retry.fetch_timeout.map(|t| now + t);
    match arrive {
        Some(done) => {
            if let Some(deadline) = deadline {
                if done > deadline {
                    // The attempt would finish, but not before the SRM gives
                    // up on it. The drive/link stay occupied (no cancellation
                    // in the MSS protocol); the SRM just stops waiting.
                    stats.fetch_timeouts += 1;
                    if obs.is_enabled() {
                        obs.incr("grid.fetch_timeouts");
                        obs.event("fetch_timeout", &[("job", Field::u(i as u64))]);
                    }
                    events.schedule(deadline, Event::FetchFailed(i));
                    return;
                }
            }
            let transient = faults
                .as_mut()
                .is_some_and(|inj| inj.draw_transient_failure());
            if transient {
                stats.transient_fetch_errors += 1;
                if obs.is_enabled() {
                    obs.incr("grid.transient_errors");
                    obs.event("transient_fault", &[("job", Field::u(i as u64))]);
                }
                events.schedule(done, Event::FetchFailed(i));
            } else {
                events.schedule(done, Event::FetchDone(i));
            }
        }
        None => {
            // A permanent outage strands the attempt: it can never complete.
            // With a timeout the SRM notices at the deadline; without one it
            // would wait forever, so fail the attempt immediately — the
            // simulation must terminate either way.
            stats.fetch_timeouts += 1;
            if obs.is_enabled() {
                obs.incr("grid.fetch_timeouts");
                obs.event("fetch_stranded", &[("job", Field::u(i as u64))]);
            }
            events.schedule(deadline.unwrap_or(now), Event::FetchFailed(i));
        }
    }
}

/// Runs the grid simulation to completion and returns its statistics.
///
/// `arrivals` must be sorted by arrival time (as produced by
/// [`crate::client::schedule_arrivals`]).
pub fn run_grid(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &GridConfig,
) -> GridStats {
    run_grid_with_faults(policy, catalog, arrivals, config, None)
}

/// Runs the grid simulation under an optional [`FaultPlan`].
///
/// `run_grid` is this with `plan = None`. A `Some` plan compiles into a
/// [`FaultInjector`]; a zero-fault plan ([`FaultPlan::is_zero_fault`])
/// draws nothing from the plan's generator and produces byte-identical
/// statistics to a `None` run — see the determinism contract in
/// [`crate::faults`].
pub fn run_grid_with_faults(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &GridConfig,
    plan: Option<&FaultPlan>,
) -> GridStats {
    run_grid_observed(policy, catalog, arrivals, config, plan, &Obs::disabled())
}

/// [`run_grid_with_faults`] with an observability sink.
///
/// With an enabled `obs` the engine attaches a clone to the policy,
/// stamps the virtual clock with **simulated microseconds** at every
/// event-loop step, and traces the whole fetch lifecycle — `fetch`,
/// `fetch_timeout`, `transient_fault`, `fetch_stranded`, `retry` — plus
/// job arrival/completion/failure/rejection, under `grid.*` counters.
/// A disabled `obs` makes this identical to [`run_grid_with_faults`].
pub fn run_grid_observed(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &GridConfig,
    plan: Option<&FaultPlan>,
    obs: &Obs,
) -> GridStats {
    let mut cache = CacheState::with_catalog(config.srm.cache_size, catalog);
    run_grid_on_cache(policy, catalog, arrivals, config, plan, obs, &mut cache)
}

/// [`run_grid_observed`] on a caller-owned [`CacheState`].
///
/// This is the engine's reusable core: the sharded service
/// ([`crate::concurrent`]) runs one instance per shard, each on its own
/// cache (typically `capacity / shards`) — rejection compares against
/// `cache.capacity()`, so a per-shard cache naturally rejects bundles
/// infeasible for its share. With `cache = CacheState::new(srm.cache_size)`
/// this is exactly [`run_grid_observed`].
pub fn run_grid_on_cache(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &GridConfig,
    plan: Option<&FaultPlan>,
    obs: &Obs,
    cache: &mut CacheState,
) -> GridStats {
    if obs.is_enabled() {
        policy.attach_obs(obs.clone());
    }
    policy.prepare_from(&mut arrivals.iter().map(|a| &a.bundle));

    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    let mut mss = MassStorage::new(config.mss);
    let mut link = Link::new(config.link);
    let mut faults = plan.map(|p| FaultInjector::new(p, config.mss.drives));
    let mut stats = GridStats::default();
    if config.full_response_log {
        stats.responses.enable_full_log();
    }

    let mut jobs: Vec<JobState> = arrivals
        .iter()
        .map(|a| JobState {
            arrival: a.at,
            fetched_bytes: 0,
            requested_bytes: 0,
            attempts: 0,
        })
        .collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_service: usize = 0;
    let mut last_completion = SimTime::ZERO;
    let mut hit_out: Vec<RequestOutcome> = Vec::new();
    // Scratch for the batched-hit fast path below: reused across drains so
    // a busy steady state allocates nothing per event.
    let mut hit_batch: Vec<&fbc_core::bundle::Bundle> = Vec::new();

    while let Some((now, event)) = events.pop() {
        obs.set_now(now.micros());
        match event {
            Event::Arrival(i) => {
                if obs.is_enabled() {
                    obs.incr("grid.arrivals");
                    obs.event("arrival", &[("job", Field::u(i as u64))]);
                }
                queue.push_back(i);
            }
            Event::FetchDone(i) => {
                let processing = config.srm.processing_time(jobs[i].requested_bytes);
                events.schedule(now + processing, Event::ProcessDone(i));
                continue; // no new service slot freed
            }
            Event::FetchFailed(i) => {
                if jobs[i].attempts <= config.retry.max_retries {
                    stats.fetch_retries += 1;
                    let jitter = faults
                        .as_mut()
                        .map_or(1.0, |inj| inj.backoff_jitter(config.retry.jitter_frac));
                    let delay = config.retry.backoff(jobs[i].attempts, jitter);
                    if obs.is_enabled() {
                        obs.incr("grid.fetch_retries");
                        obs.event(
                            "retry",
                            &[
                                ("job", Field::u(i as u64)),
                                ("attempt", Field::u(jobs[i].attempts as u64)),
                                ("backoff_us", Field::u(delay.micros())),
                            ],
                        );
                    }
                    events.schedule(now + delay, Event::RetryFetch(i));
                    continue; // slot stays held while backing off
                }
                // Retry budget exhausted: give the job up gracefully.
                unpin_bundle(cache, &arrivals[i].bundle);
                in_service -= 1;
                stats.failed += 1;
                if obs.is_enabled() {
                    obs.incr("grid.jobs_failed");
                    obs.event(
                        "job_failed",
                        &[
                            ("job", Field::u(i as u64)),
                            ("attempts", Field::u(jobs[i].attempts as u64)),
                        ],
                    );
                }
                // Fall through: a service slot is now free.
            }
            Event::RetryFetch(i) => {
                issue_fetch(
                    i,
                    now,
                    config,
                    &mut mss,
                    &mut link,
                    &mut faults,
                    &mut events,
                    &mut stats,
                    &mut jobs,
                    obs,
                );
                continue;
            }
            Event::ProcessDone(i) => {
                unpin_bundle(cache, &arrivals[i].bundle);
                in_service -= 1;
                stats.completed += 1;
                stats.responses.record(now.since(jobs[i].arrival));
                last_completion = last_completion.max(now);
                if obs.is_enabled() {
                    obs.incr("grid.jobs_completed");
                    obs.observe("grid.response_us", now.since(jobs[i].arrival).micros());
                    obs.event(
                        "job_done",
                        &[
                            ("job", Field::u(i as u64)),
                            ("response_us", Field::u(now.since(jobs[i].arrival).micros())),
                        ],
                    );
                }
            }
        }

        // Start as many queued jobs as concurrency and pins allow.
        while in_service < config.srm.max_concurrent_jobs {
            let Some(&i) = queue.front() else { break };
            // Batched fast path: a maximal front run of fully-resident jobs
            // is admitted through one `handle_batch` call. Hits mutate
            // nothing but the request history — no eviction, no fetch — so
            // the `supports` precheck cannot be invalidated mid-run, and
            // deferring the pins to after the batch changes nothing (pins
            // only gate evictions, which hits never attempt). Bit-identical
            // to the per-job loop by the `handle_batch` contract.
            let slots_free = config.srm.max_concurrent_jobs - in_service;
            let run_len = queue
                .iter()
                .take(slots_free)
                .take_while(|&&j| cache.contains_all(&arrivals[j].bundle))
                .count();
            if run_len >= 2 {
                hit_batch.clear();
                hit_batch.extend(queue.iter().take(run_len).map(|&j| &arrivals[j].bundle));
                hit_out.clear();
                policy.handle_batch(&hit_batch, cache, catalog, &mut hit_out);
                debug_assert!(cache.check_invariants());
                for outcome in hit_out.iter().take(run_len) {
                    let j = queue.pop_front().expect("run length bounded by queue");
                    debug_assert!(outcome.hit && outcome.serviced);
                    stats.cache.record(outcome);
                    pin_bundle(cache, &arrivals[j].bundle);
                    in_service += 1;
                    jobs[j].fetched_bytes = outcome.fetched_bytes;
                    jobs[j].requested_bytes = outcome.requested_bytes;
                    issue_fetch(
                        j,
                        now,
                        config,
                        &mut mss,
                        &mut link,
                        &mut faults,
                        &mut events,
                        &mut stats,
                        &mut jobs,
                        obs,
                    );
                }
                continue;
            }
            let bundle = &arrivals[i].bundle;
            let outcome = policy.handle(bundle, cache, catalog);
            debug_assert!(cache.check_invariants());
            stats.cache.record(&outcome);
            if !outcome.serviced {
                if outcome.requested_bytes > cache.capacity() {
                    // Permanently infeasible: reject.
                    queue.pop_front();
                    stats.rejected += 1;
                    if obs.is_enabled() {
                        obs.incr("grid.jobs_rejected");
                        obs.event("reject", &[("job", Field::u(i as u64))]);
                    }
                    continue;
                }
                // Pinned files of in-service jobs block the space; retry
                // when a job completes. With nothing in service this would
                // deadlock — treat it as a policy bug.
                assert!(
                    in_service > 0,
                    "policy failed to service a feasible request on an unpinned cache"
                );
                break;
            }
            queue.pop_front();
            pin_bundle(cache, bundle);
            in_service += 1;
            jobs[i].fetched_bytes = outcome.fetched_bytes;
            jobs[i].requested_bytes = outcome.requested_bytes;
            issue_fetch(
                i,
                now,
                config,
                &mut mss,
                &mut link,
                &mut faults,
                &mut events,
                &mut stats,
                &mut jobs,
                obs,
            );
        }
    }

    stats.makespan = last_completion.since(SimTime::ZERO);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_arrivals, ArrivalProcess};
    use crate::time::SimDuration;
    use fbc_core::bundle::Bundle;
    use fbc_core::optfilebundle::OptFileBundle;

    fn quick_config(cache_size: u64) -> GridConfig {
        GridConfig {
            srm: SrmConfig {
                cache_size,
                max_concurrent_jobs: 2,
                processing_rate: 1e6,
                processing_overhead: SimDuration::from_millis(10),
            },
            mss: MssConfig {
                drives: 2,
                mount_latency: SimDuration::from_millis(100),
                drive_bandwidth: 10e6,
            },
            link: LinkConfig {
                latency: SimDuration::from_millis(1),
                bandwidth: 100e6,
            },
            retry: RetryPolicy::default(),
            full_response_log: true, // tests below inspect per-job times
        }
    }

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn all_jobs_complete() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 6]);
        let jobs = vec![b(&[0, 1]), b(&[2, 3]), b(&[0, 1]), b(&[4, 5])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(4_000_000));
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.responses.len(), 4);
        assert!(stats.makespan > SimDuration::ZERO);
        assert!(stats.throughput() > 0.0);
        assert_eq!(stats.availability(), 1.0);
    }

    #[test]
    fn hits_complete_faster_than_misses() {
        let catalog = FileCatalog::from_sizes(vec![5_000_000; 2]);
        // Same bundle twice with widely spaced arrivals: second is a hit.
        let jobs = vec![b(&[0, 1]), b(&[0, 1])];
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Uniform {
                gap: SimDuration::from_secs(60),
            },
        );
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(20_000_000));
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache.hits, 1);
        // The hit skips MSS entirely.
        let log = stats.responses.full_log().unwrap();
        assert!(log[1] < log[0]);
    }

    #[test]
    fn oversized_jobs_are_rejected_not_deadlocked() {
        let catalog = FileCatalog::from_sizes(vec![10_000_000, 100]);
        let jobs = vec![b(&[0]), b(&[1])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(1_000_000));
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn contention_serialises_jobs() {
        // One service slot: jobs must queue even though all arrive at once.
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 4]);
        let jobs = vec![b(&[0]), b(&[1]), b(&[2]), b(&[3])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut cfg = quick_config(10_000_000);
        cfg.srm.max_concurrent_jobs = 1;
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &cfg);
        assert_eq!(stats.completed, 4);
        // Later jobs wait: response times strictly increase.
        for w in stats.responses.full_log().unwrap().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 8]);
        let jobs: Vec<Bundle> = (0..20).map(|i| b(&[i % 8, (i + 1) % 8])).collect();
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Poisson {
                rate: 2.0,
                seed: 42,
            },
        );
        let run = || {
            let mut policy = OptFileBundle::new();
            let s = run_grid(&mut policy, &catalog, &arrivals, &quick_config(3_000_000));
            (s.completed, s.makespan, s.responses.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_fault_plan_matches_no_injector_run() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 8]);
        let jobs: Vec<Bundle> = (0..20).map(|i| b(&[i % 8, (i + 1) % 8])).collect();
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Poisson {
                rate: 2.0,
                seed: 42,
            },
        );
        let cfg = quick_config(3_000_000);
        let mut p1 = OptFileBundle::new();
        let plain = run_grid(&mut p1, &catalog, &arrivals, &cfg);
        let mut p2 = OptFileBundle::new();
        let zero =
            run_grid_with_faults(&mut p2, &catalog, &arrivals, &cfg, Some(&FaultPlan::none()));
        assert_eq!(plain, zero);
    }

    #[test]
    fn outage_then_repair_retries_to_success() {
        // Both drives down for the first 60 s and a 10 s fetch timeout: the
        // first attempts strand, back off, and succeed after the repair.
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 2]);
        let jobs = vec![b(&[0]), b(&[1])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut cfg = quick_config(4_000_000);
        cfg.retry = RetryPolicy {
            max_retries: 8,
            base_backoff: SimDuration::from_secs(20),
            max_backoff: SimDuration::from_secs(20),
            jitter_frac: 0.0,
            fetch_timeout: Some(SimDuration::from_secs(10)),
        };
        let plan = FaultPlan::parse("drive=*,0,60").unwrap();
        let mut policy = OptFileBundle::new();
        let stats = run_grid_with_faults(&mut policy, &catalog, &arrivals, &cfg, Some(&plan));
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        assert!(
            stats.fetch_retries > 0,
            "expected retries during the outage"
        );
        assert!(stats.fetch_timeouts > 0);
        assert_eq!(stats.availability(), 1.0);
        // The outage pushes completion past the repair time.
        assert!(stats.makespan >= SimDuration::from_secs(60));
    }

    #[test]
    fn observed_run_matches_plain_and_traces_the_fetch_lifecycle() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 8]);
        let jobs: Vec<Bundle> = (0..20).map(|i| b(&[i % 8, (i + 1) % 8])).collect();
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Poisson {
                rate: 2.0,
                seed: 42,
            },
        );
        let mut cfg = quick_config(3_000_000);
        cfg.retry.max_retries = 4;
        let plan = fbc_grid_faultplan();
        let mut p1 = OptFileBundle::new();
        let plain = run_grid_with_faults(&mut p1, &catalog, &arrivals, &cfg, Some(&plan));

        let obs = fbc_obs::Obs::enabled();
        let mut p2 = OptFileBundle::new();
        let observed = run_grid_observed(&mut p2, &catalog, &arrivals, &cfg, Some(&plan), &obs);
        // Observation never perturbs the simulation.
        assert_eq!(plain, observed);
        // Counters mirror the stats the engine already aggregates.
        assert_eq!(obs.counter("grid.arrivals"), 20);
        assert_eq!(obs.counter("grid.jobs_completed"), plain.completed);
        assert_eq!(obs.counter("grid.fetch_attempts"), plain.fetch_attempts);
        assert_eq!(obs.counter("grid.fetch_retries"), plain.fetch_retries);
        // The trace is stamped with simulated microseconds and replays
        // byte-identically under the same seed.
        let obs2 = fbc_obs::Obs::enabled();
        let mut p3 = OptFileBundle::new();
        run_grid_observed(&mut p3, &catalog, &arrivals, &cfg, Some(&plan), &obs2);
        assert_eq!(obs.jsonl(), obs2.jsonl());
        assert_eq!(obs.render_table(), obs2.render_table());
    }

    fn fbc_grid_faultplan() -> FaultPlan {
        FaultPlan::parse("drive=0,2,10").unwrap()
    }

    #[test]
    fn permanent_blackout_fails_jobs_without_hanging() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 3]);
        let jobs = vec![b(&[0]), b(&[1]), b(&[2])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut cfg = quick_config(4_000_000);
        cfg.retry.max_retries = 2;
        let plan = FaultPlan::preset("blackout").unwrap();
        let mut policy = OptFileBundle::new();
        let stats = run_grid_with_faults(&mut policy, &catalog, &arrivals, &cfg, Some(&plan));
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.availability(), 0.0);
        // Every job used its whole budget: 3 attempts, 2 retries each.
        assert_eq!(stats.fetch_attempts, 9);
        assert_eq!(stats.fetch_retries, 6);
    }
}

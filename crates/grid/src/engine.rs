//! The discrete-event grid simulation engine.
//!
//! Ties the pieces together: clients submit [`JobArrival`]s to an SRM,
//! whose replacement policy decides what to evict; missing files are read
//! from the [`MassStorage`] (drive contention) and shipped over the
//! [`Link`] (FIFO WAN); after the data arrives the job processes it and
//! completes. Response times, throughput and cache metrics come out.
//!
//! One modelling simplification (documented in DESIGN.md): the cache state
//! is updated at *decision* time while the transfer occupies virtual time —
//! i.e. space is reserved for in-flight files, and the job's files are
//! pinned from decision to completion so no concurrent decision can evict
//! them.

use crate::client::JobArrival;
use crate::event::EventQueue;
use crate::mss::{MassStorage, MssConfig};
use crate::network::{Link, LinkConfig};
use crate::srm::{pin_bundle, unpin_bundle, SrmConfig};
use crate::stats::GridStats;
use crate::time::SimTime;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::CachePolicy;
use std::collections::VecDeque;

/// Full configuration of a single-SRM grid.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GridConfig {
    /// The SRM node.
    pub srm: SrmConfig,
    /// The mass storage system behind it.
    pub mss: MssConfig,
    /// The WAN link between MSS and SRM cache.
    pub link: LinkConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    FetchDone(usize),
    ProcessDone(usize),
}

#[derive(Debug, Clone)]
struct JobState {
    arrival: SimTime,
    fetched_bytes: u64,
    requested_bytes: u64,
}

/// Runs the grid simulation to completion and returns its statistics.
///
/// `arrivals` must be sorted by arrival time (as produced by
/// [`crate::client::schedule_arrivals`]).
pub fn run_grid(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &GridConfig,
) -> GridStats {
    let bundles: Vec<_> = arrivals.iter().map(|a| a.bundle.clone()).collect();
    policy.prepare(&bundles);

    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    let mut cache = CacheState::new(config.srm.cache_size);
    let mut mss = MassStorage::new(config.mss);
    let mut link = Link::new(config.link);
    let mut stats = GridStats::default();

    let mut jobs: Vec<JobState> = arrivals
        .iter()
        .map(|a| JobState {
            arrival: a.at,
            fetched_bytes: 0,
            requested_bytes: 0,
        })
        .collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_service: usize = 0;
    let mut last_completion = SimTime::ZERO;

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => {
                queue.push_back(i);
            }
            Event::FetchDone(i) => {
                let processing = config.srm.processing_time(jobs[i].requested_bytes);
                events.schedule(now + processing, Event::ProcessDone(i));
                continue; // no new service slot freed
            }
            Event::ProcessDone(i) => {
                unpin_bundle(&mut cache, &arrivals[i].bundle);
                in_service -= 1;
                stats.completed += 1;
                stats.response_times.push(now.since(jobs[i].arrival));
                last_completion = last_completion.max(now);
            }
        }

        // Start as many queued jobs as concurrency and pins allow.
        while in_service < config.srm.max_concurrent_jobs {
            let Some(&i) = queue.front() else { break };
            let bundle = &arrivals[i].bundle;
            let outcome = policy.handle(bundle, &mut cache, catalog);
            debug_assert!(cache.check_invariants());
            stats.cache.record(&outcome);
            if !outcome.serviced {
                if outcome.requested_bytes > cache.capacity() {
                    // Permanently infeasible: reject.
                    queue.pop_front();
                    stats.rejected += 1;
                    continue;
                }
                // Pinned files of in-service jobs block the space; retry
                // when a job completes. With nothing in service this would
                // deadlock — treat it as a policy bug.
                assert!(
                    in_service > 0,
                    "policy failed to service a feasible request on an unpinned cache"
                );
                break;
            }
            queue.pop_front();
            pin_bundle(&mut cache, bundle);
            in_service += 1;
            jobs[i].fetched_bytes = outcome.fetched_bytes;
            jobs[i].requested_bytes = outcome.requested_bytes;
            if outcome.fetched_bytes > 0 {
                let read_done = mss.schedule_fetch(now, outcome.fetched_bytes);
                let arrive = link.schedule_transfer(read_done, outcome.fetched_bytes);
                events.schedule(arrive, Event::FetchDone(i));
            } else {
                events.schedule(now, Event::FetchDone(i));
            }
        }
    }

    stats.makespan = last_completion.since(SimTime::ZERO);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_arrivals, ArrivalProcess};
    use crate::time::SimDuration;
    use fbc_core::bundle::Bundle;
    use fbc_core::optfilebundle::OptFileBundle;

    fn quick_config(cache_size: u64) -> GridConfig {
        GridConfig {
            srm: SrmConfig {
                cache_size,
                max_concurrent_jobs: 2,
                processing_rate: 1e6,
                processing_overhead: SimDuration::from_millis(10),
            },
            mss: MssConfig {
                drives: 2,
                mount_latency: SimDuration::from_millis(100),
                drive_bandwidth: 10e6,
            },
            link: LinkConfig {
                latency: SimDuration::from_millis(1),
                bandwidth: 100e6,
            },
        }
    }

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn all_jobs_complete() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 6]);
        let jobs = vec![b(&[0, 1]), b(&[2, 3]), b(&[0, 1]), b(&[4, 5])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(4_000_000));
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.response_times.len(), 4);
        assert!(stats.makespan > SimDuration::ZERO);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn hits_complete_faster_than_misses() {
        let catalog = FileCatalog::from_sizes(vec![5_000_000; 2]);
        // Same bundle twice with widely spaced arrivals: second is a hit.
        let jobs = vec![b(&[0, 1]), b(&[0, 1])];
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Uniform {
                gap: SimDuration::from_secs(60),
            },
        );
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(20_000_000));
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache.hits, 1);
        // The hit skips MSS entirely.
        assert!(stats.response_times[1] < stats.response_times[0]);
    }

    #[test]
    fn oversized_jobs_are_rejected_not_deadlocked() {
        let catalog = FileCatalog::from_sizes(vec![10_000_000, 100]);
        let jobs = vec![b(&[0]), b(&[1])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &quick_config(1_000_000));
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn contention_serialises_jobs() {
        // One service slot: jobs must queue even though all arrive at once.
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 4]);
        let jobs = vec![b(&[0]), b(&[1]), b(&[2]), b(&[3])];
        let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
        let mut cfg = quick_config(10_000_000);
        cfg.srm.max_concurrent_jobs = 1;
        let mut policy = OptFileBundle::new();
        let stats = run_grid(&mut policy, &catalog, &arrivals, &cfg);
        assert_eq!(stats.completed, 4);
        // Later jobs wait: response times strictly increase.
        for w in stats.response_times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 8]);
        let jobs: Vec<Bundle> = (0..20).map(|i| b(&[i % 8, (i + 1) % 8])).collect();
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Poisson {
                rate: 2.0,
                seed: 42,
            },
        );
        let run = || {
            let mut policy = OptFileBundle::new();
            let s = run_grid(&mut policy, &catalog, &arrivals, &quick_config(3_000_000));
            (s.completed, s.makespan, s.response_times.clone())
        };
        assert_eq!(run(), run());
    }
}

//! The discrete-event queue: a time-ordered heap of events with FIFO
//! tie-breaking (events scheduled at the same instant fire in scheduling
//! order, which keeps the simulation deterministic).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Fire time.
    pub at: SimTime,
    /// Monotonic sequence number for stable ordering of ties.
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics on (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time (the fire time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — causality violations are always bugs.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            (s.at, s.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
        // Scheduling relative to now works.
        q.schedule(q.now() + SimDuration::from_secs(1), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(1_000_100));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        assert_eq!(q.len(), 1);
    }
}

//! Deterministic fault injection for the grid substrate.
//!
//! Real data-grids lose tape drives, see WAN brownouts, and hit transient
//! fetch errors; the paper's "optimal service" claims only matter if the
//! caching layer degrades gracefully under them. This module describes
//! faults as a declarative, *seeded* [`FaultPlan`] — drive outage windows,
//! link outages, bandwidth-degradation windows, and a per-fetch transient
//! error probability — and compiles it into a [`FaultInjector`] the engine
//! consults while scheduling fetches.
//!
//! # Determinism contract
//!
//! A run with a fixed `(workload seed, arrival seed, FaultPlan)` is
//! bit-for-bit reproducible: all windows are virtual-time intervals fixed
//! up front, and the only randomness (transient errors, retry jitter) comes
//! from the plan's own seeded generator, drawn in event order. A plan with
//! no faults ([`FaultPlan::is_zero_fault`]) draws **nothing** from that
//! generator and schedules identically to a run without any injector, so
//! `FaultPlan::default()` reproduces fault-free outputs exactly.
//!
//! # Outage semantics
//!
//! Outage and degradation windows *suspend* (or slow) service: a fetch in
//! progress across a window makes no (or reduced) progress during it and
//! resumes afterwards — the work is not lost. A window reaching
//! [`FOREVER`] models a permanently dead component: fetches that
//! cannot finish are reported to the SRM, which retries with backoff and
//! eventually reports the job `failed` (see `engine::run_grid_with_faults`).

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The end of time, used for permanent ("until repaired — never") outages.
pub const FOREVER: SimTime = SimTime(u64::MAX);

/// A half-open virtual-time window `[from, until)` with a service-rate
/// factor: `0.0` is a full outage, `0.5` halves effective bandwidth, `1.0`
/// is a no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); [`FOREVER`] for a permanent condition.
    pub until: SimTime,
    /// Service-rate multiplier in `[0, 1]` while the window is active.
    pub rate: f64,
}

impl RateWindow {
    /// A full outage over `[from, until)`.
    pub fn outage(from: SimTime, until: SimTime) -> Self {
        Self {
            from,
            until,
            rate: 0.0,
        }
    }

    /// A degradation over `[from, until)` running at `rate` of nominal.
    pub fn degraded(from: SimTime, until: SimTime, rate: f64) -> Self {
        Self { from, until, rate }
    }
}

/// Which drives a drive-fault clause applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveSelector {
    /// One specific drive by index.
    One(usize),
    /// Every drive of the MSS.
    All,
}

/// A declarative, seeded description of every fault in a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Drive outage windows (per drive, or all drives).
    pub drive_faults: Vec<(DriveSelector, RateWindow)>,
    /// Link outage / degradation windows.
    pub link_faults: Vec<RateWindow>,
    /// Probability that any single fetch attempt fails after completing its
    /// transfer (bad checksum, dropped connection at the last byte, …).
    pub transient_fetch_failure: f64,
    /// Seed for transient-error and retry-jitter draws.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: injects nothing, draws nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan can never perturb a run. Zero-fault plans are
    /// guaranteed to reproduce fault-free outputs byte for byte.
    pub fn is_zero_fault(&self) -> bool {
        self.transient_fetch_failure <= 0.0
            && self.drive_faults.iter().all(|(_, w)| w.rate >= 1.0)
            && self.link_faults.iter().all(|w| w.rate >= 1.0)
    }

    /// Validates probabilities, rates and window ordering.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.transient_fetch_failure) {
            return Err(format!(
                "transient failure probability {} outside [0, 1]",
                self.transient_fetch_failure
            ));
        }
        let check = |w: &RateWindow| -> Result<(), String> {
            if !(0.0..=1.0).contains(&w.rate) {
                return Err(format!("window rate {} outside [0, 1]", w.rate));
            }
            if w.from >= w.until {
                return Err(format!(
                    "empty fault window [{}, {})",
                    w.from.micros(),
                    w.until.micros()
                ));
            }
            Ok(())
        };
        for (_, w) in &self.drive_faults {
            check(w)?;
        }
        for w in &self.link_faults {
            check(w)?;
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus a check that every named drive index
    /// exists on an MSS with `drives` drives. Callers holding user input
    /// should use this before building a [`FaultInjector`], which panics
    /// on out-of-range indices.
    pub fn validate_for_drives(&self, drives: usize) -> Result<(), String> {
        self.validate()?;
        for (sel, _) in &self.drive_faults {
            if let DriveSelector::One(i) = *sel {
                if i >= drives {
                    return Err(format!(
                        "fault plan references drive {i}, but the MSS has {drives} drives (indices 0..{drives})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Parses a fault specification string.
    ///
    /// The spec is either a preset name (`preset:tape-outage`,
    /// `preset:flaky-wan`, `preset:blackout`) or `;`-separated clauses:
    ///
    /// ```text
    /// drive=IDX,FROM,UNTIL        drive IDX (or '*') down for [FROM, UNTIL) seconds
    /// link-down=FROM,UNTIL        WAN outage for [FROM, UNTIL) seconds
    /// link-slow=FROM,UNTIL,RATE   WAN at RATE (0..1) of nominal bandwidth
    /// transient=P                 each fetch attempt fails with probability P
    /// seed=N                      seed for transient/jitter draws [default 0]
    /// ```
    ///
    /// `UNTIL` may be `inf` for a permanent condition. Example:
    /// `drive=0,60,300;transient=0.01;seed=7`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(name) = spec.strip_prefix("preset:") {
            return Self::preset(name)
                .ok_or_else(|| format!("unknown fault preset '{name}' (one of: {PRESET_NAMES})"));
        }
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is not KEY=VALUE"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "drive" => {
                    let (sel, rest) = value.split_once(',').ok_or_else(|| {
                        format!("drive clause '{value}': expected IDX,FROM,UNTIL")
                    })?;
                    let selector = if sel == "*" {
                        DriveSelector::All
                    } else {
                        DriveSelector::One(
                            sel.parse()
                                .map_err(|_| format!("bad drive index '{sel}'"))?,
                        )
                    };
                    let (from, until) = parse_window(rest)?;
                    plan.drive_faults
                        .push((selector, RateWindow::outage(from, until)));
                }
                "link-down" => {
                    let (from, until) = parse_window(value)?;
                    plan.link_faults.push(RateWindow::outage(from, until));
                }
                "link-slow" => {
                    let mut parts = value.splitn(3, ',');
                    let window = format!(
                        "{},{}",
                        parts.next().unwrap_or_default(),
                        parts.next().unwrap_or_default()
                    );
                    let (from, until) = parse_window(&window)?;
                    let rate: f64 = parts
                        .next()
                        .ok_or_else(|| format!("link-slow clause '{value}': missing RATE"))?
                        .trim()
                        .parse()
                        .map_err(|_| format!("link-slow clause '{value}': bad RATE"))?;
                    plan.link_faults
                        .push(RateWindow::degraded(from, until, rate));
                }
                "transient" => {
                    plan.transient_fetch_failure = value
                        .parse()
                        .map_err(|_| format!("bad transient probability '{value}'"))?;
                }
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
                }
                other => return Err(format!("unknown fault clause key '{other}'")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// A named preset plan, or `None` for an unknown name.
    pub fn preset(name: &str) -> Option<Self> {
        let plan = match name {
            // One tape drive out for minutes 1–5: classic robot-arm jam.
            "tape-outage" => FaultPlan {
                drive_faults: vec![(
                    DriveSelector::One(0),
                    RateWindow::outage(SimTime(60_000_000), SimTime(300_000_000)),
                )],
                seed: 1,
                ..FaultPlan::default()
            },
            // Congested WAN: half bandwidth for the first 10 minutes plus
            // 2% transient fetch errors throughout.
            "flaky-wan" => FaultPlan {
                link_faults: vec![RateWindow::degraded(
                    SimTime::ZERO,
                    SimTime(600_000_000),
                    0.5,
                )],
                transient_fetch_failure: 0.02,
                seed: 1,
                ..FaultPlan::default()
            },
            // Every drive dead from t=0, forever: nothing that misses the
            // cache can ever be fetched. Exercises retry exhaustion.
            "blackout" => FaultPlan {
                drive_faults: vec![(
                    DriveSelector::All,
                    RateWindow::outage(SimTime::ZERO, FOREVER),
                )],
                seed: 1,
                ..FaultPlan::default()
            },
            _ => return None,
        };
        Some(plan)
    }
}

/// Names accepted by [`FaultPlan::preset`], for error messages and help.
pub const PRESET_NAMES: &str = "tape-outage, flaky-wan, blackout";

fn parse_window(s: &str) -> Result<(SimTime, SimTime), String> {
    let (from, until) = s
        .split_once(',')
        .ok_or_else(|| format!("window '{s}': expected FROM,UNTIL seconds"))?;
    let from_secs: f64 = from
        .trim()
        .parse()
        .map_err(|_| format!("window '{s}': bad FROM"))?;
    let until = until.trim();
    let until_time = if until.eq_ignore_ascii_case("inf") {
        FOREVER
    } else {
        let secs: f64 = until
            .parse()
            .map_err(|_| format!("window '{s}': bad UNTIL"))?;
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    };
    Ok((
        SimTime::ZERO + SimDuration::from_secs_f64(from_secs),
        until_time,
    ))
}

/// Completion time of `work` full-rate microseconds starting at `start`,
/// under the given sorted, non-overlapping rate windows (rate 1 outside
/// them). `None` when the work can never finish (a zero-rate window that
/// lasts forever).
pub fn finish_time(start: SimTime, work: SimDuration, windows: &[RateWindow]) -> Option<SimTime> {
    let mut now = start;
    let mut remaining = work.micros() as f64;
    for w in windows {
        if w.until <= now {
            continue;
        }
        // Full-rate stretch before the window opens.
        if w.from > now {
            let gap = (w.from.micros() - now.micros()) as f64;
            if remaining <= gap {
                return Some(SimTime(now.micros() + remaining.round() as u64));
            }
            remaining -= gap;
            now = w.from;
        }
        // Inside the window, progress accrues at `rate`.
        if w.rate <= 0.0 {
            if w.until == FOREVER {
                return None;
            }
            now = w.until;
        } else {
            let span = (w.until.micros() - now.micros()) as f64;
            let capacity = span * w.rate;
            if remaining <= capacity {
                return Some(SimTime(now.micros() + (remaining / w.rate).round() as u64));
            }
            remaining -= capacity;
            now = w.until;
        }
    }
    Some(SimTime(now.micros() + remaining.round() as u64))
}

/// A [`FaultPlan`] compiled against a concrete MSS, ready for the engine.
///
/// Holds per-drive and link window lists plus the plan's seeded generator
/// for transient-error and jitter draws. The engine owns exactly one per
/// run; every query is deterministic given the plan and the event order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drive_windows: Vec<Vec<RateWindow>>,
    link_windows: Vec<RateWindow>,
    transient_p: f64,
    rng: StdRng,
}

impl FaultInjector {
    /// Compiles `plan` for an MSS with `drives` drives.
    ///
    /// Panics if the plan references a drive index out of range or fails
    /// [`FaultPlan::validate`] — plans from user input should be validated
    /// (or built by [`FaultPlan::parse`], which validates) first.
    pub fn new(plan: &FaultPlan, drives: usize) -> Self {
        plan.validate().expect("invalid fault plan");
        let mut drive_windows: Vec<Vec<RateWindow>> = vec![Vec::new(); drives];
        for (sel, w) in &plan.drive_faults {
            match *sel {
                DriveSelector::One(i) => {
                    assert!(
                        i < drives,
                        "fault plan references drive {i}, MSS has {drives}"
                    );
                    drive_windows[i].push(*w);
                }
                DriveSelector::All => {
                    for d in &mut drive_windows {
                        d.push(*w);
                    }
                }
            }
        }
        for d in &mut drive_windows {
            d.sort_by_key(|w| w.from);
        }
        let mut link_windows = plan.link_faults.clone();
        link_windows.sort_by_key(|w| w.from);
        Self {
            drive_windows,
            link_windows,
            transient_p: plan.transient_fetch_failure,
            rng: StdRng::seed_from_u64(plan.seed),
        }
    }

    /// Completion time of `work` on `drive` starting at `start`, or `None`
    /// if the drive never finishes it.
    pub fn drive_completion(
        &self,
        drive: usize,
        start: SimTime,
        work: SimDuration,
    ) -> Option<SimTime> {
        finish_time(start, work, &self.drive_windows[drive])
    }

    /// Completion time of `work` on the link starting at `start`, or `None`
    /// if the link never carries it.
    pub fn link_completion(&self, start: SimTime, work: SimDuration) -> Option<SimTime> {
        finish_time(start, work, &self.link_windows)
    }

    /// Whether the next fetch attempt suffers a transient failure.
    ///
    /// Draws from the plan's generator **only** when the probability is
    /// positive, preserving the zero-fault determinism contract.
    pub fn draw_transient_failure(&mut self) -> bool {
        self.transient_p > 0.0 && self.rng.gen_bool(self.transient_p)
    }

    /// A multiplicative jitter factor in `[1, 1 + frac)` for retry backoff.
    ///
    /// Draws only when `frac` is positive (zero-fault runs never reach
    /// backoff at all, but retry configs with zero jitter also stay
    /// draw-free).
    pub fn backoff_jitter(&mut self, frac: f64) -> f64 {
        if frac > 0.0 {
            1.0 + frac * self.rng.gen::<f64>()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    #[test]
    fn finish_time_without_windows_is_start_plus_work() {
        let t = finish_time(secs(10), SimDuration::from_secs(5), &[]);
        assert_eq!(t, Some(secs(15)));
    }

    #[test]
    fn outage_suspends_and_resumes() {
        // 5 s of work starting at t=0; outage [2, 10): 2 s done before, the
        // remaining 3 s resume at 10 → finish at 13.
        let w = [RateWindow::outage(secs(2), secs(10))];
        let t = finish_time(SimTime::ZERO, SimDuration::from_secs(5), &w);
        assert_eq!(t, Some(secs(13)));
    }

    #[test]
    fn work_finishing_before_outage_is_untouched() {
        let w = [RateWindow::outage(secs(100), secs(200))];
        let t = finish_time(SimTime::ZERO, SimDuration::from_secs(5), &w);
        assert_eq!(t, Some(secs(5)));
    }

    #[test]
    fn start_inside_outage_waits_for_repair() {
        let w = [RateWindow::outage(secs(0), secs(30))];
        let t = finish_time(secs(10), SimDuration::from_secs(4), &w);
        assert_eq!(t, Some(secs(34)));
    }

    #[test]
    fn degradation_scales_elapsed_time() {
        // 10 s of work at half rate from t=0 takes 20 s.
        let w = [RateWindow::degraded(SimTime::ZERO, secs(1000), 0.5)];
        let t = finish_time(SimTime::ZERO, SimDuration::from_secs(10), &w);
        assert_eq!(t, Some(secs(20)));
    }

    #[test]
    fn degradation_window_that_ends_splits_the_work() {
        // Half rate for [0, 10): 5 s of work done in it; remaining 5 s at
        // full rate → finish at 15.
        let w = [RateWindow::degraded(SimTime::ZERO, secs(10), 0.5)];
        let t = finish_time(SimTime::ZERO, SimDuration::from_secs(10), &w);
        assert_eq!(t, Some(secs(15)));
    }

    #[test]
    fn permanent_outage_never_finishes() {
        let w = [RateWindow::outage(secs(2), FOREVER)];
        assert_eq!(
            finish_time(SimTime::ZERO, SimDuration::from_secs(5), &w),
            None
        );
        // But work fitting before the outage still completes.
        assert_eq!(
            finish_time(SimTime::ZERO, SimDuration::from_secs(1), &w),
            Some(secs(1))
        );
    }

    #[test]
    fn consecutive_windows_compose() {
        let w = [
            RateWindow::outage(secs(1), secs(2)),
            RateWindow::degraded(secs(3), secs(5), 0.5),
        ];
        // 4 s of work from t=0: 1 s before the outage, resume at 2, 1 s
        // more to t=3, then 1 s of work takes 2 s → t=5, final 1 s → 6.
        let t = finish_time(SimTime::ZERO, SimDuration::from_secs(4), &w);
        assert_eq!(t, Some(secs(6)));
    }

    #[test]
    fn parse_clauses_roundtrip() {
        let plan = FaultPlan::parse("drive=0,60,300;link-slow=0,50,0.5;transient=0.01;seed=7")
            .expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert!((plan.transient_fetch_failure - 0.01).abs() < 1e-12);
        assert_eq!(plan.drive_faults.len(), 1);
        assert_eq!(plan.drive_faults[0].0, DriveSelector::One(0));
        assert_eq!(plan.drive_faults[0].1.from, secs(60));
        assert_eq!(plan.link_faults.len(), 1);
        assert!((plan.link_faults[0].rate - 0.5).abs() < 1e-12);
        assert!(!plan.is_zero_fault());
    }

    #[test]
    fn parse_accepts_inf_and_star() {
        let plan = FaultPlan::parse("drive=*,0,inf").expect("valid spec");
        assert_eq!(plan.drive_faults[0].0, DriveSelector::All);
        assert_eq!(plan.drive_faults[0].1.until, FOREVER);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("drive=0").is_err());
        assert!(FaultPlan::parse("transient=2.0").is_err());
        assert!(FaultPlan::parse("drive=0,300,60").is_err()); // empty window
        assert!(FaultPlan::parse("preset:unheard-of").is_err());
    }

    #[test]
    fn presets_are_valid_plans() {
        for name in ["tape-outage", "flaky-wan", "blackout"] {
            let plan = FaultPlan::preset(name).expect("known preset");
            assert!(plan.validate().is_ok(), "preset {name} invalid");
            assert!(!plan.is_zero_fault(), "preset {name} is a no-op");
        }
        assert!(FaultPlan::preset("nope").is_none());
    }

    #[test]
    fn empty_plan_is_zero_fault() {
        assert!(FaultPlan::none().is_zero_fault());
        assert!(FaultPlan::parse("").expect("empty spec").is_zero_fault());
    }

    #[test]
    fn injector_expands_all_selector() {
        let plan = FaultPlan::parse("drive=*,0,10").unwrap();
        let inj = FaultInjector::new(&plan, 3);
        for d in 0..3 {
            assert_eq!(
                inj.drive_completion(d, SimTime::ZERO, SimDuration::from_secs(1)),
                Some(secs(11))
            );
        }
    }

    #[test]
    #[should_panic(expected = "references drive")]
    fn injector_rejects_out_of_range_drive() {
        let plan = FaultPlan::parse("drive=5,0,10").unwrap();
        let _ = FaultInjector::new(&plan, 2);
    }

    #[test]
    fn validate_for_drives_catches_out_of_range_index() {
        let plan = FaultPlan::parse("drive=5,0,10").unwrap();
        let err = plan.validate_for_drives(2).unwrap_err();
        assert!(err.contains("drive 5"), "unhelpful error: {err}");
        assert!(plan.validate_for_drives(6).is_ok());
        // The wildcard selector fits any drive count.
        let all = FaultPlan::parse("drive=*,0,10").unwrap();
        assert!(all.validate_for_drives(1).is_ok());
    }

    #[test]
    fn transient_draws_match_probability_roughly() {
        let plan = FaultPlan {
            transient_fetch_failure: 0.25,
            seed: 99,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 1);
        let fails = (0..10_000).filter(|_| inj.draw_transient_failure()).count();
        let freq = fails as f64 / 10_000.0;
        assert!((freq - 0.25).abs() < 0.02, "frequency {freq} far from 0.25");
    }

    #[test]
    fn zero_probability_never_draws() {
        // Two injectors, one consulted often, one never: identical streams
        // afterwards prove p=0 consumed nothing.
        let plan = FaultPlan {
            seed: 5,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(&plan, 1);
        let mut b = FaultInjector::new(&plan, 1);
        for _ in 0..100 {
            assert!(!a.draw_transient_failure());
            assert_eq!(a.backoff_jitter(0.0), 1.0);
        }
        // First real draw out of each must coincide.
        assert_eq!(a.backoff_jitter(0.5), b.backoff_jitter(0.5));
    }

    #[test]
    fn jitter_stays_in_band() {
        let plan = FaultPlan {
            seed: 2,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 1);
        for _ in 0..1000 {
            let j = inj.backoff_jitter(0.1);
            assert!((1.0..1.1).contains(&j), "jitter {j} out of band");
        }
    }
}

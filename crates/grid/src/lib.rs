//! # fbc-grid — a discrete-event data-grid substrate
//!
//! The deployment environment the paper's §2 describes, simulated: clients
//! submit file-bundle jobs to a **Storage Resource Manager** that owns a
//! disk cache; misses are read from a **Mass Storage System** (tape mount
//! latency, limited drives) and shipped over a **WAN link** (latency +
//! bandwidth, FIFO); jobs then process their data and complete. On top of
//! the byte-level metrics of `fbc-sim`, the grid reports what the paper's
//! "optimal service" ultimately targets: job throughput and response times.
//!
//! ```
//! use fbc_core::optfilebundle::OptFileBundle;
//! use fbc_grid::client::{schedule_arrivals, ArrivalProcess};
//! use fbc_grid::engine::{run_grid, GridConfig};
//! use fbc_grid::srm::SrmConfig;
//! use fbc_core::{bundle::Bundle, catalog::FileCatalog};
//!
//! let catalog = FileCatalog::from_sizes(vec![1_000_000; 4]);
//! let jobs = vec![Bundle::from_raw([0, 1]), Bundle::from_raw([2, 3])];
//! let arrivals = schedule_arrivals(&jobs, ArrivalProcess::Batch);
//! let mut policy = OptFileBundle::new();
//! let config = GridConfig {
//!     srm: SrmConfig { cache_size: 10_000_000, ..SrmConfig::default() },
//!     ..GridConfig::default()
//! };
//! let stats = run_grid(&mut policy, &catalog, &arrivals, &config);
//! assert_eq!(stats.completed, 2);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod concurrent;
pub mod engine;
pub mod event;
pub mod faults;
pub mod mss;
pub mod multi;
pub mod network;
pub mod replica;
pub mod scenario;
pub mod shard;
pub mod srm;
pub mod stats;
pub mod time;

pub use client::{schedule_arrivals, ArrivalProcess, JobArrival};
pub use concurrent::{
    run_concurrent_grid, run_concurrent_grid_observed, ConcurrentConfig, ConcurrentSrm,
    ConcurrentStats,
};
pub use engine::{
    run_grid, run_grid_observed, run_grid_on_cache, run_grid_with_faults, GridConfig,
};
pub use faults::{DriveSelector, FaultInjector, FaultPlan, RateWindow, FOREVER};
pub use mss::{MassStorage, MssConfig};
pub use multi::{run_multi_grid, Dispatch, MultiGridConfig, MultiGridStats};
pub use network::{Link, LinkConfig};
pub use replica::{run_grid_replicated, Placement, ReplicaGridConfig};
pub use scenario::{run_scenario, run_scenario_with_faults, ScenarioConfig};
pub use shard::{ShardBy, ShardMap};
pub use srm::{RetryPolicy, SrmConfig};
pub use stats::{GridReport, GridStats, ResponseStats};
pub use time::{SimDuration, SimTime};

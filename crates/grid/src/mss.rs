//! Mass Storage System model.
//!
//! The MSS (an HPSS-style tape/disk hierarchy) serves file fetches with a
//! per-request *mount latency* (tape positioning / robot arm) followed by a
//! streaming read at drive bandwidth, on a limited number of concurrent
//! drives. Requests beyond drive capacity queue for the earliest-free drive.

use crate::faults::FaultInjector;
use crate::time::{SimDuration, SimTime};
use fbc_core::types::Bytes;

/// Configuration of a mass storage system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MssConfig {
    /// Number of drives that can stream concurrently.
    pub drives: usize,
    /// Fixed positioning latency per fetch request.
    pub mount_latency: SimDuration,
    /// Streaming bandwidth per drive, bytes per second.
    pub drive_bandwidth: f64,
}

impl Default for MssConfig {
    fn default() -> Self {
        Self {
            drives: 4,
            // Tens of seconds of tape mount/seek is typical for HPSS loads;
            // use a modest 5 s default so short simulations stay interesting.
            mount_latency: SimDuration::from_secs(5),
            drive_bandwidth: 60.0e6, // 60 MB/s per drive
        }
    }
}

/// A mass storage system with drive contention.
#[derive(Debug, Clone)]
pub struct MassStorage {
    config: MssConfig,
    /// When each drive becomes free.
    drive_free_at: Vec<SimTime>,
    /// Totals for reports.
    requests_served: u64,
    bytes_read: Bytes,
}

impl MassStorage {
    /// Creates an idle MSS.
    pub fn new(config: MssConfig) -> Self {
        assert!(config.drives > 0, "MSS needs at least one drive");
        assert!(
            config.drive_bandwidth > 0.0,
            "drive bandwidth must be positive"
        );
        Self {
            drive_free_at: vec![SimTime::ZERO; config.drives],
            config,
            requests_served: 0,
            bytes_read: 0,
        }
    }

    /// Service time for `bytes` on an idle drive (mount + streaming).
    pub fn service_time(&self, bytes: Bytes) -> SimDuration {
        self.config.mount_latency
            + SimDuration::from_secs_f64(bytes as f64 / self.config.drive_bandwidth)
    }

    /// Schedules a fetch of `bytes` arriving at `now`; picks the
    /// earliest-free drive and returns the completion time.
    pub fn schedule_fetch(&mut self, now: SimTime, bytes: Bytes) -> SimTime {
        self.schedule_fetch_with(now, bytes, None)
            .expect("a fault-free fetch always completes")
    }

    /// Schedules a fetch under an optional fault injector.
    ///
    /// The earliest-free drive is picked exactly as in [`Self::schedule_fetch`];
    /// with an injector the read is stretched by that drive's outage
    /// windows (suspend semantics — work resumes after repair). Returns
    /// `None`, charging the drive nothing, when the drive can never finish
    /// the read (a permanent outage).
    pub fn schedule_fetch_with(
        &mut self,
        now: SimTime,
        bytes: Bytes,
        faults: Option<&FaultInjector>,
    ) -> Option<SimTime> {
        let drive = self
            .drive_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one drive");
        let start = self.drive_free_at[drive].max(now);
        let work = self.service_time(bytes);
        let done = match faults {
            None => start + work,
            Some(inj) => inj.drive_completion(drive, start, work)?,
        };
        self.drive_free_at[drive] = done;
        self.requests_served += 1;
        self.bytes_read += bytes;
        Some(done)
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Bytes streamed so far.
    pub fn bytes_read(&self) -> Bytes {
        self.bytes_read
    }

    /// The MSS configuration.
    pub fn config(&self) -> &MssConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mss(drives: usize) -> MassStorage {
        MassStorage::new(MssConfig {
            drives,
            mount_latency: SimDuration::from_secs(1),
            drive_bandwidth: 1e6,
        })
    }

    #[test]
    fn service_time_includes_mount() {
        let m = mss(1);
        // 2 MB at 1 MB/s + 1 s mount = 3 s.
        assert_eq!(m.service_time(2_000_000).micros(), 3_000_000);
    }

    #[test]
    fn single_drive_serialises() {
        let mut m = mss(1);
        let a = m.schedule_fetch(SimTime::ZERO, 1_000_000); // 2 s
        let b = m.schedule_fetch(SimTime::ZERO, 1_000_000); // queued: 4 s
        assert_eq!(a.micros(), 2_000_000);
        assert_eq!(b.micros(), 4_000_000);
    }

    #[test]
    fn multiple_drives_run_in_parallel() {
        let mut m = mss(2);
        let a = m.schedule_fetch(SimTime::ZERO, 1_000_000);
        let b = m.schedule_fetch(SimTime::ZERO, 1_000_000);
        assert_eq!(a.micros(), 2_000_000);
        assert_eq!(b.micros(), 2_000_000); // second drive
        let c = m.schedule_fetch(SimTime::ZERO, 1_000_000);
        assert_eq!(c.micros(), 4_000_000); // waits for a free drive
    }

    #[test]
    fn counters_accumulate() {
        let mut m = mss(2);
        m.schedule_fetch(SimTime::ZERO, 10);
        m.schedule_fetch(SimTime::ZERO, 20);
        assert_eq!(m.requests_served(), 2);
        assert_eq!(m.bytes_read(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn zero_drives_rejected() {
        let _ = MassStorage::new(MssConfig {
            drives: 0,
            mount_latency: SimDuration::ZERO,
            drive_bandwidth: 1.0,
        });
    }
}

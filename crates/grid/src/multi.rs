//! Multi-SRM grids: a cluster of SRM nodes (each with its own disk cache
//! and replacement policy) sharing one mass storage system and WAN link —
//! the paper's §2 notes that "an SRM's host that consists of a cluster of
//! machines may have its disk cache distributed over independent disks of
//! the cluster nodes".
//!
//! The interesting knob is the **dispatcher**: bundle-affinity routing
//! (hashing the canonical bundle to a node) keeps each recurring bundle's
//! files on one node and preserves the request-locality that bundle-aware
//! caching exploits; load-oblivious round-robin destroys it.

use crate::client::JobArrival;
use crate::event::EventQueue;
use crate::mss::{MassStorage, MssConfig};
use crate::network::{Link, LinkConfig};
use crate::srm::{pin_bundle, unpin_bundle, SrmConfig};
use crate::stats::GridStats;
use crate::time::SimTime;
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::CachePolicy;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// How arriving jobs are routed to SRM nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Cycle through the nodes in arrival order.
    RoundRobin,
    /// Send to the node with the fewest queued + in-service jobs.
    LeastLoaded,
    /// Hash the canonical bundle to a node: every recurrence of a request
    /// lands on the same cache.
    #[default]
    BundleAffinity,
}

impl Dispatch {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Dispatch::RoundRobin => "round-robin",
            Dispatch::LeastLoaded => "least-loaded",
            Dispatch::BundleAffinity => "bundle-affinity",
        }
    }
}

/// Configuration of a multi-SRM grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGridConfig {
    /// Per-node SRM configuration (all nodes identical).
    pub srm: SrmConfig,
    /// Number of SRM nodes.
    pub nodes: usize,
    /// The shared mass storage system.
    pub mss: MssConfig,
    /// The shared WAN link.
    pub link: LinkConfig,
    /// Job routing.
    pub dispatch: Dispatch,
}

/// Results of a multi-SRM run.
#[derive(Debug, Clone, Default)]
pub struct MultiGridStats {
    /// Aggregated over all nodes.
    pub overall: GridStats,
    /// Per-node statistics, indexed by node id.
    pub per_node: Vec<GridStats>,
    /// Jobs routed to each node.
    pub routed: Vec<u64>,
}

impl MultiGridStats {
    /// Max/mean routing imbalance: 1.0 is perfectly balanced.
    pub fn routing_imbalance(&self) -> f64 {
        if self.routed.is_empty() {
            return 1.0;
        }
        let max = *self.routed.iter().max().unwrap() as f64;
        let mean = self.routed.iter().sum::<u64>() as f64 / self.routed.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    FetchDone { node: usize, job: usize },
    ProcessDone { node: usize, job: usize },
}

struct Node {
    cache: CacheState,
    queue: VecDeque<usize>,
    in_service: usize,
}

fn hash_bundle(bundle: &Bundle, nodes: usize) -> usize {
    let mut h = DefaultHasher::new();
    bundle.hash(&mut h);
    (h.finish() % nodes as u64) as usize
}

/// Runs a multi-SRM grid: `policies[i]` drives node `i`'s cache.
///
/// # Panics
/// Panics if `policies.len() != config.nodes` or `config.nodes == 0`.
pub fn run_multi_grid(
    policies: &mut [Box<dyn CachePolicy>],
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &MultiGridConfig,
) -> MultiGridStats {
    assert!(config.nodes > 0, "need at least one SRM node");
    assert_eq!(policies.len(), config.nodes, "one policy per node required");
    for p in policies.iter_mut() {
        p.prepare_from(&mut arrivals.iter().map(|a| &a.bundle));
    }

    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    let mut nodes: Vec<Node> = (0..config.nodes)
        .map(|_| Node {
            cache: CacheState::with_catalog(config.srm.cache_size, catalog),
            queue: VecDeque::new(),
            in_service: 0,
        })
        .collect();
    let mut mss = MassStorage::new(config.mss);
    let mut link = Link::new(config.link);
    let mut stats = MultiGridStats {
        per_node: vec![GridStats::default(); config.nodes],
        routed: vec![0; config.nodes],
        ..MultiGridStats::default()
    };
    let mut rr_next = 0usize;
    let mut last_completion = SimTime::ZERO;

    while let Some((now, event)) = events.pop() {
        // Which node might have a freed slot / new work after this event.
        let node_to_poll = match event {
            Event::Arrival(i) => {
                let n = match config.dispatch {
                    Dispatch::RoundRobin => {
                        let n = rr_next;
                        rr_next = (rr_next + 1) % config.nodes;
                        n
                    }
                    Dispatch::LeastLoaded => nodes
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, node)| node.queue.len() + node.in_service)
                        .map(|(i, _)| i)
                        .expect("at least one node"),
                    Dispatch::BundleAffinity => hash_bundle(&arrivals[i].bundle, config.nodes),
                };
                stats.routed[n] += 1;
                nodes[n].queue.push_back(i);
                n
            }
            Event::FetchDone { node, job } => {
                let processing = config
                    .srm
                    .processing_time(arrivals[job].bundle.total_size(catalog));
                events.schedule(now + processing, Event::ProcessDone { node, job });
                continue;
            }
            Event::ProcessDone { node, job } => {
                unpin_bundle(&mut nodes[node].cache, &arrivals[job].bundle);
                nodes[node].in_service -= 1;
                let rt = now.since(arrivals[job].at);
                stats.per_node[node].completed += 1;
                stats.per_node[node].responses.record(rt);
                stats.overall.completed += 1;
                stats.overall.responses.record(rt);
                last_completion = last_completion.max(now);
                node
            }
        };

        // Start queued jobs on the polled node.
        let node = &mut nodes[node_to_poll];
        let policy = &mut policies[node_to_poll];
        while node.in_service < config.srm.max_concurrent_jobs {
            let Some(&job) = node.queue.front() else {
                break;
            };
            let bundle = &arrivals[job].bundle;
            let outcome = policy.handle(bundle, &mut node.cache, catalog);
            debug_assert!(node.cache.check_invariants());
            stats.per_node[node_to_poll].cache.record(&outcome);
            stats.overall.cache.record(&outcome);
            if !outcome.serviced {
                if outcome.requested_bytes > node.cache.capacity() {
                    node.queue.pop_front();
                    stats.per_node[node_to_poll].rejected += 1;
                    stats.overall.rejected += 1;
                    continue;
                }
                assert!(
                    node.in_service > 0,
                    "policy failed a feasible request on an unpinned cache"
                );
                break;
            }
            node.queue.pop_front();
            pin_bundle(&mut node.cache, bundle);
            node.in_service += 1;
            if outcome.fetched_bytes > 0 {
                let read_done = mss.schedule_fetch(now, outcome.fetched_bytes);
                let arrive = link.schedule_transfer(read_done, outcome.fetched_bytes);
                events.schedule(
                    arrive,
                    Event::FetchDone {
                        node: node_to_poll,
                        job,
                    },
                );
            } else {
                events.schedule(
                    now,
                    Event::FetchDone {
                        node: node_to_poll,
                        job,
                    },
                );
            }
        }
    }

    let makespan = last_completion.since(SimTime::ZERO);
    stats.overall.makespan = makespan;
    for s in &mut stats.per_node {
        s.makespan = makespan;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_arrivals, ArrivalProcess};
    use crate::time::SimDuration;
    use fbc_core::optfilebundle::OptFileBundle;

    fn config(nodes: usize, dispatch: Dispatch) -> MultiGridConfig {
        MultiGridConfig {
            srm: SrmConfig {
                cache_size: 4_000_000,
                max_concurrent_jobs: 2,
                processing_rate: 1e8,
                processing_overhead: SimDuration::from_millis(10),
            },
            nodes,
            mss: MssConfig {
                drives: 2,
                mount_latency: SimDuration::from_millis(200),
                drive_bandwidth: 50e6,
            },
            link: LinkConfig {
                latency: SimDuration::from_millis(5),
                bandwidth: 200e6,
            },
            dispatch,
        }
    }

    fn policies(n: usize) -> Vec<Box<dyn CachePolicy>> {
        (0..n)
            .map(|_| Box::new(OptFileBundle::new()) as Box<dyn CachePolicy>)
            .collect()
    }

    fn workload() -> (FileCatalog, Vec<JobArrival>) {
        let catalog = FileCatalog::from_sizes(vec![500_000; 20]);
        let pool: Vec<Bundle> = (0..8)
            .map(|i| Bundle::from_raw([i * 2, i * 2 + 1]))
            .collect();
        let jobs: Vec<Bundle> = (0..120).map(|i| pool[i % pool.len()].clone()).collect();
        let arrivals = schedule_arrivals(
            &jobs,
            ArrivalProcess::Uniform {
                gap: SimDuration::from_millis(50),
            },
        );
        (catalog, arrivals)
    }

    #[test]
    fn all_jobs_complete_across_nodes() {
        let (catalog, arrivals) = workload();
        for dispatch in [
            Dispatch::RoundRobin,
            Dispatch::LeastLoaded,
            Dispatch::BundleAffinity,
        ] {
            let mut p = policies(3);
            let stats = run_multi_grid(&mut p, &catalog, &arrivals, &config(3, dispatch));
            assert_eq!(stats.overall.completed, 120, "{dispatch:?}");
            assert_eq!(stats.routed.iter().sum::<u64>(), 120);
            assert_eq!(stats.per_node.iter().map(|s| s.completed).sum::<u64>(), 120);
        }
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let (catalog, arrivals) = workload();
        let mut p = policies(3);
        let stats = run_multi_grid(
            &mut p,
            &catalog,
            &arrivals,
            &config(3, Dispatch::RoundRobin),
        );
        assert_eq!(stats.routed, vec![40, 40, 40]);
        assert!((stats.routing_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn affinity_routes_recurrences_to_one_node() {
        let (catalog, arrivals) = workload();
        let mut p = policies(3);
        let stats = run_multi_grid(
            &mut p,
            &catalog,
            &arrivals,
            &config(3, Dispatch::BundleAffinity),
        );
        // Every one of the 8 pool bundles recurs 15 times on a single node,
        // so affinity's hit count must beat round-robin's.
        let mut p2 = policies(3);
        let rr = run_multi_grid(
            &mut p2,
            &catalog,
            &arrivals,
            &config(3, Dispatch::RoundRobin),
        );
        assert!(
            stats.overall.cache.hits > rr.overall.cache.hits,
            "affinity {} <= rr {}",
            stats.overall.cache.hits,
            rr.overall.cache.hits
        );
    }

    #[test]
    fn single_node_matches_engine() {
        let (catalog, arrivals) = workload();
        let cfg = config(1, Dispatch::RoundRobin);
        let mut p = policies(1);
        let multi = run_multi_grid(&mut p, &catalog, &arrivals, &cfg);
        let single_cfg = crate::engine::GridConfig {
            srm: cfg.srm,
            mss: cfg.mss,
            link: cfg.link,
            retry: crate::srm::RetryPolicy::default(),
            full_response_log: false,
        };
        let mut policy = OptFileBundle::new();
        let single = crate::engine::run_grid(&mut policy, &catalog, &arrivals, &single_cfg);
        assert_eq!(multi.overall.completed, single.completed);
        assert_eq!(
            multi.overall.cache.fetched_bytes,
            single.cache.fetched_bytes
        );
        assert_eq!(multi.overall.makespan, single.makespan);
    }

    #[test]
    #[should_panic(expected = "one policy per node")]
    fn policy_count_must_match_nodes() {
        let (catalog, arrivals) = workload();
        let mut p = policies(2);
        let _ = run_multi_grid(
            &mut p,
            &catalog,
            &arrivals,
            &config(3, Dispatch::RoundRobin),
        );
    }
}

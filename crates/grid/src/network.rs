//! Wide-area network link model.
//!
//! An SRM fetches files from mass storage across a network link with a
//! propagation latency and a finite bandwidth. Transfers on one link are
//! serialised FIFO (the link tracks when it next becomes free), which models
//! the paper's observation that file accesses "incur significant long delays
//! … over wide area networks".

use crate::faults::FaultInjector;
use crate::time::{SimDuration, SimTime};
use fbc_core::types::Bytes;

/// Configuration of a network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation latency added to every transfer.
    pub latency: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            // 10 ms WAN latency, 1 Gbit/s ≈ 125 MB/s.
            latency: SimDuration::from_millis(10),
            bandwidth: 125.0e6,
        }
    }
}

/// A FIFO network link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// When the link finishes its last queued transfer.
    free_at: SimTime,
    /// Total bytes carried (for utilisation reports).
    bytes_carried: Bytes,
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.bandwidth > 0.0, "bandwidth must be positive");
        Self {
            config,
            free_at: SimTime::ZERO,
            bytes_carried: 0,
        }
    }

    /// Pure transfer duration for `bytes` (latency + serialisation), without
    /// queueing.
    pub fn transfer_time(&self, bytes: Bytes) -> SimDuration {
        self.config.latency + SimDuration::from_secs_f64(bytes as f64 / self.config.bandwidth)
    }

    /// Enqueues a transfer of `bytes` starting no earlier than `now`;
    /// returns its completion time (after any transfers already queued).
    pub fn schedule_transfer(&mut self, now: SimTime, bytes: Bytes) -> SimTime {
        self.schedule_transfer_with(now, bytes, None)
            .expect("a fault-free transfer always completes")
    }

    /// Enqueues a transfer under an optional fault injector.
    ///
    /// With an injector the transfer is stretched by the link's outage and
    /// bandwidth-degradation windows (suspend/slow-down semantics). Returns
    /// `None`, leaving the link's queue untouched, when the link can never
    /// finish the transfer (a permanent outage).
    pub fn schedule_transfer_with(
        &mut self,
        now: SimTime,
        bytes: Bytes,
        faults: Option<&FaultInjector>,
    ) -> Option<SimTime> {
        let start = self.free_at.max(now);
        let work = self.transfer_time(bytes);
        let done = match faults {
            None => start + work,
            Some(inj) => inj.link_completion(start, work)?,
        };
        self.free_at = done;
        self.bytes_carried += bytes;
        Some(done)
    }

    /// Total bytes carried so far.
    pub fn bytes_carried(&self) -> Bytes {
        self.bytes_carried
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(LinkConfig {
            latency: SimDuration::from_millis(10),
            bandwidth: 1e6, // 1 MB/s for easy arithmetic
        })
    }

    #[test]
    fn transfer_time_is_latency_plus_serialisation() {
        let l = link();
        // 500 KB at 1 MB/s = 0.5 s + 10 ms.
        let t = l.transfer_time(500_000);
        assert_eq!(t.micros(), 510_000);
    }

    #[test]
    fn transfers_serialise_fifo() {
        let mut l = link();
        let a = l.schedule_transfer(SimTime::ZERO, 1_000_000); // done at 1.01 s
        assert_eq!(a.micros(), 1_010_000);
        // Second transfer issued at t=0 must wait for the first.
        let b = l.schedule_transfer(SimTime::ZERO, 1_000_000);
        assert_eq!(b.micros(), 2_020_000);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = link();
        l.schedule_transfer(SimTime::ZERO, 1_000_000); // done 1.01 s
        let late = l.schedule_transfer(SimTime(5_000_000), 1_000_000);
        assert_eq!(late.micros(), 6_010_000);
    }

    #[test]
    fn carried_bytes_accumulate() {
        let mut l = link();
        l.schedule_transfer(SimTime::ZERO, 100);
        l.schedule_transfer(SimTime::ZERO, 200);
        assert_eq!(l.bytes_carried(), 300);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth: 0.0,
        });
    }
}

//! Replicated mass storage: files live on several MSS sites and each fetch
//! chooses a replica — the paper's §1 lists "strategic data replication"
//! among the techniques data-grids rely on, and this module quantifies it.
//!
//! Unlike the single-MSS engine (which aggregates a job's misses into one
//! drive request), replicated fetches are *per file*: each missing file is
//! scheduled on the site that will finish it earliest (drive queues
//! considered), files stream in parallel across sites, and the job's fetch
//! completes when its last file lands.

use crate::client::JobArrival;
use crate::event::EventQueue;
use crate::mss::{MassStorage, MssConfig};
use crate::network::{Link, LinkConfig};
use crate::srm::{pin_bundle, unpin_bundle, SrmConfig};
use crate::stats::GridStats;
use crate::time::SimTime;
use fbc_core::catalog::FileCatalog;
use fbc_core::policy::CachePolicy;
use fbc_core::types::FileId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Placement of files onto storage sites.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `sites_of[f]` = site indices holding a replica of file `f`.
    sites_of: Vec<Vec<u32>>,
    sites: usize,
}

impl Placement {
    /// Every file on every site (full replication).
    pub fn full(files: usize, sites: usize) -> Self {
        assert!(sites > 0);
        Self {
            sites_of: vec![(0..sites as u32).collect(); files],
            sites,
        }
    }

    /// Each file on `copies` distinct sites chosen uniformly (seeded).
    pub fn random(files: usize, sites: usize, copies: usize, seed: u64) -> Self {
        assert!(sites > 0 && copies >= 1 && copies <= sites);
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<u32> = (0..sites as u32).collect();
        let sites_of = (0..files)
            .map(|_| {
                let mut s = all.clone();
                s.shuffle(&mut rng);
                s.truncate(copies);
                s.sort_unstable();
                s
            })
            .collect();
        Self { sites_of, sites }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The sites holding `file`.
    pub fn replicas_of(&self, file: FileId) -> &[u32] {
        &self.sites_of[file.index()]
    }

    /// Mean replica count (diagnostics).
    pub fn mean_copies(&self) -> f64 {
        if self.sites_of.is_empty() {
            return 0.0;
        }
        self.sites_of.iter().map(|s| s.len() as f64).sum::<f64>() / self.sites_of.len() as f64
    }
}

/// Configuration of a replicated-storage grid.
#[derive(Debug, Clone)]
pub struct ReplicaGridConfig {
    /// The SRM node.
    pub srm: SrmConfig,
    /// Per-site MSS model (all sites identical hardware).
    pub mss: MssConfig,
    /// Shared WAN link from the storage fabric to the SRM.
    pub link: LinkConfig,
    /// File placement.
    pub placement: Placement,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    FetchDone(usize),
    ProcessDone(usize),
}

/// Runs the replicated-storage grid simulation.
///
/// Behaviourally identical to [`crate::engine::run_grid`] except for the
/// fetch path: each missing file is scheduled on the replica site whose
/// earliest-free drive completes it soonest; the job's data is complete
/// when the last file has crossed the link.
pub fn run_grid_replicated(
    policy: &mut dyn CachePolicy,
    catalog: &FileCatalog,
    arrivals: &[JobArrival],
    config: &ReplicaGridConfig,
) -> GridStats {
    policy.prepare_from(&mut arrivals.iter().map(|a| &a.bundle));

    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    let mut cache = fbc_core::cache::CacheState::with_catalog(config.srm.cache_size, catalog);
    let mut sites: Vec<MassStorage> = (0..config.placement.sites())
        .map(|_| MassStorage::new(config.mss))
        .collect();
    let mut link = Link::new(config.link);
    let mut stats = GridStats::default();

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_service = 0usize;
    let mut requested: Vec<u64> = vec![0; arrivals.len()];
    let mut last_completion = SimTime::ZERO;

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => queue.push_back(i),
            Event::FetchDone(i) => {
                let processing = config.srm.processing_time(requested[i]);
                events.schedule(now + processing, Event::ProcessDone(i));
                continue;
            }
            Event::ProcessDone(i) => {
                unpin_bundle(&mut cache, &arrivals[i].bundle);
                in_service -= 1;
                stats.completed += 1;
                stats.responses.record(now.since(arrivals[i].at));
                last_completion = last_completion.max(now);
            }
        }

        while in_service < config.srm.max_concurrent_jobs {
            let Some(&i) = queue.front() else { break };
            let bundle = &arrivals[i].bundle;
            let outcome = policy.handle(bundle, &mut cache, catalog);
            debug_assert!(cache.check_invariants());
            stats.cache.record(&outcome);
            if !outcome.serviced {
                if outcome.requested_bytes > cache.capacity() {
                    queue.pop_front();
                    stats.rejected += 1;
                    continue;
                }
                assert!(in_service > 0, "deadlock: unserviceable with idle cache");
                break;
            }
            queue.pop_front();
            pin_bundle(&mut cache, bundle);
            in_service += 1;
            requested[i] = outcome.requested_bytes;

            if outcome.fetched_files.is_empty() {
                events.schedule(now, Event::FetchDone(i));
            } else {
                // Schedule every fetched file on its best replica; the
                // bundle is complete when the slowest file crosses the link.
                let mut done = SimTime::ZERO;
                for &f in &outcome.fetched_files {
                    let size = catalog.size(f);
                    let replicas = config.placement.replicas_of(f);
                    assert!(!replicas.is_empty(), "file {f} has no replica");
                    // Greedy replica selection: probe each candidate site
                    // (a cheap clone — drive state is a small Vec) for the
                    // completion time it would give this read, commit to
                    // the earliest.
                    let best = replicas
                        .iter()
                        .copied()
                        .min_by_key(|&s| sites[s as usize].clone().schedule_fetch(now, size))
                        .expect("non-empty replicas");
                    let read_done = sites[best as usize].schedule_fetch(now, size);
                    let arrive = link.schedule_transfer(read_done, size);
                    done = done.max(arrive);
                }
                events.schedule(done, Event::FetchDone(i));
            }
        }
    }

    stats.makespan = last_completion.since(SimTime::ZERO);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_arrivals, ArrivalProcess};
    use crate::time::SimDuration;
    use fbc_core::bundle::Bundle;
    use fbc_core::optfilebundle::OptFileBundle;

    fn config(placement: Placement) -> ReplicaGridConfig {
        ReplicaGridConfig {
            srm: SrmConfig {
                cache_size: 10_000_000,
                max_concurrent_jobs: 2,
                processing_rate: 1e8,
                processing_overhead: SimDuration::from_millis(1),
            },
            mss: MssConfig {
                drives: 1,
                mount_latency: SimDuration::from_secs(1),
                drive_bandwidth: 1e6,
            },
            link: LinkConfig {
                latency: SimDuration::from_millis(1),
                bandwidth: 1e9,
            },
            placement,
        }
    }

    fn workload() -> (FileCatalog, Vec<JobArrival>) {
        let catalog = FileCatalog::from_sizes(vec![1_000_000; 8]);
        let jobs: Vec<Bundle> = (0..12)
            .map(|i| Bundle::from_raw([(i * 2) % 8, (i * 2 + 1) % 8]))
            .collect();
        (catalog, schedule_arrivals(&jobs, ArrivalProcess::Batch))
    }

    #[test]
    fn placements_validate() {
        let full = Placement::full(10, 3);
        assert_eq!(full.replicas_of(FileId(5)), &[0, 1, 2]);
        assert_eq!(full.mean_copies(), 3.0);
        let partial = Placement::random(10, 4, 2, 7);
        assert_eq!(partial.mean_copies(), 2.0);
        for f in 0..10u32 {
            let r = partial.replicas_of(FileId(f));
            assert_eq!(r.len(), 2);
            assert!(r.windows(2).all(|w| w[0] < w[1]));
            assert!(r.iter().all(|&s| s < 4));
        }
    }

    #[test]
    fn all_jobs_complete_with_replication() {
        let (catalog, arrivals) = workload();
        let mut policy = OptFileBundle::new();
        let stats = run_grid_replicated(
            &mut policy,
            &catalog,
            &arrivals,
            &config(Placement::full(8, 3)),
        );
        assert_eq!(stats.completed, 12);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn more_replicas_do_not_hurt_makespan() {
        let (catalog, arrivals) = workload();
        let run = |placement: Placement| {
            let mut policy = OptFileBundle::new();
            run_grid_replicated(&mut policy, &catalog, &arrivals, &config(placement))
        };
        // 1 copy on 1 site = fully serialised drives; 3 sites = parallelism.
        let single = run(Placement::full(8, 1));
        let triple = run(Placement::full(8, 3));
        assert!(
            triple.makespan <= single.makespan,
            "3 sites {} > 1 site {}",
            triple.makespan,
            single.makespan
        );
        // Byte accounting is identical — replication changes timing only.
        assert_eq!(triple.cache.fetched_bytes, single.cache.fetched_bytes);
    }

    #[test]
    fn partial_replication_sits_between() {
        let (catalog, arrivals) = workload();
        let run = |placement: Placement| {
            let mut policy = OptFileBundle::new();
            run_grid_replicated(&mut policy, &catalog, &arrivals, &config(placement)).makespan
        };
        let one = run(Placement::random(8, 3, 1, 42));
        let full = run(Placement::full(8, 3));
        assert!(
            full <= one,
            "full replication {full} worse than 1-copy {one}"
        );
    }

    #[test]
    fn deterministic() {
        let (catalog, arrivals) = workload();
        let run = || {
            let mut policy = OptFileBundle::new();
            let s = run_grid_replicated(
                &mut policy,
                &catalog,
                &arrivals,
                &config(Placement::random(8, 3, 2, 9)),
            );
            (s.completed, s.makespan)
        };
        assert_eq!(run(), run());
    }
}

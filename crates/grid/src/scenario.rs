//! Convenience builder: generate a synthetic workload, stamp arrivals, and
//! run the grid end-to-end with a chosen policy.

use crate::client::{schedule_arrivals, ArrivalProcess};
use crate::engine::{run_grid_with_faults, GridConfig};
use crate::faults::FaultPlan;
use crate::stats::GridStats;
use fbc_core::policy::CachePolicy;
use fbc_workload::{Workload, WorkloadConfig};

/// A complete end-to-end experiment description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Synthetic workload parameters (the SRM cache size is taken from
    /// `grid.srm.cache_size`, overriding the workload's own).
    pub workload: WorkloadConfig,
    /// Grid hardware model.
    pub grid: GridConfig,
    /// Job arrival process.
    pub arrivals: ArrivalProcess,
}

/// Generates the workload and runs the grid; returns the statistics.
pub fn run_scenario(policy: &mut dyn CachePolicy, cfg: &ScenarioConfig) -> GridStats {
    run_scenario_with_faults(policy, cfg, None)
}

/// [`run_scenario`] under an optional fault plan.
pub fn run_scenario_with_faults(
    policy: &mut dyn CachePolicy,
    cfg: &ScenarioConfig,
    plan: Option<&FaultPlan>,
) -> GridStats {
    let mut wl_cfg = cfg.workload;
    wl_cfg.cache_size = cfg.grid.srm.cache_size;
    let workload = Workload::generate(wl_cfg);
    let arrivals = schedule_arrivals(&workload.jobs, cfg.arrivals);
    run_grid_with_faults(policy, &workload.catalog, &arrivals, &cfg.grid, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srm::SrmConfig;
    use fbc_baselines::Landlord;
    use fbc_core::optfilebundle::OptFileBundle;
    use fbc_core::types::MIB;

    fn cfg() -> ScenarioConfig {
        ScenarioConfig {
            workload: WorkloadConfig {
                num_files: 40,
                max_file_frac: 0.05,
                pool_requests: 30,
                jobs: 120,
                files_per_request: (1, 4),
                popularity: fbc_workload::Popularity::zipf(),
                seed: 77,
                ..WorkloadConfig::default()
            },
            grid: GridConfig {
                srm: SrmConfig {
                    cache_size: 256 * MIB,
                    ..SrmConfig::default()
                },
                ..GridConfig::default()
            },
            arrivals: ArrivalProcess::Poisson { rate: 5.0, seed: 9 },
        }
    }

    #[test]
    fn scenario_runs_to_completion() {
        let mut policy = OptFileBundle::new();
        let stats = run_scenario(&mut policy, &cfg());
        assert_eq!(stats.completed + stats.rejected, 120);
        assert!(stats.completed > 0);
    }

    #[test]
    fn bundle_aware_policy_fetches_no_more_than_landlord() {
        let c = cfg();
        let mut ofb = OptFileBundle::new();
        let ofb_stats = run_scenario(&mut ofb, &c);
        let mut ll = Landlord::new();
        let ll_stats = run_scenario(&mut ll, &c);
        // The headline claim, end to end: equal-or-lower byte miss ratio.
        assert!(
            ofb_stats.cache.byte_miss_ratio() <= ll_stats.cache.byte_miss_ratio() + 1e-9,
            "OFB {} > Landlord {}",
            ofb_stats.cache.byte_miss_ratio(),
            ll_stats.cache.byte_miss_ratio()
        );
    }
}

//! Deterministic request→shard routing for the concurrent SRM service.
//!
//! A [`ShardMap`] is a pure function of the bundle and the shard count —
//! no state, no randomness — so the same trace always routes the same
//! way, which is what makes a sharded run reproducible regardless of how
//! many workers execute the shards.

use fbc_core::bundle::Bundle;
use std::hash::{DefaultHasher, Hash, Hasher};

/// What a job is hashed by when routing it to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Hash the bundle's lead (lowest-id) file. Jobs touching the same
    /// lead file land on the same shard, so a hot file's working set
    /// stays together; bundles sharing their lead file never fetch it
    /// twice across shards. The default.
    #[default]
    File,
    /// Hash the whole (canonical, sorted) bundle. Repeats of the same
    /// bundle land together; distinct bundles sharing files may split
    /// across shards and fetch those files independently.
    Bundle,
}

impl ShardBy {
    /// Short label for CLI parsing and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShardBy::File => "file",
            ShardBy::Bundle => "bundle",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "file" => Some(ShardBy::File),
            "bundle" => Some(ShardBy::Bundle),
            _ => None,
        }
    }
}

/// The routing function: `shard_of` maps every bundle to `0..shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    by: ShardBy,
}

impl ShardMap {
    /// A map over `shards` shards (must be ≥ 1).
    pub fn new(shards: usize, by: ShardBy) -> Self {
        assert!(shards >= 1, "at least one shard");
        Self { shards, by }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a bundle is serviced on. Empty bundles go to shard 0.
    pub fn shard_of(&self, bundle: &Bundle) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut h = DefaultHasher::new();
        match self.by {
            ShardBy::File => match bundle.iter().next() {
                Some(f) => f.hash(&mut h),
                None => return 0,
            },
            ShardBy::Bundle => bundle.hash(&mut h),
        }
        (h.finish() % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u32]) -> Bundle {
        Bundle::from_raw(ids.iter().copied())
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let m = ShardMap::new(1, ShardBy::Bundle);
        for ids in [&[0u32][..], &[1, 2, 3], &[]] {
            assert_eq!(m.shard_of(&b(ids)), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for by in [ShardBy::File, ShardBy::Bundle] {
            let m = ShardMap::new(4, by);
            for i in 0..200u32 {
                let bundle = b(&[i, i + 1, i * 7 % 50]);
                let s = m.shard_of(&bundle);
                assert!(s < 4);
                assert_eq!(s, m.shard_of(&bundle), "{by:?} must be pure");
            }
        }
    }

    #[test]
    fn file_mode_groups_by_lead_file() {
        let m = ShardMap::new(8, ShardBy::File);
        // Same lowest file id → same shard, whatever else the bundle holds.
        assert_eq!(m.shard_of(&b(&[3, 9])), m.shard_of(&b(&[3, 40, 41])));
        assert_eq!(m.shard_of(&b(&[3])), m.shard_of(&b(&[3, 9])));
    }

    #[test]
    fn bundle_mode_groups_exact_repeats() {
        let m = ShardMap::new(8, ShardBy::Bundle);
        assert_eq!(m.shard_of(&b(&[1, 2])), m.shard_of(&b(&[2, 1])));
        // Some pair of distinct bundles must land on distinct shards.
        let spread: std::collections::HashSet<usize> =
            (0..64u32).map(|i| m.shard_of(&b(&[i]))).collect();
        assert!(spread.len() > 1, "hashing must actually spread load");
    }

    #[test]
    fn labels_roundtrip() {
        for by in [ShardBy::File, ShardBy::Bundle] {
            assert_eq!(ShardBy::parse(by.label()), Some(by));
        }
        assert_eq!(ShardBy::parse("nope"), None);
    }
}

//! The Storage Resource Manager node (paper §2, Fig. 2).
//!
//! An SRM owns a disk cache and a replacement policy, admits jobs into a
//! FIFO service queue, and — while a job is in service — *pins* the job's
//! files so concurrent replacement decisions cannot evict them (the paper's
//! "holding, for some duration of time, data that are requested").

use crate::time::SimDuration;
use fbc_core::bundle::Bundle;
use fbc_core::cache::CacheState;
use fbc_core::types::Bytes;

/// SRM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrmConfig {
    /// Disk-cache capacity.
    pub cache_size: Bytes,
    /// How many jobs may be in service (fetching or processing) at once.
    pub max_concurrent_jobs: usize,
    /// Post-fetch processing rate in bytes/second (the "transformation /
    /// filtering" the paper describes); `f64::INFINITY` for instant.
    pub processing_rate: f64,
    /// Fixed per-job processing overhead.
    pub processing_overhead: SimDuration,
}

impl Default for SrmConfig {
    fn default() -> Self {
        Self {
            cache_size: 100 * fbc_core::types::GIB,
            max_concurrent_jobs: 4,
            processing_rate: 200.0e6, // 200 MB/s scan rate
            processing_overhead: SimDuration::from_millis(100),
        }
    }
}

impl SrmConfig {
    /// Processing duration for a job that read `bytes`.
    pub fn processing_time(&self, bytes: Bytes) -> SimDuration {
        let stream = if self.processing_rate.is_finite() && self.processing_rate > 0.0 {
            SimDuration::from_secs_f64(bytes as f64 / self.processing_rate)
        } else {
            SimDuration::ZERO
        };
        self.processing_overhead + stream
    }
}

/// Pins every file of `bundle` in the cache (all must be resident).
pub fn pin_bundle(cache: &mut CacheState, bundle: &Bundle) {
    for f in bundle.iter() {
        cache
            .pin(f)
            .expect("a serviced job's files must be resident when pinned");
    }
}

/// Releases the pins taken by [`pin_bundle`].
pub fn unpin_bundle(cache: &mut CacheState, bundle: &Bundle) {
    for f in bundle.iter() {
        // The file may have been evicted after an explicit unpin elsewhere;
        // ignore, pins only protect in-service files.
        let _ = cache.unpin(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbc_core::catalog::FileCatalog;

    #[test]
    fn processing_time_combines_overhead_and_streaming() {
        let cfg = SrmConfig {
            processing_rate: 1e6,
            processing_overhead: SimDuration::from_millis(100),
            ..SrmConfig::default()
        };
        // 1 MB at 1 MB/s + 100 ms = 1.1 s.
        assert_eq!(cfg.processing_time(1_000_000).micros(), 1_100_000);
    }

    #[test]
    fn infinite_rate_means_overhead_only() {
        let cfg = SrmConfig {
            processing_rate: f64::INFINITY,
            processing_overhead: SimDuration::from_millis(5),
            ..SrmConfig::default()
        };
        assert_eq!(cfg.processing_time(u64::MAX).micros(), 5_000);
    }

    #[test]
    fn pin_unpin_roundtrip() {
        let catalog = FileCatalog::from_sizes(vec![1, 1]);
        let mut cache = CacheState::new(10);
        let bundle = Bundle::from_raw([0, 1]);
        for f in bundle.iter() {
            cache.insert(f, &catalog).unwrap();
        }
        pin_bundle(&mut cache, &bundle);
        assert!(cache.is_pinned(fbc_core::types::FileId(0)));
        assert!(cache.evict(fbc_core::types::FileId(0)).is_err());
        unpin_bundle(&mut cache, &bundle);
        assert!(cache.evict(fbc_core::types::FileId(0)).is_ok());
    }
}
